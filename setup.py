"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel.  This shim lets ``python setup.py develop`` (and thus
``pip install -e . --no-build-isolation --no-use-pep517``) work as a
fallback; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
