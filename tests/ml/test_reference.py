"""Tests for the reference (uncompressed) training loops."""

from __future__ import annotations

import numpy as np

from repro.data.registry import DATASET_PROFILES
from repro.ml.reference import (
    gradient_descent_spectrum,
    train_logistic_csr,
    train_logistic_dense,
)


class TestReferenceLoops:
    def test_dense_and_csr_loops_agree(self):
        features, labels = DATASET_PROFILES["census"].classification(200, seed=2)
        dense_params = train_logistic_dense(features, labels, epochs=3, batch_size=50)
        csr_params = train_logistic_csr(features, labels, epochs=3, batch_size=50)
        np.testing.assert_allclose(csr_params, dense_params, rtol=1e-8, atol=1e-10)

    def test_training_moves_parameters(self):
        features, labels = DATASET_PROFILES["census"].classification(150, seed=2)
        params = train_logistic_dense(features, labels, epochs=2, batch_size=50)
        assert np.any(params != 0.0)

    def test_spectrum_returns_one_accuracy_per_epoch(self):
        features, labels = DATASET_PROFILES["census"].classification(120, seed=4)
        accuracies = gradient_descent_spectrum(features, labels, batch_size=30, epochs=5)
        assert len(accuracies) == 5
        assert all(0.0 <= a <= 1.0 for a in accuracies)

    def test_mgd_converges_faster_than_bgd_early_on(self):
        """The Figure 2 shape: per epoch, MGD makes more progress than BGD
        because it takes many more update steps."""
        features, labels = DATASET_PROFILES["census"].classification(600, seed=6)
        mgd = gradient_descent_spectrum(features, labels, batch_size=50, epochs=3)
        bgd = gradient_descent_spectrum(features, labels, batch_size=600, epochs=3)
        assert mgd[-1] >= bgd[-1]
