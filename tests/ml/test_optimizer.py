"""Tests for the MGD optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.registry import DATASET_PROFILES
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent


@pytest.fixture()
def dataset():
    return DATASET_PROFILES["census"].classification(300, seed=11)


class TestGradientDescentConfig:
    def test_defaults_are_valid(self):
        config = GradientDescentConfig()
        assert config.batch_size == 250
        assert config.epochs == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"learning_rate_decay": 0.0},
            {"learning_rate_decay": 1.5},
        ],
    )
    def test_invalid_hyperparameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GradientDescentConfig(**kwargs)


class TestMiniBatchGradientDescent:
    def test_prepare_batches_counts(self, dataset):
        features, labels = dataset
        optimizer = MiniBatchGradientDescent(GradientDescentConfig(batch_size=50))
        batches = optimizer.prepare_batches(features, labels)
        assert len(batches) == 6
        assert all(bx.shape[0] == 50 for bx, _ in batches)

    def test_prepare_batches_with_compression(self, dataset):
        features, labels = dataset
        optimizer = MiniBatchGradientDescent(GradientDescentConfig(batch_size=100))
        batches = optimizer.prepare_batches(features, labels, scheme=get_scheme("TOC"))
        assert all(hasattr(bx, "matvec") for bx, _ in batches)

    def test_training_reduces_loss(self, dataset):
        features, labels = dataset
        config = GradientDescentConfig(batch_size=50, epochs=5, learning_rate=0.5)
        optimizer = MiniBatchGradientDescent(config)
        model = LogisticRegressionModel(features.shape[1], seed=0)
        history = optimizer.fit(model, features, labels)
        assert history.epoch_losses[-1] < history.epoch_losses[0]
        assert len(history.epoch_losses) == 5
        assert history.total_time > 0

    def test_same_result_compressed_and_uncompressed(self, dataset):
        features, labels = dataset
        config = GradientDescentConfig(batch_size=50, epochs=3, learning_rate=0.3)

        dense_model = LogisticRegressionModel(features.shape[1], seed=0)
        MiniBatchGradientDescent(config).fit(dense_model, features, labels)

        toc_model = LogisticRegressionModel(features.shape[1], seed=0)
        MiniBatchGradientDescent(config).fit(toc_model, features, labels, scheme=get_scheme("TOC"))

        np.testing.assert_allclose(
            toc_model.get_parameters(), dense_model.get_parameters(), rtol=1e-8, atol=1e-10
        )

    def test_eval_fn_recorded_per_epoch(self, dataset):
        features, labels = dataset
        config = GradientDescentConfig(batch_size=100, epochs=4)
        optimizer = MiniBatchGradientDescent(config)
        model = LogisticRegressionModel(features.shape[1], seed=0)
        history = optimizer.fit(
            model, features, labels, eval_fn=lambda m: np.mean(m.predict(features) == labels)
        )
        assert len(history.epoch_metrics) == 4

    def test_learning_rate_decay_changes_trajectory(self, dataset):
        features, labels = dataset
        base = GradientDescentConfig(batch_size=50, epochs=3, learning_rate=0.5)
        decayed = GradientDescentConfig(
            batch_size=50, epochs=3, learning_rate=0.5, learning_rate_decay=0.5
        )
        model_a = LogisticRegressionModel(features.shape[1], seed=0)
        model_b = LogisticRegressionModel(features.shape[1], seed=0)
        MiniBatchGradientDescent(base).fit(model_a, features, labels)
        MiniBatchGradientDescent(decayed).fit(model_b, features, labels)
        assert not np.allclose(model_a.get_parameters(), model_b.get_parameters())

    def test_empty_batches_rejected(self):
        optimizer = MiniBatchGradientDescent()
        with pytest.raises(ValueError):
            optimizer.train(LogisticRegressionModel(4), [])

    def test_history_final_loss_requires_epochs(self):
        from repro.ml.optimizer import TrainingHistory

        with pytest.raises(ValueError):
            _ = TrainingHistory().final_loss

    def test_sgd_and_bgd_extremes(self, dataset):
        """Batch size 1 (SGD) and the full dataset (BGD) both converge."""
        features, labels = dataset
        features, labels = features[:60], labels[:60]
        for batch_size in (1, 60):
            config = GradientDescentConfig(batch_size=batch_size, epochs=3, learning_rate=0.01)
            model = LogisticRegressionModel(features.shape[1], seed=0)
            history = MiniBatchGradientDescent(config).fit(model, features, labels)
            assert history.epoch_losses[-1] <= history.epoch_losses[0]


class TestTrainStreaming:
    def test_streaming_matches_list_training(self, dataset):
        """Same batches through train() and train_streaming(): same parameters."""
        features, labels = dataset
        config = GradientDescentConfig(batch_size=50, epochs=3, learning_rate=0.1)
        mgd = MiniBatchGradientDescent(config)
        batches = mgd.prepare_batches(features, labels)

        by_list = LogisticRegressionModel(features.shape[1], seed=0)
        mgd.train(by_list, batches)

        by_stream = LogisticRegressionModel(features.shape[1], seed=0)
        history = mgd.train_streaming(by_stream, lambda: iter(batches))

        assert np.allclose(by_list.get_parameters(), by_stream.get_parameters())
        assert len(history.epoch_losses) == config.epochs
        assert history.epoch_losses[-1] <= history.epoch_losses[0]

    def test_streaming_records_eval_metrics(self, dataset):
        features, labels = dataset
        config = GradientDescentConfig(batch_size=50, epochs=2, learning_rate=0.1)
        mgd = MiniBatchGradientDescent(config)
        batches = mgd.prepare_batches(features, labels)
        model = LogisticRegressionModel(features.shape[1], seed=0)
        history = mgd.train_streaming(model, lambda: iter(batches), eval_fn=lambda m: 0.25)
        assert history.epoch_metrics == [0.25, 0.25]

    def test_streaming_rejects_empty_epoch(self, dataset):
        features, _ = dataset
        mgd = MiniBatchGradientDescent(GradientDescentConfig(epochs=1))
        with pytest.raises(ValueError):
            mgd.train_streaming(LogisticRegressionModel(features.shape[1]), lambda: iter([]))
