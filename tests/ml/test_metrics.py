"""Tests for the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.metrics import accuracy, error_rate, log_loss, mean_squared_error


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestErrorRate:
    def test_is_percentage_complement_of_accuracy(self):
        predictions = np.array([1, 1, 0, 0])
        targets = np.array([1, 0, 0, 0])
        assert error_rate(predictions, targets) == pytest.approx(25.0)


class TestLogLoss:
    def test_confident_correct_prediction_has_small_loss(self):
        assert log_loss(np.array([0.999]), np.array([1.0])) < 0.01

    def test_confident_wrong_prediction_has_large_loss(self):
        assert log_loss(np.array([0.999]), np.array([0.0])) > 3.0

    def test_clipping_avoids_infinities(self):
        assert np.isfinite(log_loss(np.array([0.0, 1.0]), np.array([1.0, 0.0])))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            log_loss(np.array([0.5]), np.array([1.0, 0.0]))


class TestMeanSquaredError:
    def test_zero_for_exact_prediction(self):
        assert mean_squared_error(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_value(self):
        assert mean_squared_error(np.array([0.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.array([1.0]), np.array([1.0, 2.0]))
