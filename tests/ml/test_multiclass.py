"""Tests for one-vs-rest multi-class training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.registry import DATASET_PROFILES
from repro.ml.metrics import accuracy
from repro.ml.models import LogisticRegressionModel
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.optimizer import GradientDescentConfig
from repro.data.minibatch import split_minibatches


@pytest.fixture()
def multiclass_data():
    return DATASET_PROFILES["mnist"].classification(240, seed=5)


class TestOneVsRest:
    def test_requires_at_least_two_classes(self):
        with pytest.raises(ValueError):
            OneVsRestClassifier(lambda: LogisticRegressionModel(4), n_classes=1)

    def test_one_model_per_class(self):
        clf = OneVsRestClassifier(lambda: LogisticRegressionModel(4), n_classes=5)
        assert len(clf.models) == 5

    def test_decision_scores_shape(self, multiclass_data):
        features, _ = multiclass_data
        clf = OneVsRestClassifier(lambda: LogisticRegressionModel(features.shape[1]), n_classes=10)
        assert clf.decision_scores(features).shape == (features.shape[0], 10)

    def test_training_beats_chance(self, multiclass_data):
        features, labels = multiclass_data
        n_classes = int(labels.max()) + 1
        clf = OneVsRestClassifier(
            lambda: LogisticRegressionModel(features.shape[1], seed=0), n_classes=n_classes
        )
        batches = split_minibatches(features, labels, batch_size=60, seed=0)
        clf.fit_batches(batches, GradientDescentConfig(batch_size=60, epochs=8, learning_rate=0.5))
        acc = accuracy(clf.predict(features), labels)
        assert acc > 1.5 / n_classes

    def test_training_on_compressed_batches_matches_dense(self, multiclass_data):
        features, labels = multiclass_data
        n_classes = int(labels.max()) + 1
        config = GradientDescentConfig(batch_size=80, epochs=2, learning_rate=0.3)

        def make_clf():
            return OneVsRestClassifier(
                lambda: LogisticRegressionModel(features.shape[1], seed=0), n_classes=n_classes
            )

        dense_batches = split_minibatches(features, labels, batch_size=80, seed=0)
        toc_batches = [
            (get_scheme("TOC").compress(bx), by) for bx, by in dense_batches
        ]
        dense_clf = make_clf()
        toc_clf = make_clf()
        dense_clf.fit_batches(dense_batches, config)
        toc_clf.fit_batches(toc_batches, config)
        for dense_model, toc_model in zip(dense_clf.models, toc_clf.models):
            np.testing.assert_allclose(
                toc_model.get_parameters(), dense_model.get_parameters(), rtol=1e-8, atol=1e-10
            )

    def test_histories_one_per_class(self, multiclass_data):
        features, labels = multiclass_data
        clf = OneVsRestClassifier(lambda: LogisticRegressionModel(features.shape[1]), n_classes=3)
        batches = split_minibatches(features, labels, batch_size=80, seed=0)
        histories = clf.fit_batches(batches, GradientDescentConfig(epochs=1))
        assert len(histories) == 3


class TestOneVsRestModel:
    """The protocol-shaped OVR variant: trains, checkpoints, round-trips."""

    def _data(self, k=3, n=240, d=8, seed=2):
        rng = np.random.default_rng(seed)
        centers = rng.normal(scale=2.0, size=(k, d))
        labels = rng.integers(0, k, size=n)
        features = centers[labels] + rng.normal(scale=0.4, size=(n, d))
        return features, labels.astype(np.float64)

    def test_unknown_base_rejected(self):
        from repro.ml.multiclass import OneVsRestModel

        with pytest.raises(ValueError, match="one-vs-rest base"):
            OneVsRestModel(4, base="linreg", n_classes=3)
        with pytest.raises(ValueError):
            OneVsRestModel(4, base="logreg", n_classes=1)

    @pytest.mark.parametrize("base", ["logreg", "svm", "logistic_regression"])
    def test_optimizer_protocol_trains_beyond_chance(self, base):
        from repro.ml.multiclass import OneVsRestModel
        from repro.ml.optimizer import MiniBatchGradientDescent

        features, labels = self._data()
        model = OneVsRestModel(features.shape[1], base=base, n_classes=3)
        batches = split_minibatches(features, labels, batch_size=60, seed=0)
        config = GradientDescentConfig(batch_size=60, epochs=12, learning_rate=0.2)
        history = MiniBatchGradientDescent(config).train(model, batches)
        assert history.epoch_losses[-1] < history.epoch_losses[0]
        assert accuracy(labels, model.predict(features)) > 0.8

    def test_training_on_compressed_batches_matches_dense(self):
        from repro.ml.multiclass import OneVsRestModel
        from repro.ml.optimizer import MiniBatchGradientDescent

        features, labels = self._data()
        config = GradientDescentConfig(batch_size=60, epochs=3, learning_rate=0.2)
        dense_model = OneVsRestModel(features.shape[1], n_classes=3, seed=1)
        compressed_model = OneVsRestModel(features.shape[1], n_classes=3, seed=1)
        dense_batches = split_minibatches(features, labels, batch_size=60, seed=0)
        compressed_batches = [
            (get_scheme("TOC").compress(m), t) for m, t in dense_batches
        ]
        MiniBatchGradientDescent(config).train(dense_model, dense_batches)
        MiniBatchGradientDescent(config).train(compressed_model, compressed_batches)
        np.testing.assert_allclose(
            dense_model.get_parameters(), compressed_model.get_parameters(), atol=1e-9
        )

    def test_parameter_vector_round_trip(self):
        from repro.ml.multiclass import OneVsRestModel

        model = OneVsRestModel(6, n_classes=4, seed=3)
        parameters = model.get_parameters()
        assert parameters.size == 4 * (6 + 1)
        clone = OneVsRestModel(6, n_classes=4, seed=9)
        clone.set_parameters(parameters)
        np.testing.assert_array_equal(clone.get_parameters(), parameters)
        with pytest.raises(ValueError, match="wrong length"):
            clone.set_parameters(parameters[:-1])

    def test_predict_proba_normalised(self):
        from repro.ml.multiclass import OneVsRestModel

        features, _ = self._data()
        model = OneVsRestModel(features.shape[1], n_classes=3)
        proba = model.predict_proba(features)
        assert proba.shape == (features.shape[0], 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        svm = OneVsRestModel(features.shape[1], base="svm", n_classes=3)
        with pytest.raises(AttributeError):
            svm.predict_proba(features)

    def test_checkpoint_round_trip(self, tmp_path):
        from repro.ml.multiclass import OneVsRestModel
        from repro.serve.checkpoint import load_checkpoint, save_checkpoint

        features, _ = self._data()
        model = OneVsRestModel(features.shape[1], base="svm", n_classes=3, l2=1e-3)
        save_checkpoint(model, tmp_path / "ckpt")
        restored = load_checkpoint(tmp_path / "ckpt").model
        assert isinstance(restored, OneVsRestModel)
        assert restored.base == "svm"
        assert restored.n_classes == 3
        assert restored.l2 == pytest.approx(1e-3)
        np.testing.assert_array_equal(
            restored.get_parameters(), model.get_parameters()
        )
        np.testing.assert_array_equal(
            restored.predict(features), model.predict(features)
        )

    def test_plain_classifier_still_not_checkpointable(self, tmp_path):
        from repro.serve.checkpoint import save_checkpoint

        plain = OneVsRestClassifier(lambda: LogisticRegressionModel(4), n_classes=3)
        with pytest.raises(ValueError, match="cannot checkpoint"):
            save_checkpoint(plain, tmp_path / "bad")
