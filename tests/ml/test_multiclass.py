"""Tests for one-vs-rest multi-class training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.registry import DATASET_PROFILES
from repro.ml.metrics import accuracy
from repro.ml.models import LogisticRegressionModel
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.optimizer import GradientDescentConfig
from repro.data.minibatch import split_minibatches


@pytest.fixture()
def multiclass_data():
    return DATASET_PROFILES["mnist"].classification(240, seed=5)


class TestOneVsRest:
    def test_requires_at_least_two_classes(self):
        with pytest.raises(ValueError):
            OneVsRestClassifier(lambda: LogisticRegressionModel(4), n_classes=1)

    def test_one_model_per_class(self):
        clf = OneVsRestClassifier(lambda: LogisticRegressionModel(4), n_classes=5)
        assert len(clf.models) == 5

    def test_decision_scores_shape(self, multiclass_data):
        features, _ = multiclass_data
        clf = OneVsRestClassifier(lambda: LogisticRegressionModel(features.shape[1]), n_classes=10)
        assert clf.decision_scores(features).shape == (features.shape[0], 10)

    def test_training_beats_chance(self, multiclass_data):
        features, labels = multiclass_data
        n_classes = int(labels.max()) + 1
        clf = OneVsRestClassifier(
            lambda: LogisticRegressionModel(features.shape[1], seed=0), n_classes=n_classes
        )
        batches = split_minibatches(features, labels, batch_size=60, seed=0)
        clf.fit_batches(batches, GradientDescentConfig(batch_size=60, epochs=8, learning_rate=0.5))
        acc = accuracy(clf.predict(features), labels)
        assert acc > 1.5 / n_classes

    def test_training_on_compressed_batches_matches_dense(self, multiclass_data):
        features, labels = multiclass_data
        n_classes = int(labels.max()) + 1
        config = GradientDescentConfig(batch_size=80, epochs=2, learning_rate=0.3)

        def make_clf():
            return OneVsRestClassifier(
                lambda: LogisticRegressionModel(features.shape[1], seed=0), n_classes=n_classes
            )

        dense_batches = split_minibatches(features, labels, batch_size=80, seed=0)
        toc_batches = [
            (get_scheme("TOC").compress(bx), by) for bx, by in dense_batches
        ]
        dense_clf = make_clf()
        toc_clf = make_clf()
        dense_clf.fit_batches(dense_batches, config)
        toc_clf.fit_batches(toc_batches, config)
        for dense_model, toc_model in zip(dense_clf.models, toc_clf.models):
            np.testing.assert_allclose(
                toc_model.get_parameters(), dense_model.get_parameters(), rtol=1e-8, atol=1e-10
            )

    def test_histories_one_per_class(self, multiclass_data):
        features, labels = multiclass_data
        clf = OneVsRestClassifier(lambda: LogisticRegressionModel(features.shape[1]), n_classes=3)
        batches = split_minibatches(features, labels, batch_size=80, seed=0)
        histories = clf.fit_batches(batches, GradientDescentConfig(epochs=1))
        assert len(histories) == 3
