"""Tests for the loss functions, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.losses import CrossEntropyLoss, HingeLoss, LogisticLoss, SquaredLoss


def _numerical_gradient(loss, scores, targets, eps=1e-6):
    """Central-difference gradient of the loss w.r.t. the scores."""
    scores = np.asarray(scores, dtype=np.float64)
    grad = np.zeros_like(scores)
    it = np.nditer(scores, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = scores.copy()
        minus = scores.copy()
        plus[idx] += eps
        minus[idx] -= eps
        grad[idx] = (loss.value(plus, targets) - loss.value(minus, targets)) / (2 * eps)
        it.iternext()
    return grad


class TestSquaredLoss:
    def test_zero_at_perfect_prediction(self):
        loss = SquaredLoss()
        assert loss.value(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_value(self):
        loss = SquaredLoss()
        assert loss.value(np.array([2.0]), np.array([0.0])) == pytest.approx(2.0)

    def test_gradient_matches_numerical(self, rng):
        loss = SquaredLoss()
        scores = rng.normal(size=10)
        targets = rng.normal(size=10)
        np.testing.assert_allclose(
            loss.gradient(scores, targets),
            _numerical_gradient(loss, scores, targets),
            rtol=1e-5,
            atol=1e-7,
        )


class TestLogisticLoss:
    def test_value_is_log2_at_zero_score(self):
        loss = LogisticLoss()
        assert loss.value(np.array([0.0]), np.array([1.0])) == pytest.approx(np.log(2))

    def test_gradient_matches_numerical(self, rng):
        loss = LogisticLoss()
        scores = rng.normal(size=12)
        targets = (rng.random(12) > 0.5).astype(np.float64)
        np.testing.assert_allclose(
            loss.gradient(scores, targets),
            _numerical_gradient(loss, scores, targets),
            rtol=1e-5,
            atol=1e-7,
        )

    def test_numerically_stable_at_extreme_scores(self):
        loss = LogisticLoss()
        scores = np.array([1000.0, -1000.0])
        targets = np.array([1.0, 0.0])
        assert np.isfinite(loss.value(scores, targets))
        assert np.all(np.isfinite(loss.gradient(scores, targets)))

    def test_predict_proba_bounds(self, rng):
        loss = LogisticLoss()
        probs = loss.predict_proba(rng.normal(scale=50, size=100))
        assert np.all(probs >= 0) and np.all(probs <= 1)


class TestHingeLoss:
    def test_zero_loss_outside_margin(self):
        loss = HingeLoss()
        assert loss.value(np.array([2.0]), np.array([1.0])) == 0.0
        assert loss.value(np.array([-2.0]), np.array([0.0])) == 0.0

    def test_loss_inside_margin(self):
        loss = HingeLoss()
        assert loss.value(np.array([0.5]), np.array([1.0])) == pytest.approx(0.5)

    def test_gradient_matches_numerical_away_from_kink(self, rng):
        loss = HingeLoss()
        # Stay away from the non-differentiable point signed*score == 1.
        scores = np.array([2.0, -3.0, 0.2, -0.4, 5.0])
        targets = np.array([1.0, 0.0, 0.0, 1.0, 1.0])
        np.testing.assert_allclose(
            loss.gradient(scores, targets),
            _numerical_gradient(loss, scores, targets),
            rtol=1e-5,
            atol=1e-7,
        )


class TestCrossEntropyLoss:
    def test_uniform_prediction_loss_is_log_k(self):
        loss = CrossEntropyLoss()
        scores = np.zeros((4, 3))
        targets = np.array([0, 1, 2, 0])
        assert loss.value(scores, targets) == pytest.approx(np.log(3))

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropyLoss()
        scores = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        np.testing.assert_allclose(
            loss.gradient(scores, targets),
            _numerical_gradient(loss, scores, targets),
            rtol=1e-4,
            atol=1e-7,
        )

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        scores = rng.normal(size=(5, 3))
        targets = rng.integers(0, 3, size=5)
        np.testing.assert_allclose(loss.gradient(scores, targets).sum(axis=1), 0.0, atol=1e-12)

    def test_stable_at_extreme_scores(self):
        loss = CrossEntropyLoss()
        scores = np.array([[1000.0, -1000.0], [-1000.0, 1000.0]])
        targets = np.array([0, 1])
        assert np.isfinite(loss.value(scores, targets))
