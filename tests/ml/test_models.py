"""Tests for the ML models, including the compressed-vs-dense equivalence
that makes the whole "train on compressed batches" approach sound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import available_schemes, get_scheme
from repro.data.registry import DATASET_PROFILES
from repro.ml.models import (
    FeedForwardNetwork,
    LinearRegressionModel,
    LinearSVMModel,
    LogisticRegressionModel,
)

SCHEMES = available_schemes(include_ablations=True)


@pytest.fixture()
def labeled_batch():
    profile = DATASET_PROFILES["census"]
    features, labels = profile.classification(80, seed=3)
    return features, labels


class TestLinearModels:
    @pytest.mark.parametrize("model_cls", [LinearRegressionModel, LogisticRegressionModel, LinearSVMModel])
    def test_scores_shape(self, model_cls, labeled_batch):
        features, _ = labeled_batch
        model = model_cls(features.shape[1])
        assert model.scores(features).shape == (features.shape[0],)

    @pytest.mark.parametrize(
        ("model_cls", "learning_rate"),
        [
            # Squared loss has unbounded gradients on these feature scales, so
            # linear regression needs a much smaller step than LR/SVM.
            (LinearRegressionModel, 1e-3),
            (LogisticRegressionModel, 0.5),
            (LinearSVMModel, 0.5),
        ],
    )
    def test_gradient_step_reduces_loss(self, model_cls, learning_rate, labeled_batch):
        features, labels = labeled_batch
        model = model_cls(features.shape[1], seed=0)
        before = model.loss(features, labels)
        for _ in range(20):
            model.gradient_step(features, labels, learning_rate)
        assert model.loss(features, labels) < before

    def test_l2_regularisation_increases_loss(self, labeled_batch):
        features, labels = labeled_batch
        plain = LogisticRegressionModel(features.shape[1], l2=0.0, seed=0)
        regularised = LogisticRegressionModel(features.shape[1], l2=1.0, seed=0)
        # Identical weights initially, so the only difference is the penalty.
        assert regularised.loss(features, labels) > plain.loss(features, labels)

    def test_parameter_roundtrip(self, labeled_batch):
        features, _ = labeled_batch
        model = LogisticRegressionModel(features.shape[1], seed=1)
        params = model.get_parameters()
        other = LogisticRegressionModel(features.shape[1], seed=2)
        other.set_parameters(params)
        np.testing.assert_array_equal(other.get_parameters(), params)

    def test_set_parameters_wrong_length_rejected(self, labeled_batch):
        features, _ = labeled_batch
        model = LogisticRegressionModel(features.shape[1])
        with pytest.raises(ValueError):
            model.set_parameters(np.ones(3))

    def test_invalid_feature_count_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionModel(0)

    def test_logistic_predictions_are_binary(self, labeled_batch):
        features, labels = labeled_batch
        model = LogisticRegressionModel(features.shape[1], seed=0)
        model.gradient_step(features, labels, 0.5)
        assert set(np.unique(model.predict(features))) <= {0.0, 1.0}

    def test_svm_predictions_are_binary(self, labeled_batch):
        features, labels = labeled_batch
        model = LinearSVMModel(features.shape[1], seed=0)
        model.gradient_step(features, labels, 0.5)
        assert set(np.unique(model.predict(features))) <= {0.0, 1.0}


class TestGradientEquivalenceAcrossSchemes:
    """The central claim: training on any compressed format gives exactly the
    same parameter updates as training on the dense data."""

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_linear_gradient_identical(self, scheme_name, labeled_batch):
        features, labels = labeled_batch
        compressed = get_scheme(scheme_name).compress(features)
        dense_model = LogisticRegressionModel(features.shape[1], seed=0)
        comp_model = LogisticRegressionModel(features.shape[1], seed=0)
        dense_grad, dense_bias = dense_model.gradient(features, labels)
        comp_grad, comp_bias = comp_model.gradient(compressed, labels)
        np.testing.assert_allclose(comp_grad, dense_grad, rtol=1e-9, atol=1e-12)
        assert comp_bias == pytest.approx(dense_bias, rel=1e-9)

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_network_step_identical(self, scheme_name, labeled_batch):
        features, labels = labeled_batch
        compressed = get_scheme(scheme_name).compress(features)
        dense_model = FeedForwardNetwork(features.shape[1], hidden_sizes=(16,), seed=0)
        comp_model = FeedForwardNetwork(features.shape[1], hidden_sizes=(16,), seed=0)
        dense_model.gradient_step(features, labels.astype(int), 0.1)
        comp_model.gradient_step(compressed, labels.astype(int), 0.1)
        np.testing.assert_allclose(
            comp_model.get_parameters(), dense_model.get_parameters(), rtol=1e-9, atol=1e-12
        )

    def test_multi_step_training_identical_on_toc(self, labeled_batch):
        features, labels = labeled_batch
        compressed = get_scheme("TOC").compress(features)
        dense_model = LinearSVMModel(features.shape[1], seed=0)
        comp_model = LinearSVMModel(features.shape[1], seed=0)
        for _ in range(10):
            dense_model.gradient_step(features, labels, 0.3)
            comp_model.gradient_step(compressed, labels, 0.3)
        np.testing.assert_allclose(
            comp_model.get_parameters(), dense_model.get_parameters(), rtol=1e-8, atol=1e-10
        )


class TestFeedForwardNetwork:
    def test_output_shape_multiclass(self, labeled_batch):
        features, _ = labeled_batch
        model = FeedForwardNetwork(features.shape[1], hidden_sizes=(8, 4), n_classes=5)
        assert model.scores(features).shape == (features.shape[0], 5)

    def test_training_reduces_loss(self, labeled_batch):
        features, labels = labeled_batch
        model = FeedForwardNetwork(features.shape[1], hidden_sizes=(16,), seed=0)
        before = model.loss(features, labels.astype(int))
        for _ in range(30):
            model.gradient_step(features, labels.astype(int), 0.5)
        assert model.loss(features, labels.astype(int)) < before

    def test_predictions_in_class_range(self, labeled_batch):
        features, _ = labeled_batch
        model = FeedForwardNetwork(features.shape[1], hidden_sizes=(8,), n_classes=4)
        predictions = model.predict(features)
        assert np.all((predictions >= 0) & (predictions < 4))

    def test_parameter_roundtrip(self, labeled_batch):
        features, _ = labeled_batch
        model = FeedForwardNetwork(features.shape[1], hidden_sizes=(8, 4), seed=0)
        params = model.get_parameters()
        other = FeedForwardNetwork(features.shape[1], hidden_sizes=(8, 4), seed=99)
        other.set_parameters(params)
        np.testing.assert_array_equal(other.get_parameters(), params)

    def test_two_hidden_layers_backprop_is_finite(self, labeled_batch):
        features, labels = labeled_batch
        model = FeedForwardNetwork(features.shape[1], hidden_sizes=(12, 6), seed=0)
        for _ in range(5):
            model.gradient_step(features, labels.astype(int), 0.2)
        assert np.all(np.isfinite(model.get_parameters()))

    def test_requires_hidden_layer(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork(4, hidden_sizes=())

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork(4, n_classes=1)


class TestTable1OperationUsage:
    """Executable version of Table 1: which core ops each model touches."""

    class _Recorder:
        def __init__(self, inner):
            self._inner = inner
            self.called = set()

        def matvec(self, v):
            self.called.add("matvec")
            return self._inner.matvec(v)

        def rmatvec(self, v):
            self.called.add("rmatvec")
            return self._inner.rmatvec(v)

        def matmat(self, m):
            self.called.add("matmat")
            return self._inner.matmat(m)

        def rmatmat(self, m):
            self.called.add("rmatmat")
            return self._inner.rmatmat(m)

    def test_linear_models_use_vector_ops_only(self, labeled_batch):
        features, labels = labeled_batch
        for model in (
            LinearRegressionModel(features.shape[1]),
            LogisticRegressionModel(features.shape[1]),
            LinearSVMModel(features.shape[1]),
        ):
            recorder = self._Recorder(get_scheme("TOC").compress(features))
            model.gradient_step(recorder, labels, 0.1)
            assert recorder.called == {"matvec", "rmatvec"}

    def test_network_uses_matrix_ops(self, labeled_batch):
        features, labels = labeled_batch
        model = FeedForwardNetwork(features.shape[1], hidden_sizes=(8,))
        recorder = self._Recorder(get_scheme("TOC").compress(features))
        model.gradient_step(recorder, labels.astype(int), 0.1)
        assert recorder.called == {"matmat", "rmatmat"}
