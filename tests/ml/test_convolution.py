"""Tests for the im2col / compressed-convolution extension (paper Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.convolution import CompressedConv2d, conv2d_direct, im2col


def _quantised_images(batch: int, height: int, width: int, channels: int | None = None, seed: int = 0):
    """Images with a small value domain (so the replicated matrix compresses)."""
    rng = np.random.default_rng(seed)
    shape = (batch, height, width) if channels is None else (batch, channels, height, width)
    return rng.integers(0, 4, size=shape).astype(np.float64)


class TestIm2col:
    def test_output_shape_single_channel(self):
        images = _quantised_images(2, 6, 6)
        matrix, (batch, oh, ow) = im2col(images, kernel_size=3)
        assert (batch, oh, ow) == (2, 4, 4)
        assert matrix.shape == (2 * 4 * 4, 9)

    def test_output_shape_multi_channel_with_stride(self):
        images = _quantised_images(1, 8, 8, channels=3)
        matrix, (batch, oh, ow) = im2col(images, kernel_size=2, stride=2)
        assert (batch, oh, ow) == (1, 4, 4)
        assert matrix.shape == (16, 3 * 4)

    def test_rows_contain_the_windows(self):
        image = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
        matrix, _ = im2col(image, kernel_size=2)
        assert matrix[0].tolist() == [0.0, 1.0, 4.0, 5.0]
        assert matrix[-1].tolist() == [10.0, 11.0, 14.0, 15.0]

    def test_kernel_larger_than_image_rejected(self):
        with pytest.raises(ValueError):
            im2col(_quantised_images(1, 3, 3), kernel_size=5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            im2col(_quantised_images(1, 4, 4), kernel_size=0)
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4)), kernel_size=2)


class TestConv2dDirect:
    def test_matches_manual_convolution(self):
        image = np.arange(9, dtype=np.float64).reshape(1, 3, 3)
        kernel = np.ones((1, 1, 2, 2))
        output = conv2d_direct(image, kernel)
        expected = np.array([[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])
        assert np.array_equal(output[0, 0], expected)

    def test_multi_filter_shapes(self):
        images = _quantised_images(3, 7, 7, channels=2)
        kernels = np.random.default_rng(0).normal(size=(5, 2, 3, 3))
        output = conv2d_direct(images, kernels)
        assert output.shape == (3, 5, 5, 5)


class TestCompressedConv2d:
    @pytest.mark.parametrize("scheme", ["TOC", "CSR", "DEN"])
    def test_forward_matches_direct_convolution(self, scheme):
        images = _quantised_images(3, 8, 8, seed=1)
        kernels = np.random.default_rng(2).normal(size=(4, 1, 3, 3))
        layer = CompressedConv2d(kernel_size=3, scheme=scheme).bind(images)
        np.testing.assert_allclose(
            layer.forward(kernels), conv2d_direct(images, kernels), rtol=1e-9
        )

    def test_replication_makes_toc_compress_well(self):
        """The Section 6 claim: im2col replication boosts TOC's ratio."""
        images = _quantised_images(4, 12, 12, seed=3)
        layer = CompressedConv2d(kernel_size=3, scheme="TOC").bind(images)
        assert layer.compression_ratio > 3.0

    def test_forward_with_updated_kernels_reuses_compression(self):
        images = _quantised_images(2, 6, 6, seed=4)
        layer = CompressedConv2d(kernel_size=3, scheme="TOC").bind(images)
        first = layer.forward(np.ones((2, 1, 3, 3)))
        second = layer.forward(np.full((2, 1, 3, 3), 2.0))
        np.testing.assert_allclose(second, first * 2.0)

    def test_unbound_layer_rejected(self):
        layer = CompressedConv2d(kernel_size=3)
        with pytest.raises(RuntimeError):
            layer.forward(np.ones((1, 1, 3, 3)))

    def test_mismatched_kernel_shape_rejected(self):
        images = _quantised_images(1, 6, 6)
        layer = CompressedConv2d(kernel_size=3).bind(images)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 2, 3, 3)))  # wrong channel count

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            CompressedConv2d(kernel_size=0)
