"""Accelerated kernels must be bit-for-bit equivalent to the Python reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import exec as xops
from repro import kernels
from repro.compression.registry import available_schemes, get_scheme
from repro.core.toc import TOCMatrix
from repro.kernels import numpy_backend, python_backend

ALL_SCHEMES = available_schemes(include_ablations=True)

varint_values = st.lists(
    st.integers(min_value=0, max_value=2**63 - 1), min_size=0, max_size=64
)


class TestVarintEquivalence:
    @given(values=varint_values)
    @settings(max_examples=100, deadline=None)
    def test_encode_identical(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert numpy_backend.varint_encode(arr) == python_backend.varint_encode(arr)

    @given(values=varint_values)
    @settings(max_examples=100, deadline=None)
    def test_decode_identical(self, values):
        raw = python_backend.varint_encode(np.asarray(values, dtype=np.int64))
        got_np, used_np = numpy_backend.varint_decode(raw)
        got_py, used_py = python_backend.varint_decode(raw)
        assert np.array_equal(got_np, got_py)
        assert used_np == used_py == len(raw)

    @given(values=varint_values, extra=st.integers(min_value=0, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_count_and_consumed_identical(self, values, extra):
        """Prefix decodes (validate_tail=False) must agree on bytes consumed."""
        arr = np.asarray(values, dtype=np.int64)
        raw = python_backend.varint_encode(arr) + b"\xff" * extra
        count = len(values)
        got_np, used_np = numpy_backend.varint_decode(raw, count, False)
        got_py, used_py = python_backend.varint_decode(raw, count, False)
        assert np.array_equal(got_np, got_py)
        assert used_np == used_py

    @pytest.mark.parametrize(
        "raw",
        [
            b"\x80",  # lone continuation byte
            b"\x01\x02\x80",  # truncated trailing varint
            b"\xff" * 10 + b"\x01",  # >9-byte varint overflows int64
        ],
    )
    def test_error_cases_agree(self, raw):
        for backend in (python_backend, numpy_backend):
            with pytest.raises(ValueError):
                backend.varint_decode(raw)


class TestRowSliceEquivalence:
    @staticmethod
    def _slice_args(dense, index):
        toc = TOCMatrix.encode(dense)
        enc, tree = toc.logical, toc.decode_tree
        return (
            enc.codes,
            enc.row_offsets,
            tree.key_columns,
            tree.key_values,
            tree.parents,
            np.asarray(index, dtype=np.intp),
            enc.n_cols,
        )

    @given(
        n_rows=st.integers(min_value=1, max_value=40),
        n_cols=st.integers(min_value=1, max_value=12),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_shapes_and_sparsities(self, n_rows, n_cols, density, seed):
        rng = np.random.default_rng(seed)
        dense = np.round(rng.random((n_rows, n_cols)), 1)
        dense[rng.random((n_rows, n_cols)) >= density] = 0.0
        index = rng.integers(0, n_rows, size=rng.integers(0, n_rows + 1))
        args = self._slice_args(dense, index)
        got = numpy_backend.toc_row_slice(*args)
        ref = python_backend.toc_row_slice(*args)
        assert np.array_equal(got, ref)
        assert np.array_equal(got, dense[index])

    def test_empty_selection(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        args = self._slice_args(dense, [])
        for backend in (python_backend, numpy_backend):
            out = backend.toc_row_slice(*args)
            assert out.shape == (0, 2)

    def test_single_row_input(self):
        dense = np.array([[0.5, 0.0, 1.5]])
        args = self._slice_args(dense, [0, 0, 0])
        for backend in (python_backend, numpy_backend):
            assert np.array_equal(backend.toc_row_slice(*args), dense[[0, 0, 0]])


class TestViGatherEquivalence:
    @given(
        n_dict=st.integers(min_value=1, max_value=20),
        n_codes=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_gather_identical(self, n_dict, n_codes, seed):
        rng = np.random.default_rng(seed)
        dictionary = rng.normal(size=n_dict)
        codes = rng.integers(0, n_dict, size=n_codes)
        assert np.array_equal(
            numpy_backend.vi_gather(dictionary, codes),
            python_backend.vi_gather(dictionary, codes),
        )


class TestSchemesAcrossBackends:
    """Every compression scheme's row_slice agrees across backends."""

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_row_slice_matches_dense(self, scheme_name, backend, rng):
        dense = np.round(rng.random((15, 6)) * (rng.random((15, 6)) < 0.5), 1)
        compressed = get_scheme(scheme_name).compress(dense)
        rows = [14, 0, 3, 3, 9]  # request order and duplicates must be honoured
        with kernels.use_backend(backend):
            np.testing.assert_allclose(
                xops.row_slice(compressed, rows), dense[rows], rtol=1e-9, atol=1e-12
            )

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_empty_and_single_row(self, scheme_name, backend, rng):
        dense = np.round(rng.random((5, 4)), 1)
        compressed = get_scheme(scheme_name).compress(dense)
        with kernels.use_backend(backend):
            assert xops.row_slice(compressed, []).shape == (0, 4)
            np.testing.assert_allclose(
                xops.row_slice(compressed, [2]), dense[[2]], rtol=1e-9
            )

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_roundtrip_bytes_unchanged_by_backend(self, scheme_name, rng):
        """Serialized payloads are backend-independent."""
        dense = np.round(rng.random((10, 5)) * (rng.random((10, 5)) < 0.6), 1)
        scheme = get_scheme(scheme_name)
        with kernels.use_backend("python"):
            raw_py = scheme.compress(dense).to_bytes()
        with kernels.use_backend("numpy"):
            raw_np = scheme.compress(dense).to_bytes()
        assert raw_py == raw_np
        np.testing.assert_allclose(
            scheme.decompress_bytes(raw_np).to_dense(), dense, rtol=1e-9
        )
