"""Backend registry behaviour: selection, fallback, and obs surfacing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.kernels import numba_backend
from repro.obs import metrics


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-global backend as it found it."""
    before = kernels.active_backend()
    yield
    kernels.set_backend(before)


class TestRegistry:
    def test_default_backend_is_numpy(self):
        assert kernels.DEFAULT_BACKEND == "numpy"
        assert kernels.active_backend() in kernels.BACKENDS

    def test_set_backend_roundtrip(self):
        assert kernels.set_backend("python") == "python"
        assert kernels.active_backend() == "python"
        assert kernels.set_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("fortran")

    def test_use_backend_restores_previous(self):
        kernels.set_backend("numpy")
        with kernels.use_backend("python") as name:
            assert name == "python"
            assert kernels.active_backend() == "python"
        assert kernels.active_backend() == "numpy"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        monkeypatch.setattr(kernels, "_active_module", None)
        monkeypatch.setattr(kernels, "_active_name", None)
        assert kernels.active_backend() == "python"

    def test_unknown_env_value_degrades_to_default(self, monkeypatch):
        """A typo'd REPRO_KERNELS must not explode the first encode."""
        monkeypatch.setenv(kernels.ENV_VAR, "garbage")
        monkeypatch.setattr(kernels, "_active_module", None)
        monkeypatch.setattr(kernels, "_active_name", None)
        counter = metrics.counter("kernels.fallbacks", requested="garbage")
        before = counter.value
        assert kernels.active_backend() == kernels.DEFAULT_BACKEND
        assert counter.value == before + 1


class TestNumbaFallback:
    def test_missing_numba_falls_back_to_numpy(self):
        resolved = kernels.set_backend("numba")
        if numba_backend.available():
            assert resolved == "numba"
        else:
            assert resolved == "numpy"

    def test_strict_raises_when_unavailable(self):
        if numba_backend.available():
            pytest.skip("numba is installed here")
        with pytest.raises(ImportError, match="numba backend unavailable"):
            kernels.set_backend("numba", strict=True)

    def test_fallback_is_counted(self):
        if numba_backend.available():
            pytest.skip("numba is installed here")
        counter = metrics.counter("kernels.fallbacks", requested="numba")
        before = counter.value
        kernels.set_backend("numba")
        assert counter.value == before + 1


class TestObsSurfacing:
    def test_calls_are_counted_per_op_and_backend(self):
        kernels.set_backend("numpy")
        counter = metrics.counter("kernels.calls", op="varint_encode", backend="numpy")
        before = counter.value
        kernels.varint_encode(np.array([1, 2, 3], dtype=np.int64))
        assert counter.value == before + 1

    def test_backend_label_follows_selection(self):
        with kernels.use_backend("python"):
            counter = metrics.counter("kernels.calls", op="vi_gather", backend="python")
            before = counter.value
            kernels.vi_gather(np.array([1.5, 2.5]), np.array([1, 0, 1]))
            assert counter.value == before + 1


@pytest.mark.skipif(not numba_backend.available(), reason="numba not installed")
class TestNumbaKernels:
    """Exercised only on the CI leg that installs numba."""

    def test_varint_roundtrip_matches_reference(self):
        from repro.kernels import python_backend

        rng = np.random.default_rng(3)
        values = rng.integers(0, 2**63 - 1, size=200, dtype=np.int64)
        encoded = numba_backend.varint_encode(values)
        assert encoded == python_backend.varint_encode(values)
        decoded, consumed = numba_backend.varint_decode(encoded)
        assert np.array_equal(decoded, values)
        assert consumed == len(encoded)

    def test_truncated_tail_raises(self):
        encoded = numba_backend.varint_encode(np.array([1, 2], dtype=np.int64))
        with pytest.raises(ValueError, match="truncated"):
            numba_backend.varint_decode(encoded + b"\x80", count=2)

    def test_row_slice_matches_reference(self):
        from repro.core.toc import TOCMatrix
        from repro.kernels import python_backend

        rng = np.random.default_rng(4)
        dense = np.round(rng.random((30, 8)) * (rng.random((30, 8)) < 0.4), 1)
        toc = TOCMatrix.encode(dense)
        enc, tree = toc.logical, toc.decode_tree
        index = np.array([5, 2, 5, 0, 29])
        args = (enc.codes, enc.row_offsets, tree.key_columns, tree.key_values,
                tree.parents, index, enc.n_cols)
        assert np.array_equal(
            numba_backend.toc_row_slice(*args), python_backend.toc_row_slice(*args)
        )
