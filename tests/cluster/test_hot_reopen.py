"""Hot-reopen: workers follow a manifest-generation swap without downtime.

Compacting a live dataset rewrites its shards and deletes the superseded
files.  Workers must notice the manifest-generation bump (or hit the stale
file descriptor and recover) and keep answering — no request may error and
post-swap predictions must match the pre-swap model output.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import Dataset, Estimator, open_service
from repro.cluster import ClusterService
from repro.data.registry import DATASET_PROFILES

N_ROWS = 240


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    features, labels = DATASET_PROFILES["census"].classification(N_ROWS, seed=33)
    shard_dir = tmp_path_factory.mktemp("reopen-shards")
    registry = tmp_path_factory.mktemp("reopen-registry")
    # DEN shards so readvise re-encodes to a sparser scheme and the compact
    # actually replaces (and unlinks) the files the workers hold open.
    dataset = Dataset.create(
        shard_dir, features, labels, scheme="DEN", batch_size=60, executor="serial"
    )
    estimator = Estimator("logreg", epochs=2, learning_rate=0.3)
    estimator.fit(dataset)
    estimator.save(registry)
    # Baseline from the stored rows, the workers' actual serving inputs.
    service, _ = open_service(registry, cache_size=0)
    expected = np.asarray(
        estimator.predict(service.store.get_rows(list(range(N_ROWS))))
    )
    service.close()
    return registry, shard_dir, dataset, expected


class TestHotReopen:
    def test_compact_under_load_drops_no_requests(self, live):
        registry, shard_dir, dataset, expected = live
        with ClusterService(
            registry,
            shard_dir=shard_dir,
            workers=2,
            backlog=16,
            cache_size=0,
            poll_seconds=0.1,
        ) as cluster:
            generation_before = max(cluster.generations())
            errors: list[BaseException] = []
            answered = 0
            stop = threading.Event()
            lock = threading.Lock()

            def hammer():
                nonlocal answered
                i = 0
                while not stop.is_set():
                    try:
                        cluster.predict(i % N_ROWS)
                    except BaseException as exc:  # noqa: BLE001 - recorded
                        with lock:
                            errors.append(exc)
                    else:
                        with lock:
                            answered += 1
                    i += 1

            client = threading.Thread(target=hammer)
            client.start()
            try:
                time.sleep(0.3)  # requests in flight before the swap
                stats = dataset.compact(readvise=True, executor="serial")
                assert stats is not None
                # Wait for every worker to observe the new generation.
                deadline = time.monotonic() + 30
                target = generation_before + 1
                while (
                    min(cluster.generations()) < target
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.1)
                time.sleep(0.3)  # keep hammering against the new shards
            finally:
                stop.set()
                client.join(timeout=30)

            assert errors == []
            assert answered > 0
            assert min(cluster.generations()) == target
            # Post-swap correctness: the rewritten shards decode to the
            # same features, so predictions are unchanged.
            np.testing.assert_allclose(
                cluster.predict_many(range(N_ROWS)), expected
            )
