"""Tests for the asyncio serving surface (in-process admission + deadlines)."""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.api import Dataset, Estimator, open_service
from repro.cluster import (
    AsyncPredictionService,
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.data.registry import DATASET_PROFILES
from repro.serve.service import PredictionService


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    features, labels = DATASET_PROFILES["census"].classification(240, seed=11)
    shard_dir = tmp_path_factory.mktemp("async-shards")
    registry = tmp_path_factory.mktemp("async-registry")
    dataset = Dataset.create(
        shard_dir, features, labels, scheme="TOC", batch_size=60, executor="serial"
    )
    estimator = Estimator("logreg", epochs=2, learning_rate=0.3)
    estimator.fit(dataset)
    estimator.save(registry)
    return registry, dataset, estimator


class _SlowModel:
    """A model whose predictions take a controllable amount of wall time."""

    n_features = 4

    def __init__(self, seconds: float):
        self.seconds = seconds

    def predict(self, matrix):
        time.sleep(self.seconds)
        return np.zeros(matrix.shape[0])


def _run(coro):
    return asyncio.run(coro)


class TestPrediction:
    def test_predict_matches_sync_service(self, published):
        registry, _, estimator = published
        service, _ = open_service(registry, cache_size=0)
        ids = [0, 5, 100, 239]
        expected = estimator.predict(service.store.get_rows(ids))

        async def go():
            async with AsyncPredictionService(service) as aps:
                return await aps.predict_many(ids)

        np.testing.assert_allclose(_run(go()), expected)

    def test_predict_vector(self, published):
        registry, _, _ = published
        service, _ = open_service(registry)
        vector = service.store.get_row(3)

        async def go():
            async with AsyncPredictionService(service) as aps:
                one = await aps.predict(3)
                other = await aps.predict_vector(vector)
                return one, other

        one, other = _run(go())
        assert one == other

    def test_concurrent_requests_micro_batch(self, published):
        registry, _, _ = published
        service, _ = open_service(registry, max_batch_size=16, cache_size=0)

        async def go():
            async with AsyncPredictionService(service) as aps:
                await asyncio.gather(*(aps.predict(i) for i in range(48)))

        _run(go())
        assert service.batcher_stats.batches < 48

    def test_event_loop_not_blocked_during_decode(self, published):
        registry, _, _ = published
        service, _ = open_service(registry, cache_size=0)
        ticks = []

        async def ticker():
            for _ in range(20):
                ticks.append(time.monotonic())
                await asyncio.sleep(0.001)

        async def go():
            async with AsyncPredictionService(service) as aps:
                await asyncio.gather(
                    aps.predict_many(list(range(60))), ticker()
                )

        _run(go())
        # The ticker kept running while predictions decoded off-loop: no
        # single gap close to the full serving time.
        gaps = np.diff(ticks)
        assert gaps.max() < 0.5


class TestAdmission:
    def test_reject_policy_raises_overloaded(self):
        service = PredictionService(_SlowModel(0.05), max_batch_size=1)

        async def go():
            aps = AsyncPredictionService(service, max_inflight=1, admission="reject")
            first = asyncio.ensure_future(aps.predict_vector([0.0] * 4))
            await asyncio.sleep(0.01)  # let the first request occupy the slot
            with pytest.raises(ServiceOverloaded):
                await aps.predict_vector([1.0] * 4)
            await first
            await aps.close()

        _run(go())

    def test_block_policy_waits_for_a_slot(self):
        service = PredictionService(_SlowModel(0.02), max_batch_size=1)

        async def go():
            aps = AsyncPredictionService(service, max_inflight=1, admission="block")
            results = await asyncio.gather(
                *(aps.predict_vector([float(i)] * 4) for i in range(4))
            )
            assert aps.inflight == 0
            await aps.close()
            return results

        assert len(_run(go())) == 4

    def test_block_policy_sheds_on_deadline(self):
        service = PredictionService(_SlowModel(0.2), max_batch_size=1)

        async def go():
            aps = AsyncPredictionService(service, max_inflight=1, admission="block")
            first = asyncio.ensure_future(aps.predict_vector([0.0] * 4))
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                await aps.predict_vector([1.0] * 4, deadline=0.05)
            await first
            await aps.close()

        _run(go())

    def test_deadline_sheds_slow_prediction(self):
        service = PredictionService(_SlowModel(0.5), max_batch_size=1)

        async def go():
            aps = AsyncPredictionService(service, default_deadline=0.05)
            with pytest.raises(DeadlineExceeded):
                await aps.predict_vector([0.0] * 4)
            await aps.close(drain=False)

        _run(go())

    def test_invalid_admission_rejected(self):
        service = PredictionService(_SlowModel(0.0))
        with pytest.raises(ValueError, match="admission"):
            AsyncPredictionService(service, admission="drop")
        service.close()

    def test_closed_service_rejects_new_requests(self):
        service = PredictionService(_SlowModel(0.0))

        async def go():
            aps = AsyncPredictionService(service)
            await aps.close()
            with pytest.raises(ServiceClosed):
                await aps.predict_vector([0.0] * 4)

        _run(go())


class TestMetrics:
    def test_metrics_merge_serve_and_cluster_series(self, published):
        registry, _, _ = published
        service, _ = open_service(registry, cache_size=8)

        async def go():
            async with AsyncPredictionService(service, max_inflight=4) as aps:
                await aps.predict_many([0, 1, 2, 3])
                return aps.metrics()

        metrics = _run(go())
        assert metrics["counters"]["cluster.async.requests"] == 4
        assert "serve.requests" in metrics["counters"]
        assert metrics["gauges"]["cluster.async.inflight"] == 0

    def test_per_request_exceptions_in_predict_many(self):
        service = PredictionService(_SlowModel(0.1), max_batch_size=1)

        async def go():
            aps = AsyncPredictionService(service, max_inflight=1, admission="reject")
            results = await asyncio.gather(
                *(
                    aps.predict_vector([0.0] * 4)
                    for _ in range(3)
                ),
                return_exceptions=True,
            )
            await aps.close()
            return results

        results = _run(go())
        assert any(isinstance(r, ServiceOverloaded) for r in results)
        assert any(isinstance(r, float) for r in results)


class TestGenerationWatching:
    def test_watcher_reopens_after_compact(self, tmp_path):
        features, labels = DATASET_PROFILES["census"].classification(200, seed=5)
        # DEN shards: readvise re-encodes to a sparser scheme, so the compact
        # genuinely swaps files and bumps the manifest generation (a no-op
        # compact deliberately does neither).
        dataset = Dataset.create(
            tmp_path / "shards", features, labels, scheme="DEN",
            batch_size=50, executor="serial",
        )
        estimator = Estimator("logreg", epochs=1)
        estimator.fit(dataset)
        estimator.save(tmp_path / "registry")
        service, _ = open_service(tmp_path / "registry", cache_size=0)
        generation_before = service.generation

        reopened = threading.Event()
        original = service.maybe_reopen_store

        def spy():
            if original():
                reopened.set()
                return True
            return False

        async def go():
            aps = AsyncPredictionService(service, watch_generation=0.05)
            aps._watcher.callback = spy
            expected = await aps.predict(0)
            dataset.compact(readvise=True, executor="serial")
            assert reopened.wait(timeout=5)
            assert await aps.predict(0) == expected
            await aps.close()

        _run(go())
        assert service.generation == generation_before + 1
