"""Tests for the length-prefixed JSON frame protocol."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestRoundTrip:
    def test_one_frame_round_trips(self, pair):
        left, right = pair
        message = {"op": "predict", "id": 7, "row_id": 42, "deadline": None}
        send_frame(left, message)
        assert recv_frame(right) == message

    def test_frames_preserve_order(self, pair):
        left, right = pair
        for i in range(10):
            send_frame(left, {"id": i})
        assert [recv_frame(right)["id"] for _ in range(10)] == list(range(10))

    def test_large_frame_round_trips(self, pair):
        left, right = pair
        message = {"values": list(range(50_000))}
        # sendall on a socketpair can block once the kernel buffer fills;
        # write from a helper thread while this side reads.
        sender = threading.Thread(target=send_frame, args=(left, message))
        sender.start()
        received = recv_frame(right)
        sender.join(timeout=10)
        assert received == message

    def test_unicode_survives(self, pair):
        left, right = pair
        send_frame(left, {"message": "déjà vu — ⚡"})
        assert recv_frame(right)["message"] == "déjà vu — ⚡"


class TestEdges:
    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_mid_frame_eof_is_a_protocol_error(self, pair):
        left, right = pair
        payload = b'{"id": 1}'
        left.sendall(struct.pack(">I", len(payload)) + payload[:3])
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_oversized_header_rejected_without_allocating(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="claims"):
            recv_frame(right)

    def test_oversized_send_rejected(self, pair):
        left, _ = pair
        with pytest.raises(ProtocolError, match="exceeds"):
            send_frame(left, {"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_json_payload_rejected(self, pair):
        left, right = pair
        garbage = b"\xff\xfe not json"
        left.sendall(struct.pack(">I", len(garbage)) + garbage)
        with pytest.raises(ProtocolError, match="JSON"):
            recv_frame(right)

    def test_non_object_payload_rejected(self, pair):
        left, right = pair
        payload = b"[1, 2, 3]"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="object"):
            recv_frame(right)

    def test_empty_object_round_trips(self, pair):
        left, right = pair
        send_frame(left, {})
        assert recv_frame(right) == {}
