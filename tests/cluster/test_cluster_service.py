"""Tests for the multi-process serving tier (dispatcher + workers)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import Dataset, Estimator, open_service
from repro.cluster import (
    ClusterService,
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.data.registry import DATASET_PROFILES

N_ROWS = 240


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    features, labels = DATASET_PROFILES["census"].classification(N_ROWS, seed=21)
    shard_dir = tmp_path_factory.mktemp("cluster-shards")
    registry = tmp_path_factory.mktemp("cluster-registry")
    dataset = Dataset.create(
        shard_dir, features, labels, scheme="TOC", batch_size=60, executor="serial"
    )
    estimator = Estimator("logreg", epochs=2, learning_rate=0.3)
    estimator.fit(dataset)
    estimator.save(registry)
    # The authoritative baseline comes from the same store the workers read:
    # stored rows are the model's actual serving inputs.
    service, _ = open_service(registry, cache_size=0)
    expected = np.asarray(
        estimator.predict(service.store.get_rows(list(range(N_ROWS))))
    )
    service.close()
    return registry, shard_dir, expected


@pytest.fixture(scope="module")
def cluster(published):
    """One two-worker cluster shared by the read-only tests (spawn is slow)."""
    registry, shard_dir, _ = published
    service = ClusterService(
        registry, shard_dir=shard_dir, workers=2, backlog=8, cache_size=16
    )
    yield service
    service.close()


class TestServing:
    def test_ping_reports_every_worker(self, cluster):
        statuses = cluster.ping()
        assert [s["worker"] for s in statuses] == [0, 1]
        assert all(s["n_rows"] == N_ROWS for s in statuses)
        assert len({s["pid"] for s in statuses}) == 2

    def test_predictions_match_the_model(self, cluster, published):
        _, _, expected = published
        ids = [0, 17, 100, N_ROWS - 1]
        values = [cluster.predict(i) for i in ids]
        np.testing.assert_allclose(values, expected[ids])

    def test_predict_many_bulk_path(self, cluster, published):
        _, _, expected = published
        values = cluster.predict_many(range(N_ROWS))
        np.testing.assert_allclose(values, expected)

    def test_concurrent_clients_spread_over_workers(self, cluster, published):
        _, _, expected = published
        results: dict[int, float] = {}
        lock = threading.Lock()

        def client(start: int) -> None:
            for i in range(start, N_ROWS, 8):
                value = cluster.predict(i)
                with lock:
                    results[i] = value

        threads = [threading.Thread(target=client, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == N_ROWS
        np.testing.assert_allclose(
            [results[i] for i in range(N_ROWS)], expected
        )

    def test_submit_returns_a_future(self, cluster, published):
        _, _, expected = published
        future = cluster.submit(3)
        assert future.result(timeout=10) == pytest.approx(expected[3])

    def test_unknown_row_fails_that_request_only(self, cluster):
        from repro.cluster import ClusterError

        with pytest.raises(ClusterError):
            cluster.predict_many([0, N_ROWS + 5000])
        assert cluster.predict(0) is not None  # the worker survived

    def test_expired_deadline_is_shed_with_explicit_error(self, cluster):
        with pytest.raises(DeadlineExceeded):
            cluster.predict(0, deadline=-0.001)

    def test_metrics_have_per_worker_labels(self, cluster):
        cluster.predict(0)
        metrics = cluster.metrics()
        assert sorted(metrics["workers"]) == ["0", "1"]
        counters = metrics["counters"]
        assert "cluster.worker.requests{worker=0}" in counters
        assert "cluster.worker.requests{worker=1}" in counters
        assert "cluster.server.requests" in counters
        gauges = metrics["gauges"]
        assert "cluster.worker.queue_depth{worker=0}" in gauges
        # Every worker also reports its own full serve-level snapshot.
        assert "serve.requests" in metrics["workers"]["0"]["counters"]

    def test_generations_visible(self, cluster):
        assert cluster.generations() == [1, 1]


class TestCrashRecovery:
    def test_worker_crash_heals_by_respawn(self, cluster, published):
        from repro.cluster import WorkerCrashed

        _, _, expected = published
        pids_before = {s["worker"]: s["pid"] for s in cluster.ping()}
        cluster.crash_worker(0)
        # Poll until the respawned worker answers with a fresh pid; pings
        # during the down window legitimately fail with WorkerCrashed.
        deadline = time.monotonic() + 60
        pids_after = None
        while time.monotonic() < deadline:
            try:
                pids = {s["worker"]: s["pid"] for s in cluster.ping()}
            except WorkerCrashed:
                pids = {}
            if len(pids) == 2 and pids[0] != pids_before[0]:
                pids_after = pids
                break
            time.sleep(0.05)
        assert pids_after is not None, "worker 0 was not respawned in time"
        assert pids_after[1] == pids_before[1]  # the other one untouched
        np.testing.assert_allclose(
            cluster.predict_many([0, 1, 2]), expected[[0, 1, 2]]
        )


class TestBackpressure:
    @pytest.fixture(scope="class")
    def tiny(self, published):
        """workers=1, backlog=1: one in-flight request saturates the cluster."""
        registry, shard_dir, _ = published
        service = ClusterService(
            registry,
            shard_dir=shard_dir,
            workers=1,
            backlog=1,
            admission="reject",
            cache_size=0,
        )
        yield service
        service.close()

    def test_saturated_reject_fails_fast(self, tiny):
        # A large bulk request occupies the single slot for a while...
        blocker = threading.Thread(
            target=lambda: tiny.predict_many(list(range(N_ROWS)) * 400)
        )
        blocker.start()
        try:
            give_up = time.monotonic() + 10
            while tiny.inflight == 0 and time.monotonic() < give_up:
                time.sleep(0.001)
            assert tiny.inflight == 1
            # ... so the next request is refused immediately, not queued.
            start = time.monotonic()
            with pytest.raises(ServiceOverloaded):
                tiny.submit(0)
            assert time.monotonic() - start < 1.0
        finally:
            blocker.join(timeout=60)
        assert tiny.metrics()["counters"]["cluster.server.rejected"] >= 1

    def test_close_rejects_new_work_with_service_closed(self, published):
        registry, shard_dir, _ = published
        service = ClusterService(
            registry, shard_dir=shard_dir, workers=1, backlog=4
        )
        assert service.predict(0) is not None
        service.close()
        with pytest.raises(ServiceClosed):
            service.predict(1)
        service.close()  # idempotent


class TestBlockingAdmission:
    def test_blocked_admission_sheds_on_deadline(self, published):
        registry, shard_dir, _ = published
        service = ClusterService(
            registry,
            shard_dir=shard_dir,
            workers=1,
            backlog=1,
            admission="block",
            cache_size=0,
        )
        try:
            blocker = threading.Thread(
                target=lambda: service.predict_many(list(range(N_ROWS)) * 400)
            )
            blocker.start()
            give_up = time.monotonic() + 10
            while service.inflight == 0 and time.monotonic() < give_up:
                time.sleep(0.001)
            assert service.inflight == 1
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                service.predict(0, deadline=0.15)
            # Shed when the deadline passed, not when the blocker finished.
            assert time.monotonic() - start < 5
            blocker.join(timeout=60)
        finally:
            service.close()
