"""Smoke and shape tests for every experiment driver (one per table/figure)."""

from __future__ import annotations

import pytest

from repro.bench import experiments


class TestFig2:
    def test_curves_cover_all_variants(self):
        result = experiments.run_fig2(n_rows=300, epochs=4)
        assert set(result["curves"]) == {
            "SGD",
            "MGD (250 rows)",
            "MGD-20%",
            "MGD-50%",
            "MGD-80%",
            "BGD",
        }
        assert all(len(curve) == 4 for curve in result["curves"].values())

    def test_accuracies_are_probabilities(self):
        result = experiments.run_fig2(n_rows=200, epochs=3)
        for curve in result["curves"].values():
            assert all(0.0 <= acc <= 1.0 for acc in curve)


class TestCompressionRatioFigures:
    def test_fig5_structure_and_shape_claims(self):
        result = experiments.run_fig5(batch_sizes=(50, 250), datasets=("census", "rcv1", "deep1b"))
        assert set(result) == {"census", "rcv1", "deep1b"}
        census = result["census"]
        # TOC must beat the light-weight matrix schemes on moderate sparsity.
        for scheme in ("CSR", "CVI", "DVI", "CLA"):
            assert census["TOC"][250] > census[scheme][250]
        # On the very sparse profile TOC tracks CSR.
        rcv1 = result["rcv1"]
        assert rcv1["TOC"][250] > 0.5 * rcv1["CSR"][250]
        # Nothing compresses the dense continuous profile by much.
        deep = result["deep1b"]
        assert all(ratio < 2.0 for per_size in deep.values() for ratio in per_size.values())

    def test_fig6_ablation_ordering(self):
        result = experiments.run_fig6(batch_sizes=(250,), datasets=("census",))
        census = result["census"]
        assert (
            census["TOC"][250]
            > census["TOC_SPARSE_AND_LOGICAL"][250]
            > census["TOC_SPARSE"][250]
        )

    def test_fig7_ratio_grows_with_batch_size(self):
        result = experiments.run_fig7(fractions=(0.1, 1.0), datasets=("census",), total_rows=600)
        census = result["census"]
        assert census["TOC"][1.0] >= census["TOC"][0.1]


class TestMatrixOpFigure:
    def test_fig8_structure(self):
        result = experiments.run_fig8(datasets=("census",), batch_size=60, repeats=1)
        census = result["census"]
        assert set(census) == set(experiments.OP_SCHEMES)
        for timings in census.values():
            assert set(timings) == {"A*c", "A*v", "A*M", "v*A", "M*A"}

    def test_fig8_gzip_pays_decompression_on_scale(self):
        result = experiments.run_fig8(datasets=("census",), batch_size=120, repeats=1)
        census = result["census"]
        # Scaling a TOC batch touches only the first layer; Gzip must inflate
        # the whole batch first, so it is much slower.
        assert census["TOC"]["A*c"] < census["Gzip"]["A*c"]


class TestCodecTimesFigure:
    def test_fig12_structure(self):
        result = experiments.run_fig12(datasets=("census",), batch_size=60)
        census = result["census"]
        assert set(census) == {"Snappy", "Gzip", "TOC"}
        for timings in census.values():
            assert timings["compress"] >= 0
            assert timings["decompress"] >= 0


class TestEndToEndDrivers:
    def test_run_end_to_end_cell(self):
        cell = experiments.run_end_to_end(
            "census", "TOC", "LR", n_rows=200, memory_budget_bytes=10**7, epochs=1, batch_size=50
        )
        assert cell["total_seconds"] > 0
        assert cell["scheme"] == "TOC"
        assert cell["fits_in_memory"] in (True, False)

    def test_table6_structure(self):
        result = experiments.run_table6(
            datasets=("census",),
            models=("LR",),
            schemes=("TOC", "DEN"),
            small_rows=150,
            large_rows=300,
            epochs=1,
            batch_size=50,
        )
        assert set(result) == {"census-small", "census-large"}
        assert set(result["census-small"]) == {"TOC", "DEN"}

    def test_table7_uses_other_datasets(self):
        result = experiments.run_table7(
            models=("LR",),
            schemes=("TOC",),
            small_rows=100,
            large_rows=200,
            epochs=1,
            batch_size=50,
        )
        assert set(result) == {"census-small", "census-large", "kdd99-small", "kdd99-large"}

    def test_fig9_structure(self):
        result = experiments.run_fig9(
            dataset="census",
            schemes=("TOC", "DEN"),
            row_counts=(100, 200),
            models=("LR",),
            epochs=1,
            batch_size=50,
        )
        assert set(result) == {"LR"}
        assert set(result["LR"]) == {"TOC", "DEN"}
        assert set(result["LR"]["TOC"]) == {100, 200}

    def test_fig10_uses_toc_variants(self):
        result = experiments.run_fig10(
            dataset="census", row_counts=(100,), models=("LR",), epochs=1, batch_size=50
        )
        assert set(result["LR"]) == {"DEN", "TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC"}

    def test_fig11_structure(self):
        result = experiments.run_fig11(
            dataset="census", n_rows=200, test_rows=100, epochs=2, batch_size=50
        )
        assert set(result["curves"]) == {"BismarckTOC", "ReferenceDEN", "ReferenceCSR"}
        for curve in result["curves"].values():
            assert len(curve["time"]) == 2
            assert len(curve["error"]) == 2
            assert curve["time"] == sorted(curve["time"])


class TestTable1Driver:
    def test_model_op_usage(self):
        usage = experiments.run_table1()
        assert usage["Logistic regression"] == ["matvec", "rmatvec"]
        assert usage["Support vector machine"] == ["matvec", "rmatvec"]
        assert usage["Neural network"] == ["matmat", "rmatmat"]


class TestCLI:
    def test_cli_runs_quick_fig5(self, capsys):
        assert experiments.main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "TOC" in out

    def test_cli_runs_quick_tab1(self, capsys):
        assert experiments.main(["tab1"]) == 0
        assert "Neural network" in capsys.readouterr().out

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            experiments.main(["fig99"])

    def test_every_experiment_has_quick_override_or_fast_default(self):
        # Guard rail: every registered experiment id resolves to a runner.
        for name, (runner, printer) in experiments.EXPERIMENTS.items():
            assert callable(runner) and callable(printer), name
