"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.ascii_plot import render_chart


class TestRenderChart:
    def test_contains_title_and_legend(self):
        chart = render_chart("Figure 9", [1, 2, 3], {"TOC": [1, 2, 3], "DEN": [3, 2, 1]})
        assert "Figure 9" in chart
        assert "o=TOC" in chart and "x=DEN" in chart

    def test_dimensions(self):
        chart = render_chart("t", [0, 1], {"a": [0, 1]}, width=20, height=5)
        lines = chart.splitlines()
        plot_lines = [line for line in lines if line.startswith("|")]
        assert len(plot_lines) == 5
        assert all(len(line) == 21 for line in plot_lines)

    def test_extreme_points_land_on_edges(self):
        chart = render_chart("t", [0, 10], {"a": [0.0, 1.0]}, width=20, height=6)
        plot_lines = [line[1:] for line in chart.splitlines() if line.startswith("|")]
        assert plot_lines[0][-1] == "o"      # max value at top-right
        assert plot_lines[-1][0] == "o"      # min value at bottom-left

    def test_log_scale_handles_wide_ranges(self):
        chart = render_chart(
            "t", [1, 2, 3], {"fast": [0.001, 0.002, 0.003], "slow": [1.0, 2.0, 4.0]}, log_y=True
        )
        assert "log10" in chart

    def test_constant_series_does_not_crash(self):
        chart = render_chart("t", [1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_chart("t", [1, 2, 3], {"a": [1, 2]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart("t", [1, 2], {})

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            render_chart("t", [1], {"a": [1]})

    def test_too_small_plot_area_rejected(self):
        with pytest.raises(ValueError):
            render_chart("t", [1, 2], {"a": [1, 2]}, width=5, height=2)

    def test_many_series_get_distinct_markers(self):
        series = {f"s{i}": [i, i + 1, i + 2] for i in range(5)}
        chart = render_chart("t", [1, 2, 3], series)
        legend_line = chart.splitlines()[-1]
        assert legend_line.count("=") == 5
