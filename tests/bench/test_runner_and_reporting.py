"""Tests for the benchmark measurement and reporting helpers."""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_series, format_table
from repro.bench.runner import measure_compression, time_callable, time_matrix_ops
from repro.bench.workloads import labeled_dataset, minibatch_for, n_classes, workload_datasets
from repro.compression.registry import get_scheme


class TestWorkloads:
    def test_all_datasets_listed(self):
        assert workload_datasets() == ("census", "imagenet", "mnist", "kdd99", "rcv1", "deep1b")
        assert workload_datasets(include_extreme=False) == ("census", "imagenet", "mnist", "kdd99")

    def test_minibatch_shape(self):
        batch = minibatch_for("census", 100)
        assert batch.shape == (100, 68)

    def test_labeled_dataset(self):
        features, labels = labeled_dataset("kdd99", 50)
        assert features.shape[0] == labels.shape[0] == 50

    def test_n_classes(self):
        assert n_classes("mnist") == 10
        assert n_classes("census") == 2


class TestRunner:
    def test_measure_compression_fields(self):
        batch = minibatch_for("census", 50)
        measurement = measure_compression("TOC", batch)
        assert measurement.scheme == "TOC"
        assert measurement.dense_bytes == 50 * 68 * 8
        assert measurement.compressed_bytes > 0
        assert measurement.ratio > 1.0
        assert measurement.compress_seconds >= 0
        assert measurement.decompress_seconds >= 0

    def test_measure_compression_all_schemes(self):
        batch = minibatch_for("census", 50)
        for scheme in ("DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC"):
            assert measure_compression(scheme, batch).compressed_bytes > 0

    def test_time_callable(self):
        calls = []
        elapsed = time_callable(lambda: calls.append(1), repeats=3)
        assert elapsed >= 0
        assert len(calls) == 4  # 1 warmup (untimed) + 3 timed samples

    def test_time_callable_warmup_count(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5

    def test_time_callable_no_warmup(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=1, warmup=0)
        assert len(calls) == 1

    def test_time_callable_excludes_warmup_from_samples(self):
        # A deliberately slow first call must not skew the median: with the
        # default warmup it is burned before sampling starts.
        state = {"first": True}

        def cold_then_hot():
            if state["first"]:
                state["first"] = False
                time.sleep(0.05)

        elapsed = time_callable(cold_then_hot, repeats=3)
        assert elapsed < 0.05

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_time_callable_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_time_matrix_ops_keys(self):
        batch = minibatch_for("census", 50)
        compressed = get_scheme("TOC").compress(batch)
        timings = time_matrix_ops(compressed, batch.shape[1], batch.shape[0], repeats=1)
        assert set(timings) == {"A*c", "A*v", "A*M", "v*A", "M*A"}
        assert all(t >= 0 for t in timings.values())


class TestReporting:
    def test_format_table_contains_all_cells(self):
        rows = {"TOC": {"NN": 1.0, "LR": 2.0}, "DEN": {"NN": 3.0, "LR": 4.0}}
        text = format_table("Table", rows, ["NN", "LR"])
        assert "TOC" in text and "DEN" in text
        assert "1" in text and "4" in text

    def test_format_table_handles_missing_cells(self):
        rows = {"TOC": {"NN": 1.0}}
        text = format_table("Table", rows, ["NN", "LR"])
        assert "TOC" in text

    def test_format_series(self):
        text = format_series("Fig", "rows", [50, 100], {"TOC": [1.0, 2.0], "CSR": [0.5, 0.6]})
        assert "TOC" in text and "CSR" in text and "50" in text

    def test_format_table_is_aligned(self):
        rows = {"A": {"x": 1.0}, "BBBBBB": {"x": 2.0}}
        lines = format_table("T", rows, ["x"]).splitlines()
        data_lines = [line for line in lines if "|" in line]
        assert len({line.index("|") for line in data_lines}) == 1


class TestBenchJSON:
    def test_write_bench_json_round_trip(self, tmp_path):
        import json

        from repro.bench.runner import BENCH_JSON_VERSION, bench_json_path, write_bench_json

        records = [{"bench": "encode", "median_seconds": 0.5}, {"bench": "train", "loss": 1.0}]
        path = write_bench_json("unit", records, directory=tmp_path)
        assert path == bench_json_path("unit", tmp_path)
        assert path.name == "BENCH_unit.json"

        payload = json.loads(path.read_text())
        assert payload["version"] == BENCH_JSON_VERSION
        assert payload["records"] == records
        assert payload["platform"]["cpu_count"] >= 1
        assert "git_commit" in payload

    def test_git_commit_resolves_in_this_checkout(self):
        from repro.bench.runner import current_git_commit

        commit = current_git_commit()
        # The test suite runs from a git checkout, so the hash must resolve
        # (and parse as one); installed-wheel environments would get None.
        assert commit is not None
        assert len(commit) == 40
        assert all(c in "0123456789abcdef" for c in commit)

    def test_write_bench_json_accepts_dataclasses(self, tmp_path):
        import json

        from repro.bench.runner import write_bench_json

        measurement = measure_compression("CSR", minibatch_for("census", 32, seed=0))
        path = write_bench_json("dc", [measurement], directory=tmp_path)
        record = json.loads(path.read_text())["records"][0]
        assert record["scheme"] == "CSR"
        assert record["compressed_bytes"] > 0

    def test_bench_json_dir_env_controls_default(self, tmp_path, monkeypatch):
        from repro.bench.runner import BENCH_JSON_DIR_ENV, bench_json_path

        monkeypatch.setenv(BENCH_JSON_DIR_ENV, str(tmp_path / "out"))
        assert bench_json_path("x") == tmp_path / "out" / "BENCH_x.json"
