"""End-to-end integration tests across the whole stack.

These exercise the public API the way the examples and benches do:
generate data → compress mini-batches → train models → evaluate, and check
the cross-cutting guarantees (identical learning across schemes, memory
pressure behaviour, public API stability).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.compression.registry import available_schemes, get_scheme
from repro.data.minibatch import split_minibatches
from repro.data.registry import DATASET_PROFILES
from repro.ml.metrics import accuracy
from repro.ml.models import FeedForwardNetwork, LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent
from repro.storage.bismarck import BismarckSession
from repro.storage.buffer_pool import BufferPool


class TestPublicAPI:
    def test_package_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_flow(self):
        """The README quickstart in test form."""
        batch = repro.generate_dataset("census", 250, seed=0)
        toc = repro.TOCMatrix.encode(batch)
        assert toc.compression_ratio() > 1.0
        v = np.ones(batch.shape[1])
        np.testing.assert_allclose(toc.matvec(v), batch @ v, rtol=1e-9)
        assert np.array_equal(toc.to_dense(), batch)


class TestTrainingAcrossSchemes:
    @pytest.mark.parametrize("scheme_name", available_schemes())
    def test_logistic_regression_learns_on_every_scheme(self, scheme_name):
        features, labels = DATASET_PROFILES["census"].classification(400, seed=21)
        config = GradientDescentConfig(batch_size=100, epochs=5, learning_rate=0.5)
        model = LogisticRegressionModel(features.shape[1], seed=0)
        MiniBatchGradientDescent(config).fit(
            model, features, labels, scheme=get_scheme(scheme_name)
        )
        assert accuracy(model.predict(features), labels) > 0.7

    def test_all_schemes_produce_identical_models(self):
        features, labels = DATASET_PROFILES["kdd99"].classification(300, seed=22)
        config = GradientDescentConfig(batch_size=75, epochs=2, learning_rate=0.3)
        reference = None
        for scheme_name in available_schemes():
            model = LogisticRegressionModel(features.shape[1], seed=0)
            MiniBatchGradientDescent(config).fit(
                model, features, labels, scheme=get_scheme(scheme_name)
            )
            params = model.get_parameters()
            if reference is None:
                reference = params
            else:
                np.testing.assert_allclose(params, reference, rtol=1e-7, atol=1e-9)

    def test_neural_network_on_compressed_multiclass_data(self):
        features, labels = DATASET_PROFILES["mnist"].classification(300, seed=23)
        n_classes = int(labels.max()) + 1
        config = GradientDescentConfig(batch_size=100, epochs=6, learning_rate=0.5)
        model = FeedForwardNetwork(
            features.shape[1], hidden_sizes=(32,), n_classes=n_classes, seed=0
        )
        MiniBatchGradientDescent(config).fit(
            model, features, labels.astype(int), scheme=get_scheme("TOC")
        )
        assert accuracy(model.predict(features), labels) > 1.5 / n_classes


class TestMemoryPressureScenario:
    def test_toc_avoids_io_that_den_pays(self):
        """The paper's core end-to-end claim as an integration test."""
        features, labels = DATASET_PROFILES["imagenet"].classification(500, seed=24)
        batches = split_minibatches(features, labels, batch_size=100, seed=0)
        toc_bytes = sum(get_scheme("TOC").compress(bx).nbytes for bx, _ in batches)
        den_bytes = sum(bx.size * 8 for bx, _ in batches)
        budget = 3 * toc_bytes
        assert budget < den_bytes  # the scenario only makes sense if DEN spills

        io_seconds = {}
        for scheme_name in ("TOC", "DEN"):
            pool = BufferPool(budget_bytes=budget)
            session = BismarckSession(get_scheme(scheme_name), pool)
            session.load(batches)
            model = LogisticRegressionModel(features.shape[1], seed=0)
            report = session.train(model, epochs=3, learning_rate=0.3)
            io_seconds[scheme_name] = report.total_io_seconds

        assert io_seconds["TOC"] < io_seconds["DEN"] / 2

    def test_big_memory_makes_formats_equivalent_in_io(self):
        """The Figure 11 '180 GB RAM' observation: with a large enough budget
        every format trains from memory after the first epoch."""
        features, labels = DATASET_PROFILES["census"].classification(300, seed=25)
        batches = split_minibatches(features, labels, batch_size=75, seed=0)
        for scheme_name in ("TOC", "DEN"):
            pool = BufferPool(budget_bytes=10**9)
            session = BismarckSession(get_scheme(scheme_name), pool)
            session.load(batches)
            model = LogisticRegressionModel(features.shape[1], seed=0)
            report = session.train(model, epochs=2, learning_rate=0.3)
            assert report.epochs[1].io_seconds == 0.0


class TestSerialisationAcrossTheStack:
    def test_compressed_batches_survive_bytes_roundtrip_during_training(self):
        features, labels = DATASET_PROFILES["census"].classification(200, seed=26)
        batches = split_minibatches(features, labels, batch_size=50, seed=0)
        scheme = get_scheme("TOC")
        # Serialise and rebuild every batch, as the storage layer does.
        rebuilt = [
            (scheme.decompress_bytes(scheme.compress(bx).to_bytes()), by) for bx, by in batches
        ]
        direct_model = LogisticRegressionModel(features.shape[1], seed=0)
        rebuilt_model = LogisticRegressionModel(features.shape[1], seed=0)
        for (bx, by), (rx, ry) in zip(batches, rebuilt):
            direct_model.gradient_step(bx, by, 0.5)
            rebuilt_model.gradient_step(rx, ry, 0.5)
        np.testing.assert_allclose(
            rebuilt_model.get_parameters(), direct_model.get_parameters(), rtol=1e-9
        )
