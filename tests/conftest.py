"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import DATASET_PROFILES


@pytest.fixture()
def paper_matrix() -> np.ndarray:
    """The 4x4 running-example matrix (original table A of Figure 3)."""
    return np.array(
        [
            [1.1, 2.0, 3.0, 1.4],
            [1.1, 2.0, 3.0, 0.0],
            [0.0, 1.1, 3.0, 1.4],
            [1.1, 2.0, 0.0, 0.0],
        ]
    )


@pytest.fixture()
def census_batch() -> np.ndarray:
    """A 64-row census-like mini-batch (moderate sparsity, repeated sequences)."""
    return DATASET_PROFILES["census"].matrix(64, seed=7)


@pytest.fixture()
def rcv1_batch() -> np.ndarray:
    """A 32-row very-sparse batch (rcv1-like)."""
    return DATASET_PROFILES["rcv1"].matrix(32, seed=7)


@pytest.fixture()
def dense_batch() -> np.ndarray:
    """A 32-row fully dense batch with continuous values (deep1b-like)."""
    return DATASET_PROFILES["deep1b"].matrix(32, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_sparse_matrix(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    sparsity: float = 0.4,
    n_values: int = 6,
) -> np.ndarray:
    """Helper used by several test modules to build small random matrices."""
    values = np.round(rng.uniform(-5, 5, size=n_values), 2)
    values = values[values != 0.0]
    if values.size == 0:
        values = np.array([1.0])
    mask = rng.random((n_rows, n_cols)) < sparsity
    cells = values[rng.integers(0, values.size, size=(n_rows, n_cols))]
    return np.where(mask, cells, 0.0)
