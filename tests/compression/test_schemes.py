"""Scheme-agnostic contract tests: every registered scheme must be lossless
and must compute every matrix operation exactly like dense NumPy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import available_schemes, get_scheme
from tests.conftest import random_sparse_matrix

ALL_SCHEMES = available_schemes(include_ablations=True)


@pytest.fixture(params=ALL_SCHEMES)
def scheme(request):
    return get_scheme(request.param)


class TestSchemeContract:
    def test_roundtrip_lossless(self, scheme, census_batch):
        compressed = scheme.compress(census_batch)
        assert np.array_equal(compressed.to_dense(), census_batch)

    def test_roundtrip_on_very_sparse(self, scheme, rcv1_batch):
        compressed = scheme.compress(rcv1_batch)
        assert np.array_equal(compressed.to_dense(), rcv1_batch)

    def test_roundtrip_on_fully_dense(self, scheme, dense_batch):
        compressed = scheme.compress(dense_batch)
        assert np.array_equal(compressed.to_dense(), dense_batch)

    def test_roundtrip_on_zero_matrix(self, scheme):
        zeros = np.zeros((8, 5))
        assert np.array_equal(scheme.compress(zeros).to_dense(), zeros)

    def test_roundtrip_single_row(self, scheme):
        row = np.array([[0.0, 1.5, 0.0, 2.5, 2.5]])
        assert np.array_equal(scheme.compress(row).to_dense(), row)

    def test_matvec_matches_dense(self, scheme, census_batch, rng):
        compressed = scheme.compress(census_batch)
        v = rng.normal(size=census_batch.shape[1])
        np.testing.assert_allclose(compressed.matvec(v), census_batch @ v, rtol=1e-9)

    def test_rmatvec_matches_dense(self, scheme, census_batch, rng):
        compressed = scheme.compress(census_batch)
        v = rng.normal(size=census_batch.shape[0])
        np.testing.assert_allclose(compressed.rmatvec(v), v @ census_batch, rtol=1e-9)

    def test_matmat_matches_dense(self, scheme, census_batch, rng):
        compressed = scheme.compress(census_batch)
        m = rng.normal(size=(census_batch.shape[1], 4))
        np.testing.assert_allclose(compressed.matmat(m), census_batch @ m, rtol=1e-9)

    def test_rmatmat_matches_dense(self, scheme, census_batch, rng):
        compressed = scheme.compress(census_batch)
        m = rng.normal(size=(4, census_batch.shape[0]))
        np.testing.assert_allclose(compressed.rmatmat(m), m @ census_batch, rtol=1e-9)

    def test_scale_matches_dense(self, scheme, census_batch):
        compressed = scheme.compress(census_batch)
        np.testing.assert_allclose(compressed.scale(-2.5).to_dense(), census_batch * -2.5, rtol=1e-12)

    def test_serialisation_roundtrip(self, scheme, census_batch):
        compressed = scheme.compress(census_batch)
        restored = scheme.decompress_bytes(compressed.to_bytes())
        assert np.array_equal(restored.to_dense(), census_batch)

    def test_matvec_rejects_wrong_length(self, scheme, census_batch):
        compressed = scheme.compress(census_batch)
        with pytest.raises(ValueError):
            compressed.matvec(np.ones(census_batch.shape[1] + 1))

    def test_rmatvec_rejects_wrong_length(self, scheme, census_batch):
        compressed = scheme.compress(census_batch)
        with pytest.raises(ValueError):
            compressed.rmatvec(np.ones(census_batch.shape[0] + 1))

    def test_shape_and_compression_ratio(self, scheme, census_batch):
        compressed = scheme.compress(census_batch)
        assert compressed.shape == census_batch.shape
        assert compressed.nbytes > 0
        assert compressed.compression_ratio() > 0

    def test_random_matrices_ops(self, scheme, rng):
        dense = random_sparse_matrix(rng, 17, 13)
        compressed = scheme.compress(dense)
        v = rng.normal(size=13)
        u = rng.normal(size=17)
        np.testing.assert_allclose(compressed.matvec(v), dense @ v, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(compressed.rmatvec(u), u @ dense, rtol=1e-9, atol=1e-12)


class TestSchemeSizes:
    """Compression-size relationships the paper's Figure 5 relies on."""

    def test_dense_size_is_exactly_8_bytes_per_cell(self, census_batch):
        dense = get_scheme("DEN").compress(census_batch)
        assert dense.nbytes == census_batch.size * 8

    def test_toc_beats_lightweight_schemes_on_moderate_sparsity(self, census_batch):
        toc = get_scheme("TOC").compress(census_batch).nbytes
        for name in ("CSR", "CVI", "DVI", "CLA"):
            assert toc < get_scheme(name).compress(census_batch).nbytes

    def test_csr_wins_on_very_sparse_data(self, rcv1_batch):
        csr = get_scheme("CSR").compress(rcv1_batch).nbytes
        dvi = get_scheme("DVI").compress(rcv1_batch).nbytes
        den = get_scheme("DEN").compress(rcv1_batch).nbytes
        assert csr < dvi
        assert csr < den

    def test_toc_close_to_csr_on_very_sparse_data(self, rcv1_batch):
        toc = get_scheme("TOC").compress(rcv1_batch).nbytes
        csr = get_scheme("CSR").compress(rcv1_batch).nbytes
        assert toc < 1.5 * csr

    def test_nothing_compresses_dense_noise(self, dense_batch):
        den = get_scheme("DEN").compress(dense_batch).nbytes
        for name in ("CSR", "CVI", "TOC"):
            # Sparse-style schemes cannot beat DEN on fully dense data.
            assert get_scheme(name).compress(dense_batch).nbytes > 0.8 * den

    def test_gzip_compresses_better_than_snappy(self, census_batch):
        gzip_bytes = get_scheme("Gzip").compress(census_batch).nbytes
        snappy_bytes = get_scheme("Snappy").compress(census_batch).nbytes
        assert gzip_bytes < snappy_bytes

    def test_toc_ablation_ordering(self, census_batch):
        sparse = get_scheme("TOC_SPARSE").compress(census_batch).nbytes
        logical = get_scheme("TOC_SPARSE_AND_LOGICAL").compress(census_batch).nbytes
        full = get_scheme("TOC").compress(census_batch).nbytes
        assert full < logical < sparse


class TestDirectOpsFlag:
    def test_byte_block_schemes_require_decompression(self):
        for name in ("Gzip", "Snappy"):
            compressed = get_scheme(name).compress(np.ones((4, 4)))
            assert compressed.supports_direct_ops is False

    def test_structured_schemes_support_direct_ops(self):
        for name in ("DEN", "CSR", "CVI", "DVI", "CLA", "TOC"):
            compressed = get_scheme(name).compress(np.ones((4, 4)))
            assert compressed.supports_direct_ops is True
