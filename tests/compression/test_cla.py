"""Tests specific to the simplified CLA implementation."""

from __future__ import annotations

import numpy as np

from repro.compression.cla import CLAMatrix
from tests.conftest import random_sparse_matrix


class TestCLAGrouping:
    def test_quantised_columns_are_cocoded(self):
        # Two columns whose tuples repeat heavily should land in one group.
        rng = np.random.default_rng(0)
        col_a = rng.integers(0, 3, size=200).astype(np.float64)
        col_b = col_a * 2.0
        matrix = np.column_stack([col_a, col_b])
        cla = CLAMatrix(matrix)
        assert cla.n_groups == 1

    def test_high_cardinality_columns_stay_uncompressed(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(50, 3))
        cla = CLAMatrix(matrix)
        # All columns are incompressible: a single uncompressed group.
        assert cla.n_groups == 1
        assert np.array_equal(cla.to_dense(), matrix)

    def test_mixed_columns(self):
        rng = np.random.default_rng(1)
        quantised = rng.integers(0, 4, size=(100, 4)).astype(np.float64)
        continuous = rng.normal(size=(100, 2))
        matrix = np.hstack([quantised, continuous])
        cla = CLAMatrix(matrix)
        assert np.array_equal(cla.to_dense(), matrix)
        assert cla.n_groups >= 2

    def test_explicit_dictionary_hurts_small_batches(self):
        """The CLA property the paper's argument uses: on a small mini-batch the
        dictionary is poorly amortised, so the per-row cost is much higher than
        on a large batch of the same data distribution."""
        rng = np.random.default_rng(2)
        values = np.round(rng.uniform(0, 5, size=8), 2)

        def batch(rows: int) -> np.ndarray:
            return values[rng.integers(0, 8, size=(rows, 30))]

        small = CLAMatrix(batch(25))
        large = CLAMatrix(batch(2500))
        small_per_row = small.nbytes / 25
        large_per_row = large.nbytes / 2500
        assert small_per_row > 1.1 * large_per_row

    def test_compression_on_repetitive_data(self, census_batch):
        cla = CLAMatrix(census_batch)
        assert cla.nbytes < census_batch.size * 8

    def test_ops_on_random_data(self, rng):
        dense = random_sparse_matrix(rng, 40, 12)
        cla = CLAMatrix(dense)
        v = rng.normal(size=12)
        u = rng.normal(size=40)
        np.testing.assert_allclose(cla.matvec(v), dense @ v, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(cla.rmatvec(u), u @ dense, rtol=1e-9, atol=1e-12)

    def test_scale_preserves_grouping(self, census_batch):
        cla = CLAMatrix(census_batch)
        scaled = cla.scale(3.0)
        assert scaled.n_groups == cla.n_groups
        np.testing.assert_allclose(scaled.to_dense(), census_batch * 3.0)
