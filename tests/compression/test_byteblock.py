"""Tests for the Gzip / Snappy-like byte-block schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.byteblock import GzipMatrix, SnappyLikeMatrix


class TestByteBlockSchemes:
    def test_gzip_roundtrip(self, census_batch):
        assert np.array_equal(GzipMatrix(census_batch).to_dense(), census_batch)

    def test_snappy_roundtrip(self, census_batch):
        assert np.array_equal(SnappyLikeMatrix(census_batch).to_dense(), census_batch)

    def test_gzip_smaller_than_snappy_on_compressible_data(self, census_batch):
        assert GzipMatrix(census_batch).nbytes < SnappyLikeMatrix(census_batch).nbytes

    def test_both_compress_repetitive_data(self, census_batch):
        dense_bytes = census_batch.size * 8
        assert GzipMatrix(census_batch).nbytes < dense_bytes
        assert SnappyLikeMatrix(census_batch).nbytes < dense_bytes

    def test_ops_decompress_first_but_are_correct(self, census_batch, rng):
        compressed = GzipMatrix(census_batch)
        v = rng.normal(size=census_batch.shape[1])
        np.testing.assert_allclose(compressed.matvec(v), census_batch @ v, rtol=1e-12)

    def test_serialisation_roundtrip(self, census_batch):
        compressed = GzipMatrix(census_batch)
        restored = GzipMatrix.from_bytes(compressed.to_bytes())
        assert np.array_equal(restored.to_dense(), census_batch)

    def test_requires_matrix_or_payload(self):
        with pytest.raises(ValueError):
            GzipMatrix(None)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            SnappyLikeMatrix(np.ones(5))

    def test_scale_returns_same_scheme(self, census_batch):
        scaled = SnappyLikeMatrix(census_batch).scale(2.0)
        assert isinstance(scaled, SnappyLikeMatrix)
        np.testing.assert_allclose(scaled.to_dense(), census_batch * 2.0)
