"""Tests for the compression-scheme registry."""

from __future__ import annotations

import pytest

from repro.compression.registry import available_schemes, get_scheme
from repro.core.toc import TOCVariant


class TestRegistry:
    def test_all_paper_schemes_available(self):
        names = available_schemes()
        assert names == ["DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC"]

    def test_ablation_variants_listed_when_requested(self):
        names = available_schemes(include_ablations=True)
        assert "TOC_SPARSE" in names
        assert "TOC_SPARSE_AND_LOGICAL" in names

    def test_unknown_scheme_raises_keyerror_with_hint(self):
        with pytest.raises(KeyError, match="valid names"):
            get_scheme("LZ77")

    def test_every_listed_scheme_is_constructible(self):
        for name in available_schemes(include_ablations=True):
            scheme = get_scheme(name)
            assert scheme.name == name

    def test_toc_full_alias(self):
        assert get_scheme("TOC_FULL").variant is TOCVariant.FULL

    def test_toc_variants_map_correctly(self):
        assert get_scheme("TOC").variant is TOCVariant.FULL
        assert get_scheme("TOC_SPARSE").variant is TOCVariant.SPARSE
        assert get_scheme("TOC_SPARSE_AND_LOGICAL").variant is TOCVariant.SPARSE_AND_LOGICAL

    def test_schemes_are_independent_instances(self):
        assert get_scheme("CSR") is not get_scheme("CSR")
