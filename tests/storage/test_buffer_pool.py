"""Tests for the byte-budgeted buffer pool."""

from __future__ import annotations

import pytest

from repro.storage.buffer_pool import BufferPool


def _payload(size: int, fill: int = 0) -> bytes:
    return bytes([fill % 256]) * size


class TestBufferPoolBasics:
    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(budget_bytes=0)

    def test_read_unknown_key_rejected(self):
        pool = BufferPool(budget_bytes=100)
        with pytest.raises(KeyError):
            pool.read(0)

    def test_first_read_is_a_miss_second_is_a_hit(self):
        pool = BufferPool(budget_bytes=1000)
        pool.put_on_disk(0, _payload(100))
        pool.read(0)
        pool.read(0)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_miss_charges_simulated_io(self):
        pool = BufferPool(budget_bytes=1000, disk_bandwidth_bytes_per_sec=100.0)
        pool.put_on_disk(0, _payload(250))
        pool.read(0)
        assert pool.stats.simulated_io_seconds == pytest.approx(2.5)
        pool.read(0)
        assert pool.stats.simulated_io_seconds == pytest.approx(2.5)  # hit: no extra IO

    def test_contains_and_sizes(self):
        pool = BufferPool(budget_bytes=1000)
        pool.put_on_disk(3, _payload(10))
        assert 3 in pool
        assert 4 not in pool
        assert pool.total_stored_bytes() == 10


class TestEviction:
    def test_everything_cached_when_it_fits(self):
        pool = BufferPool(budget_bytes=1000)
        for key in range(5):
            pool.put_on_disk(key, _payload(100, key))
        for _ in range(3):
            for key in range(5):
                pool.read(key)
        assert pool.stats.misses == 5
        assert pool.stats.hits == 10
        assert pool.fits_entirely()

    def test_cyclic_access_thrashes_when_over_budget(self):
        """The paper's spilling behaviour: an LRU pool smaller than the cyclic
        working set misses on (almost) every access."""
        pool = BufferPool(budget_bytes=350)
        for key in range(5):
            pool.put_on_disk(key, _payload(100, key))
        epochs = 4
        for _ in range(epochs):
            for key in range(5):
                pool.read(key)
        assert not pool.fits_entirely()
        assert pool.stats.hit_rate == 0.0
        assert pool.stats.misses == 5 * epochs

    def test_eviction_respects_budget(self):
        pool = BufferPool(budget_bytes=250)
        for key in range(4):
            pool.put_on_disk(key, _payload(100, key))
            pool.read(key)
        assert pool.cached_bytes <= 250
        assert pool.stats.evictions > 0

    def test_oversized_batch_never_cached(self):
        pool = BufferPool(budget_bytes=50)
        pool.put_on_disk(0, _payload(100))
        pool.read(0)
        pool.read(0)
        assert pool.cached_bytes == 0
        assert pool.stats.misses == 2

    def test_lru_order(self):
        pool = BufferPool(budget_bytes=200)
        pool.put_on_disk(0, _payload(100, 0))
        pool.put_on_disk(1, _payload(100, 1))
        pool.put_on_disk(2, _payload(100, 2))
        pool.read(0)
        pool.read(1)
        pool.read(0)  # touch 0 so 1 becomes the LRU victim
        pool.read(2)
        assert pool.resident_keys == [0, 2]

    def test_reset_stats(self):
        pool = BufferPool(budget_bytes=100)
        pool.put_on_disk(0, _payload(10))
        pool.read(0)
        pool.reset_stats()
        assert pool.stats.accesses == 0


class TestHitRate:
    def test_hit_rate_zero_without_accesses(self):
        assert BufferPool(budget_bytes=10).stats.hit_rate == 0.0

    def test_hit_rate_computation(self):
        pool = BufferPool(budget_bytes=1000)
        pool.put_on_disk(0, _payload(10))
        pool.read(0)
        pool.read(0)
        pool.read(0)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)


class TestLazyDiskEntries:
    """Loader-backed entries: payload bytes live on real disk until admitted."""

    def test_loader_called_on_miss_only(self):
        calls = []

        def loader():
            calls.append(1)
            return b"x" * 40

        pool = BufferPool(budget_bytes=1000)
        pool.put_on_disk(0, size=40, loader=loader)
        assert pool.read(0) == b"x" * 40
        assert pool.read(0) == b"x" * 40  # hit: served from the cache
        assert len(calls) == 1
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_evicted_lazy_entry_is_reloaded(self):
        calls = []

        def make_loader(key):
            def loader():
                calls.append(key)
                return bytes([key]) * 60

            return loader

        pool = BufferPool(budget_bytes=100)  # fits one 60-byte blob at a time
        for key in range(3):
            pool.put_on_disk(key, size=60, loader=make_loader(key))
        for _ in range(2):
            for key in range(3):
                assert pool.read(key) == bytes([key]) * 60
        assert pool.stats.evictions > 0
        assert len(calls) == pool.stats.misses == 6  # cyclic scan thrashes

    def test_lazy_entry_counts_in_stored_bytes(self):
        pool = BufferPool(budget_bytes=100)
        pool.put_on_disk(0, size=75, loader=lambda: b"y" * 75)
        assert pool.total_stored_bytes() == 75
        assert 0 in pool

    def test_oversized_lazy_entry_never_cached(self):
        pool = BufferPool(budget_bytes=10)
        pool.put_on_disk(0, size=50, loader=lambda: b"z" * 50)
        pool.read(0)
        pool.read(0)
        assert pool.stats.misses == 2
        assert pool.cached_bytes == 0

    def test_invalid_argument_combinations_rejected(self):
        pool = BufferPool(budget_bytes=10)
        with pytest.raises(ValueError):
            pool.put_on_disk(0, b"abc", size=3, loader=lambda: b"abc")
        with pytest.raises(ValueError):
            pool.put_on_disk(1, size=3)
        with pytest.raises(ValueError):
            pool.put_on_disk(2, loader=lambda: b"abc")

    def test_reregistration_invalidates_cached_copy(self):
        pool = BufferPool(budget_bytes=1000)
        pool.put_on_disk(0, b"old payload")
        assert pool.read(0) == b"old payload"  # now cached
        pool.put_on_disk(0, size=3, loader=lambda: b"new")
        assert pool.read(0) == b"new"  # miss: the stale cache entry was dropped
        pool.put_on_disk(0, b"newer")
        assert pool.read(0) == b"newer"
        assert pool.cached_bytes == len(b"newer")


class TestEvictionAccounting:
    """Byte accounting under eviction pressure, mirrored into obs metrics.

    The pool feeds the process-global ``storage.pool.*`` metrics, which are
    shared by every pool in the process — so these tests assert on *deltas*
    around the operations, never on absolute metric values.
    """

    def test_sustained_pressure_keeps_bytes_within_budget(self):
        pool = BufferPool(budget_bytes=100)
        for key in range(5):
            pool.put_on_disk(key, _payload(60, fill=key))
        for _ in range(3):  # cyclic over-budget access: the LRU worst case
            for key in range(5):
                pool.read(key)
                assert 0 <= pool.cached_bytes <= pool.budget_bytes
        assert pool.stats.evictions > 0
        assert pool.cached_bytes == sum(
            60 for _ in pool.resident_keys
        )  # ledger matches the actual resident set

    def test_metrics_mirror_stats_deltas(self):
        from repro.obs import metrics as obs_metrics

        evictions = obs_metrics.counter("storage.pool.evictions")
        disk_bytes = obs_metrics.counter("storage.pool.bytes_read_from_disk")
        resident = obs_metrics.gauge("storage.pool.bytes_resident")
        before = (evictions.value, disk_bytes.value, resident.value)

        pool = BufferPool(budget_bytes=100)
        for key in range(4):
            pool.put_on_disk(key, _payload(40, fill=key))
        for key in range(4):
            pool.read(key)

        assert evictions.value - before[0] == pool.stats.evictions
        assert disk_bytes.value - before[1] == pool.stats.bytes_read_from_disk
        assert resident.value - before[2] == pool.cached_bytes

    def test_reregistration_under_pressure_never_goes_negative(self):
        from repro.obs import metrics as obs_metrics

        resident = obs_metrics.gauge("storage.pool.bytes_resident")
        before = resident.value
        pool = BufferPool(budget_bytes=100)
        pool.put_on_disk(0, _payload(80))
        pool.read(0)
        pool.put_on_disk(0, _payload(80, fill=1))  # drops the cached copy
        assert pool.cached_bytes == 0
        assert resident.value - before == 0
        pool.read(0)
        assert pool.cached_bytes == 80
        assert resident.value - before == 80

    def test_concurrent_loads_keep_the_ledger_consistent(self):
        import threading

        pool = BufferPool(budget_bytes=150)
        n_keys, reads_per_thread, n_threads = 6, 200, 4
        for key in range(n_keys):
            pool.put_on_disk(key, size=50, loader=lambda k=key: _payload(50, fill=k))

        errors: list[AssertionError] = []

        def worker(seed: int) -> None:
            try:
                for i in range(reads_per_thread):
                    key = (seed + i) % n_keys
                    assert pool.read(key) == _payload(50, fill=key)
                    assert 0 <= pool.cached_bytes <= pool.budget_bytes
            except AssertionError as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # Every read was either a hit or a miss; nothing lost to races.
        assert pool.stats.accesses == n_threads * reads_per_thread
        assert pool.stats.bytes_read_from_disk == pool.stats.misses * 50
        assert 0 <= pool.cached_bytes <= pool.budget_bytes
        assert pool.cached_bytes == 50 * len(pool.resident_keys)
