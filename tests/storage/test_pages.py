"""Tests for the page layout (fudge-factor) model."""

from __future__ import annotations

import pytest

from repro.storage.pages import (
    ITEM_HEADER_BYTES,
    PAGE_HEADER_BYTES,
    PAGE_SIZE_BYTES,
    Page,
    layout_blobs,
    pages_needed,
    stored_bytes,
)


class TestPage:
    def test_new_page_has_header_overhead(self):
        page = Page(page_id=0)
        assert page.used_bytes == PAGE_HEADER_BYTES
        assert page.free_bytes == PAGE_SIZE_BYTES - PAGE_HEADER_BYTES

    def test_add_item_accounts_for_item_header(self):
        page = Page(page_id=0)
        page.add_item(0, 100)
        assert page.used_bytes == PAGE_HEADER_BYTES + 100 + ITEM_HEADER_BYTES

    def test_overfull_item_rejected(self):
        page = Page(page_id=0)
        with pytest.raises(ValueError):
            page.add_item(0, PAGE_SIZE_BYTES)

    def test_can_fit(self):
        page = Page(page_id=0)
        assert page.can_fit(1000)
        assert not page.can_fit(PAGE_SIZE_BYTES)


class TestLayout:
    def test_pages_needed_for_small_blob(self):
        assert pages_needed(10) == 1
        assert pages_needed(0) == 1

    def test_pages_needed_for_large_blob(self):
        usable = PAGE_SIZE_BYTES - PAGE_HEADER_BYTES - ITEM_HEADER_BYTES
        assert pages_needed(usable) == 1
        assert pages_needed(usable + 1) == 2

    def test_small_blobs_share_pages(self):
        pages = layout_blobs([100] * 10)
        assert len(pages) == 1

    def test_large_blob_spans_pages(self):
        pages = layout_blobs([3 * PAGE_SIZE_BYTES])
        assert len(pages) >= 3

    def test_stored_bytes_is_whole_pages(self):
        total = stored_bytes([100, 200, 50])
        assert total % PAGE_SIZE_BYTES == 0
        assert total >= 350

    def test_fudge_factor_is_modest_for_large_blobs(self):
        """The paper reports <10% overhead for TOC blobs stored in Bismarck."""
        blob_sizes = [50_000] * 20
        physical = stored_bytes(blob_sizes)
        logical = sum(blob_sizes)
        assert 1.0 <= physical / logical < 1.10

    def test_every_blob_fully_placed(self):
        blob_sizes = [123, 45_678, 9, 8_000, 16_500]
        pages = layout_blobs(blob_sizes)
        placed = {}
        for page in pages:
            for batch_id, chunk in page.items:
                placed[batch_id] = placed.get(batch_id, 0) + chunk
        assert placed == {i: max(size, 1) for i, size in enumerate(blob_sizes)}
