"""Tests for the Bismarck-style in-database training session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.minibatch import split_minibatches
from repro.data.registry import DATASET_PROFILES
from repro.ml.models import LogisticRegressionModel
from repro.storage.bismarck import BismarckSession
from repro.storage.buffer_pool import BufferPool


@pytest.fixture()
def batches():
    features, labels = DATASET_PROFILES["census"].classification(300, seed=13)
    return split_minibatches(features, labels, batch_size=50, seed=0)


class TestBismarckSession:
    def test_training_reduces_loss(self, batches):
        session = BismarckSession(get_scheme("TOC"), BufferPool(budget_bytes=10**8))
        session.load(batches)
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        report = session.train(model, epochs=4, learning_rate=0.5)
        assert report.epochs[-1].mean_loss < report.epochs[0].mean_loss
        assert report.total_seconds > 0

    def test_requires_registration_before_epoch(self, batches):
        session = BismarckSession(get_scheme("TOC"), BufferPool(budget_bytes=10**8))
        session.load(batches)
        model = LogisticRegressionModel(batches[0][0].shape[1])
        with pytest.raises(RuntimeError):
            session.run_epoch(model, 0.1)

    def test_invalid_epochs_rejected(self, batches):
        session = BismarckSession(get_scheme("TOC"), BufferPool(budget_bytes=10**8))
        session.load(batches)
        with pytest.raises(ValueError):
            session.train(LogisticRegressionModel(batches[0][0].shape[1]), epochs=0, learning_rate=0.1)

    def test_model_state_persists_in_arena(self, batches):
        session = BismarckSession(get_scheme("TOC"), BufferPool(budget_bytes=10**8))
        session.load(batches)
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        session.register_model(model)
        session.run_epoch(model, 0.5)
        stored = session.arena.read(BismarckSession.MODEL_SEGMENT)
        np.testing.assert_array_equal(stored, model.get_parameters())

    def test_same_result_as_plain_training(self, batches):
        """The in-database loop must produce exactly the same model as the
        plain Python loop over the same compressed batches (same order)."""
        n_features = batches[0][0].shape[1]

        session = BismarckSession(get_scheme("TOC"), BufferPool(budget_bytes=10**8))
        session.load(batches)
        db_model = LogisticRegressionModel(n_features, seed=0)
        session.train(db_model, epochs=2, learning_rate=0.5)

        plain_model = LogisticRegressionModel(n_features, seed=0)
        compressed = [(get_scheme("TOC").compress(bx), by) for bx, by in batches]
        for _ in range(2):
            for batch, labels in compressed:
                plain_model.gradient_step(batch, labels, 0.5)

        np.testing.assert_allclose(
            db_model.get_parameters(), plain_model.get_parameters(), rtol=1e-8, atol=1e-10
        )

    def test_io_charged_only_when_spilling(self, batches):
        big_pool = BufferPool(budget_bytes=10**9)
        session = BismarckSession(get_scheme("TOC"), big_pool)
        session.load(batches)
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        report = session.train(model, epochs=3, learning_rate=0.1)
        # After the cold first epoch everything is cached: later epochs do no IO.
        assert report.epochs[0].io_seconds > 0
        assert report.epochs[1].io_seconds == 0
        assert report.epochs[2].io_seconds == 0

    def test_spilling_costs_io_every_epoch(self, batches):
        toc_scheme = get_scheme("TOC")
        total_compressed = sum(toc_scheme.compress(bx).nbytes for bx, _ in batches)
        tight_pool = BufferPool(budget_bytes=max(total_compressed // 3, 1))
        session = BismarckSession(toc_scheme, tight_pool)
        session.load(batches)
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        report = session.train(model, epochs=3, learning_rate=0.1)
        assert all(epoch.io_seconds > 0 for epoch in report.epochs)

    def test_toc_does_less_io_than_den_under_same_budget(self, batches):
        """The mechanism behind Tables 6/7: with a budget sized between the TOC
        and DEN footprints, TOC trains from memory while DEN keeps spilling."""
        toc_scheme = get_scheme("TOC")
        toc_bytes = sum(toc_scheme.compress(bx).nbytes for bx, _ in batches)
        budget = 4 * toc_bytes

        def run(scheme_name: str) -> float:
            pool = BufferPool(budget_bytes=budget)
            session = BismarckSession(get_scheme(scheme_name), pool)
            session.load(batches)
            model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
            report = session.train(model, epochs=3, learning_rate=0.1)
            return report.total_io_seconds

        assert run("TOC") < run("DEN")
