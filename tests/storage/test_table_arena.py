"""Tests for the blob table and the model arena."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.minibatch import split_minibatches
from repro.data.registry import DATASET_PROFILES
from repro.storage.arena import ModelArena
from repro.storage.buffer_pool import BufferPool
from repro.storage.table import BlobTable


@pytest.fixture()
def batches():
    features, labels = DATASET_PROFILES["census"].classification(200, seed=9)
    return split_minibatches(features, labels, batch_size=50, seed=0)


class TestBlobTable:
    def test_load_and_read_roundtrip(self, batches):
        table = BlobTable(get_scheme("TOC"), BufferPool(budget_bytes=10**7))
        table.load_batches(batches)
        assert len(table) == len(batches)
        compressed, labels = table.read_batch(0)
        assert np.array_equal(compressed.to_dense(), batches[0][0])
        assert np.array_equal(labels, batches[0][1])

    def test_iter_batches_covers_all(self, batches):
        table = BlobTable(get_scheme("CSR"), BufferPool(budget_bytes=10**7))
        table.load_batches(batches)
        assert sum(1 for _ in table.iter_batches()) == len(batches)

    def test_reads_go_through_buffer_pool(self, batches):
        pool = BufferPool(budget_bytes=10**7)
        table = BlobTable(get_scheme("TOC"), pool)
        table.load_batches(batches)
        for _ in table.iter_batches():
            pass
        assert pool.stats.accesses == len(batches)

    def test_fudge_factor_reasonable(self, batches):
        table = BlobTable(get_scheme("TOC"), BufferPool(budget_bytes=10**7))
        table.load_batches(batches)
        assert 1.0 <= table.fudge_factor() < 3.0
        assert table.physical_bytes() >= table.logical_bytes()

    def test_compressed_table_smaller_than_dense_table(self, batches):
        toc_table = BlobTable(get_scheme("TOC"), BufferPool(budget_bytes=10**7))
        den_table = BlobTable(get_scheme("DEN"), BufferPool(budget_bytes=10**7))
        toc_table.load_batches(batches)
        den_table.load_batches(batches)
        assert toc_table.logical_bytes() < den_table.logical_bytes()


class TestModelArena:
    def test_write_then_read(self):
        arena = ModelArena(capacity=100)
        params = np.arange(10, dtype=np.float64)
        arena.write("model", params)
        assert np.array_equal(arena.read("model"), params)

    def test_overwrite_same_segment(self):
        arena = ModelArena(capacity=100)
        arena.write("model", np.zeros(5))
        arena.write("model", np.ones(5))
        assert np.array_equal(arena.read("model"), np.ones(5))

    def test_wrong_size_overwrite_rejected(self):
        arena = ModelArena(capacity=100)
        arena.write("model", np.zeros(5))
        with pytest.raises(ValueError):
            arena.write("model", np.zeros(6))

    def test_read_unknown_segment_rejected(self):
        with pytest.raises(KeyError):
            ModelArena(capacity=10).read("missing")

    def test_capacity_enforced(self):
        arena = ModelArena(capacity=10)
        with pytest.raises(MemoryError):
            arena.write("model", np.zeros(11))

    def test_multiple_segments(self):
        arena = ModelArena(capacity=100)
        arena.write("a", np.ones(3))
        arena.write("b", np.full(4, 2.0))
        assert np.array_equal(arena.read("a"), np.ones(3))
        assert np.array_equal(arena.read("b"), np.full(4, 2.0))
        assert arena.used == 7

    def test_duplicate_allocation_rejected(self):
        arena = ModelArena(capacity=100)
        arena.allocate("seg", 5)
        with pytest.raises(ValueError):
            arena.allocate("seg", 5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelArena(capacity=0)

    def test_contains(self):
        arena = ModelArena(capacity=10)
        arena.write("m", np.zeros(2))
        assert "m" in arena
        assert "x" not in arena
