"""Zero-copy mmap reads: map_file, the REPRO_MMAP toggle, and shard wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.shards import ShardedDataset
from repro.storage import mmapio


class TestMapFile:
    def test_returns_memoryview_with_file_contents(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"hello shard")
        view = mmapio.map_file(path)
        assert isinstance(view, memoryview)
        assert view == b"hello shard"
        assert bytes(view[6:]) == b"shard"

    def test_empty_file_maps_to_empty_view(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        view = mmapio.map_file(path)
        assert isinstance(view, memoryview)
        assert len(view) == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            mmapio.map_file(tmp_path / "nope.bin")

    def test_view_outlives_local_scope(self, tmp_path):
        """The memoryview keeps the underlying mapping alive by itself."""
        path = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 64
        path.write_bytes(payload)

        def make():
            return mmapio.map_file(path)

        view = make()
        assert np.array_equal(
            np.frombuffer(view, dtype=np.uint8),
            np.frombuffer(payload, dtype=np.uint8),
        )


class TestMmapEnabled:
    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "FALSE", "Off"])
    def test_falsey_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(mmapio.ENV_VAR, value)
        assert not mmapio.mmap_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(mmapio.ENV_VAR, value)
        assert mmapio.mmap_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(mmapio.ENV_VAR, raising=False)
        assert mmapio.mmap_enabled()


class TestReadBuffer:
    def test_mmap_on_returns_memoryview(self, tmp_path, monkeypatch):
        monkeypatch.delenv(mmapio.ENV_VAR, raising=False)
        path = tmp_path / "a.bin"
        path.write_bytes(b"abc")
        assert isinstance(mmapio.read_buffer(path), memoryview)

    def test_mmap_off_returns_bytes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(mmapio.ENV_VAR, "0")
        path = tmp_path / "a.bin"
        path.write_bytes(b"abc")
        got = mmapio.read_buffer(path)
        assert isinstance(got, bytes)
        assert got == b"abc"

    def test_loader_rechecks_env_per_call(self, tmp_path, monkeypatch):
        path = tmp_path / "a.bin"
        path.write_bytes(b"abc")
        loader = mmapio.make_loader(path)
        monkeypatch.setenv(mmapio.ENV_VAR, "0")
        assert isinstance(loader(), bytes)
        monkeypatch.setenv(mmapio.ENV_VAR, "1")
        assert isinstance(loader(), memoryview)


class TestShardIntegration:
    @pytest.fixture()
    def dataset(self, tmp_path, rng):
        batches = []
        for _ in range(3):
            dense = np.round(rng.random((20, 6)) * (rng.random((20, 6)) < 0.5), 1)
            batches.append((dense, rng.integers(0, 2, size=20).astype(np.float64)))
        return ShardedDataset.create(tmp_path / "ds", batches, "TOC", executor="serial")

    def test_read_payload_is_zero_copy_by_default(self, dataset, monkeypatch):
        monkeypatch.delenv(mmapio.ENV_VAR, raising=False)
        payload = dataset.read_payload(0)
        assert isinstance(payload, memoryview)

    def test_read_payload_honours_toggle(self, dataset, monkeypatch):
        monkeypatch.setenv(mmapio.ENV_VAR, "0")
        assert isinstance(dataset.read_payload(0), bytes)

    def test_decode_from_mapped_payload(self, dataset, monkeypatch):
        monkeypatch.delenv(mmapio.ENV_VAR, raising=False)
        for shard in dataset.shards:
            mapped = dataset.decode(shard.batch_id).to_dense()
            monkeypatch.setenv(mmapio.ENV_VAR, "0")
            copied = dataset.decode(shard.batch_id).to_dense()
            monkeypatch.delenv(mmapio.ENV_VAR, raising=False)
            np.testing.assert_array_equal(mapped, copied)
