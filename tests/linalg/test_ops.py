"""Tests for the scheme-agnostic linear-algebra dispatch helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.compression.registry import get_scheme
from repro.linalg import ops


@pytest.fixture()
def dense(rng):
    return rng.normal(size=(12, 8)) * (rng.random((12, 8)) < 0.5)


class TestDispatch:
    def test_ndarray_passthrough(self, dense, rng):
        v = rng.normal(size=8)
        u = rng.normal(size=12)
        np.testing.assert_allclose(ops.matvec(dense, v), dense @ v)
        np.testing.assert_allclose(ops.rmatvec(dense, u), u @ dense)
        np.testing.assert_allclose(ops.to_dense(dense), dense)

    def test_scipy_sparse_supported(self, dense, rng):
        csr = sp.csr_matrix(dense)
        v = rng.normal(size=8)
        u = rng.normal(size=12)
        np.testing.assert_allclose(ops.matvec(csr, v), dense @ v)
        np.testing.assert_allclose(ops.rmatvec(csr, u), u @ dense)
        np.testing.assert_allclose(ops.to_dense(csr), dense)

    def test_compressed_matrix_supported(self, dense, rng):
        compressed = get_scheme("TOC").compress(dense)
        v = rng.normal(size=8)
        u = rng.normal(size=12)
        m = rng.normal(size=(8, 3))
        k = rng.normal(size=(3, 12))
        np.testing.assert_allclose(ops.matvec(compressed, v), dense @ v, rtol=1e-9)
        np.testing.assert_allclose(ops.rmatvec(compressed, u), u @ dense, rtol=1e-9)
        np.testing.assert_allclose(ops.matmat(compressed, m), dense @ m, rtol=1e-9)
        np.testing.assert_allclose(ops.rmatmat(compressed, k), k @ dense, rtol=1e-9)
        np.testing.assert_allclose(ops.to_dense(compressed), dense)

    def test_scale_dispatch(self, dense):
        compressed = get_scheme("CSR").compress(dense)
        np.testing.assert_allclose(ops.to_dense(ops.scale(compressed, 2.0)), dense * 2.0)
        np.testing.assert_allclose(ops.scale(dense, 2.0), dense * 2.0)

    def test_matmat_and_rmatmat_on_ndarray(self, dense, rng):
        m = rng.normal(size=(8, 4))
        k = rng.normal(size=(4, 12))
        np.testing.assert_allclose(ops.matmat(dense, m), dense @ m)
        np.testing.assert_allclose(ops.rmatmat(dense, k), k @ dense)
