"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestInfoCommand:
    def test_lists_schemes_and_datasets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "TOC" in out
        assert "census" in out
        assert "fig5" in out


class TestAdviseCommand:
    def test_recommends_toc_for_census_profile(self, capsys):
        assert main(["advise", "--dataset", "census", "--rows", "100"]) == 0
        out = capsys.readouterr().out
        assert "recommended scheme: TOC" in out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["advise", "--dataset", "criteo"]) == 2
        assert "unknown dataset" in capsys.readouterr().out

    def test_all_schemes_listed(self, capsys):
        main(["advise", "--dataset", "kdd99", "--rows", "60"])
        out = capsys.readouterr().out
        for scheme in ("DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC"):
            assert scheme in out


class TestExperimentCommand:
    def test_runs_quick_experiment(self, capsys):
        assert main(["experiment", "tab1"]) == 0
        assert "Neural network" in capsys.readouterr().out

    def test_quick_flag_passed_through(self, capsys):
        assert main(["experiment", "fig6", "--quick"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_advise_defaults(self):
        args = build_parser().parse_args(["advise"])
        assert args.dataset == "census"
        assert args.rows == 250


class TestTrainOOCCommand:
    def test_trains_out_of_core_and_reports_spill(self, capsys, tmp_path):
        assert (
            main(
                [
                    "train-ooc",
                    "--dataset", "census",
                    "--rows", "400",
                    "--batch-size", "100",
                    "--epochs", "2",
                    "--executor", "serial",
                    "--shard-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "does NOT fit" in out  # default budget ratio 0.5: dataset > pool
        assert "pool stats:" in out
        assert (tmp_path / "manifest.json").exists()

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["train-ooc", "--dataset", "criteo"]) == 2
        assert "unknown dataset" in capsys.readouterr().out
