"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestInfoCommand:
    def test_lists_schemes_and_datasets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "TOC" in out
        assert "census" in out
        assert "fig5" in out


class TestAdviseCommand:
    def test_recommends_toc_for_census_profile(self, capsys):
        assert main(["advise", "--dataset", "census", "--rows", "100"]) == 0
        out = capsys.readouterr().out
        assert "recommended scheme: TOC" in out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["advise", "--dataset", "criteo"]) == 2
        assert "unknown dataset" in capsys.readouterr().out

    def test_all_schemes_listed(self, capsys):
        main(["advise", "--dataset", "kdd99", "--rows", "60"])
        out = capsys.readouterr().out
        for scheme in ("DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC"):
            assert scheme in out


class TestExperimentCommand:
    def test_runs_quick_experiment(self, capsys):
        assert main(["experiment", "tab1"]) == 0
        assert "Neural network" in capsys.readouterr().out

    def test_quick_flag_passed_through(self, capsys):
        assert main(["experiment", "fig6", "--quick"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_advise_defaults(self):
        args = build_parser().parse_args(["advise"])
        assert args.dataset == "census"
        assert args.rows == 250

    def test_encode_defaults_to_auto_scheme(self):
        args = build_parser().parse_args(["encode", "--shard-dir", "x"])
        assert args.scheme == "auto"

    def test_train_ooc_defaults_to_toc(self):
        args = build_parser().parse_args(["train-ooc"])
        assert args.scheme == "TOC"

    def test_workload_defaults_off_everywhere(self):
        for argv in (["encode", "--shard-dir", "x"], ["train-ooc"],
                     ["compact", "--shard-dir", "x"], ["advise"]):
            assert build_parser().parse_args(argv).workload is None

    def test_workload_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["encode", "--shard-dir", "x", "--workload", "oltp"])


class TestEncodeStatsCompactCommands:
    def test_round_trip_encode_stats_compact_train_predict(self, capsys, tmp_path):
        """The facade lifecycle end to end on one tmpdir.

        encode (deliberately mis-scheming sparse data as DEN) → stats →
        compact (drift repair: the advisor re-encodes every shard) →
        train-ooc over the *existing* compacted shards → predict.
        """
        import json

        shard_dir, registry_dir = tmp_path / "shards", tmp_path / "registry"
        assert main(
            [
                "encode",
                "--dataset", "census",
                "--rows", "300",
                "--batch-size", "75",
                "--scheme", "DEN",
                "--executor", "serial",
                "--shard-dir", str(shard_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "DENx4" in out

        assert main(["stats", "--shard-dir", str(shard_dir)]) == 0
        assert "DENx4" in capsys.readouterr().out

        assert main(["compact", "--shard-dir", str(shard_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 of 4 shards re-encoded" in out
        manifest = json.loads((shard_dir / "manifest.json").read_text())
        assert manifest["format_version"] == 2
        assert all(row["scheme"] != "DEN" for row in manifest["shards"])

        # Second compact: idempotent no-op.
        assert main(["compact", "--shard-dir", str(shard_dir)]) == 0
        assert "0 of 4 shards re-encoded" in capsys.readouterr().out

        # train-ooc reuses the compacted directory instead of re-sharding.
        assert main(
            [
                "train-ooc",
                "--epochs", "2",
                "--shard-dir", str(shard_dir),
                "--checkpoint-dir", str(registry_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "training over the existing 4 shards" in out
        assert "checkpoint: published v00001" in out

        assert main(["predict", "--checkpoint-dir", str(registry_dir), "--ids", "0,299"]) == 0
        assert "agreement with stored labels" in capsys.readouterr().out

    def test_encode_unknown_dataset_fails_cleanly(self, capsys, tmp_path):
        assert main(["encode", "--dataset", "criteo", "--shard-dir", str(tmp_path)]) == 2
        assert "unknown dataset" in capsys.readouterr().out

    def test_encode_unknown_scheme_fails_cleanly(self, capsys, tmp_path):
        assert main(
            ["encode", "--scheme", "LZ77", "--rows", "100", "--shard-dir", str(tmp_path)]
        ) == 2
        assert "encode failed" in capsys.readouterr().out

    def test_stats_missing_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["stats", "--shard-dir", str(tmp_path / "none")]) == 2
        assert "no shard manifest" in capsys.readouterr().out

    def test_compact_missing_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["compact", "--shard-dir", str(tmp_path / "none")]) == 2
        assert "no shard manifest" in capsys.readouterr().out

    def test_compact_no_readvise_rewrites_manifest_only(self, capsys, tmp_path):
        assert main(
            [
                "encode",
                "--dataset", "census",
                "--rows", "150",
                "--batch-size", "75",
                "--scheme", "DEN",
                "--executor", "serial",
                "--shard-dir", str(tmp_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["compact", "--shard-dir", str(tmp_path), "--no-readvise"]) == 0
        assert "manifest rewritten" in capsys.readouterr().out

    def test_workload_flag_encodes_compacts_and_advises(self, capsys, tmp_path):
        assert main(
            [
                "encode",
                "--dataset", "census",
                "--rows", "150",
                "--batch-size", "75",
                "--executor", "serial",
                "--workload", "serve",
                "--shard-dir", str(tmp_path),
            ]
        ) == 0
        assert "encoded" in capsys.readouterr().out
        assert (tmp_path / "calibration.json").exists()

        assert main(["compact", "--shard-dir", str(tmp_path), "--workload", "serve"]) == 0
        assert "compacted" in capsys.readouterr().out

        assert main(["advise", "--dataset", "census", "--rows", "100",
                     "--workload", "serve"]) == 0
        out = capsys.readouterr().out
        assert "measured-cost ranking" in out
        assert "recommended scheme:" in out


class TestTrainOOCCommand:
    def test_trains_out_of_core_and_reports_spill(self, capsys, tmp_path):
        assert (
            main(
                [
                    "train-ooc",
                    "--dataset", "census",
                    "--rows", "400",
                    "--batch-size", "100",
                    "--epochs", "2",
                    "--executor", "serial",
                    "--shard-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "does NOT fit" in out  # default budget ratio 0.5: dataset > pool
        assert "pool stats:" in out
        assert (tmp_path / "manifest.json").exists()

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["train-ooc", "--dataset", "criteo"]) == 2
        assert "unknown dataset" in capsys.readouterr().out

    def test_auto_scheme_trains_checkpoints_and_serves(self, capsys, tmp_path):
        import json

        shard_dir, registry_dir = tmp_path / "shards", tmp_path / "registry"
        code = main(
            [
                "train-ooc",
                "--dataset", "census",
                "--rows", "300",
                "--batch-size", "75",
                "--epochs", "1",
                "--scheme", "auto",
                "--executor", "serial",
                "--shard-dir", str(shard_dir),
                "--checkpoint-dir", str(registry_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheme 'auto'" in out
        manifest = json.loads((shard_dir / "manifest.json").read_text())
        assert manifest["requested_scheme"] == "auto"
        assert all(row["scheme"] != "auto" for row in manifest["shards"])

        # The checkpointed model serves rows straight off the auto shards.
        assert main(["predict", "--checkpoint-dir", str(registry_dir), "--ids", "0,5,299"]) == 0
        assert "agreement with stored labels" in capsys.readouterr().out

    def test_unknown_scheme_fails_cleanly(self, capsys):
        assert main(["train-ooc", "--scheme", "LZ77", "--rows", "200"]) == 2
        assert "invalid train-ooc configuration" in capsys.readouterr().out

    def test_checkpoint_requires_shard_dir(self, capsys, tmp_path):
        assert main(["train-ooc", "--checkpoint-dir", str(tmp_path)]) == 2
        assert "--shard-dir" in capsys.readouterr().out


@pytest.fixture(scope="module")
def served_checkpoint(tmp_path_factory):
    """One train-ooc run with --checkpoint-dir, shared by the serving tests."""
    shard_dir = tmp_path_factory.mktemp("cli-shards")
    registry_dir = tmp_path_factory.mktemp("cli-registry")
    code = main(
        [
            "train-ooc",
            "--dataset", "census",
            "--rows", "300",
            "--batch-size", "75",
            "--epochs", "2",
            "--executor", "serial",
            "--shard-dir", str(shard_dir),
            "--checkpoint-dir", str(registry_dir),
        ]
    )
    assert code == 0
    return shard_dir, registry_dir


class TestPredictCommand:
    def test_predicts_stored_rows(self, capsys, served_checkpoint):
        _, registry_dir = served_checkpoint
        capsys.readouterr()
        assert main(["predict", "--checkpoint-dir", str(registry_dir), "--ids", "0,5,299"]) == 0
        out = capsys.readouterr().out
        assert "model v00001" in out
        assert "agreement with stored labels" in out

    def test_shards_override(self, capsys, served_checkpoint):
        shard_dir, registry_dir = served_checkpoint
        code = main(
            [
                "predict",
                "--checkpoint-dir", str(registry_dir),
                "--shards", str(shard_dir),
                "--ids", "1",
            ]
        )
        assert code == 0

    def test_missing_checkpoint_fails_cleanly(self, capsys, tmp_path):
        assert main(["predict", "--checkpoint-dir", str(tmp_path / "none")]) == 2
        assert "cannot load checkpoint" in capsys.readouterr().out

    def test_bad_ids_rejected(self, capsys, served_checkpoint):
        _, registry_dir = served_checkpoint
        assert main(["predict", "--checkpoint-dir", str(registry_dir), "--ids", "a,b"]) == 2
        assert "comma-separated integers" in capsys.readouterr().out

    def test_out_of_range_id_fails_cleanly(self, capsys, served_checkpoint):
        _, registry_dir = served_checkpoint
        assert main(["predict", "--checkpoint-dir", str(registry_dir), "--ids", "9999"]) == 2
        assert "predict failed" in capsys.readouterr().out


class TestServeCommand:
    def test_reports_throughput_and_batching(self, capsys, served_checkpoint):
        _, registry_dir = served_checkpoint
        code = main(
            [
                "serve",
                "--checkpoint-dir", str(registry_dir),
                "--requests", "200",
                "--clients", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "batching:" in out
        assert "pred cache:" in out

    def test_missing_checkpoint_fails_cleanly(self, capsys, tmp_path):
        assert main(["serve", "--checkpoint-dir", str(tmp_path / "none")]) == 2
        assert "cannot load checkpoint" in capsys.readouterr().out


class TestServeClusterCommand:
    def test_multiprocess_serve_reports_per_worker_metrics(
        self, capsys, served_checkpoint
    ):
        _, registry_dir = served_checkpoint
        code = main(
            [
                "serve",
                "--checkpoint-dir", str(registry_dir),
                "--workers", "2",
                "--backlog", "16",
                "--requests", "300",
                "--clients", "4",
                "--deadline-ms", "10000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        assert "answered requests/s" in out
        assert "cluster.worker.queue_depth{worker=0}" in out
        assert "cluster.worker.queue_depth{worker=1}" in out

    def test_sigterm_drains_gracefully(self, capsys, served_checkpoint):
        import os
        import signal
        import threading
        import time

        from repro.obs import metrics as obs_metrics

        _, registry_dir = served_checkpoint

        def requests_total() -> float:
            snap = obs_metrics.snapshot("cluster.server.")
            return sum(
                value
                for key, value in snap["counters"].items()
                if key.startswith("cluster.server.requests")
            )

        base = requests_total()

        def send_sigterm() -> None:
            # Wait until the serve loop is demonstrably issuing requests —
            # by then the CLI's signal handlers are installed — then signal.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if requests_total() >= base + 20:
                    break
                time.sleep(0.02)
            os.kill(os.getpid(), signal.SIGTERM)

        killer = threading.Thread(target=send_sigterm)
        killer.start()
        try:
            code = main(
                [
                    "serve",
                    "--checkpoint-dir", str(registry_dir),
                    "--workers", "2",
                    "--backlog", "16",
                    "--requests", "500000",
                    "--clients", "4",
                ]
            )
        finally:
            killer.join(timeout=130)
        assert code == 0
        out = capsys.readouterr().out
        assert "received SIGTERM: draining in-flight work" in out
        assert "drained cleanly after signal" in out


class TestScanCommand:
    @pytest.fixture()
    def encoded_dir(self, capsys, tmp_path):
        shard_dir = tmp_path / "shards"
        assert main(
            [
                "encode",
                "--dataset", "census",
                "--rows", "200",
                "--batch-size", "50",
                "--executor", "serial",
                "--shard-dir", str(shard_dir),
            ]
        ) == 0
        capsys.readouterr()
        return shard_dir

    def test_aggregate_round_trip(self, capsys, encoded_dir):
        assert main(["scan", "--shard-dir", str(encoded_dir), "--agg", "count"]) == 0
        out = capsys.readouterr().out
        assert "count" in out
        assert "200" in out
        assert "scanned 200 rows in 4 shards" in out

    def test_selection_prints_rows_and_stats(self, capsys, encoded_dir):
        assert main(
            [
                "scan",
                "--shard-dir", str(encoded_dir),
                "--where", "c0 >= 0",
                "--columns", "c1,c0",
                "--limit", "6",
                "--max-print", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "row" in out and "c1" in out
        assert "(3 more rows not printed)" in out
        assert "6 matched" in out
        assert "push-down on" in out

    def test_no_pushdown_flag_matches(self, capsys, encoded_dir):
        assert main(
            ["scan", "--shard-dir", str(encoded_dir), "--agg", "count,mean:c0"]
        ) == 0
        pushed = capsys.readouterr().out
        assert main(
            [
                "scan",
                "--shard-dir", str(encoded_dir),
                "--agg", "count,mean:c0",
                "--no-pushdown",
            ]
        ) == 0
        fallback = capsys.readouterr().out
        assert pushed.splitlines()[:2] == fallback.splitlines()[:2]

    def test_missing_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["scan", "--shard-dir", str(tmp_path / "nope")]) == 2
        assert "no shard manifest" in capsys.readouterr().out

    def test_bad_where_and_columns_fail_cleanly(self, capsys, encoded_dir):
        assert main(
            ["scan", "--shard-dir", str(encoded_dir), "--where", "c0 >"]
        ) == 2
        assert "scan failed" in capsys.readouterr().out
        assert main(
            ["scan", "--shard-dir", str(encoded_dir), "--columns", "c0,banana"]
        ) == 2
        assert "comma-separated" in capsys.readouterr().out


class TestFsckCommand:
    def _encode(self, capsys, tmp_path):
        shard_dir = tmp_path / "shards"
        assert main(
            [
                "encode",
                "--dataset", "census",
                "--rows", "120",
                "--batch-size", "60",
                "--executor", "serial",
                "--shard-dir", str(shard_dir),
            ]
        ) == 0
        capsys.readouterr()
        return shard_dir

    def test_clean_directory(self, capsys, tmp_path):
        shard_dir = self._encode(capsys, tmp_path)
        assert main(["fsck", "--shard-dir", str(shard_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_orphan_dry_run_then_sweep(self, capsys, tmp_path):
        shard_dir = self._encode(capsys, tmp_path)
        orphan = shard_dir / "shard-00000.g7.bin"
        orphan.write_bytes(b"leftover from an interrupted compact")

        assert main(["fsck", "--shard-dir", str(shard_dir), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove: shard-00000.g7.bin" in out
        assert "dry run" in out
        assert orphan.exists()

        assert main(["fsck", "--shard-dir", str(shard_dir)]) == 0
        out = capsys.readouterr().out
        assert "removed: shard-00000.g7.bin" in out
        assert not orphan.exists()

        assert main(["fsck", "--shard-dir", str(shard_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_referenced_shard_exits_nonzero(self, capsys, tmp_path):
        import json

        shard_dir = self._encode(capsys, tmp_path)
        manifest = json.loads((shard_dir / "manifest.json").read_text())
        victim = manifest["shards"][0]["filename"]
        (shard_dir / victim).unlink()
        assert main(["fsck", "--shard-dir", str(shard_dir)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_missing_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["fsck", "--shard-dir", str(tmp_path / "nope")]) == 2
        assert "no shard manifest" in capsys.readouterr().out


class TestObsCommand:
    def test_metrics_prints_the_snapshot(self, capsys):
        assert main(["obs", "metrics", "--rows", "60", "--prefix", "engine."]) == 0
        out = capsys.readouterr().out
        snapshot = __import__("json").loads(out)
        assert snapshot["counters"]["engine.train.epochs"] >= 2
        assert "engine.encode.batch_seconds" in snapshot["histograms"]

    def test_dump_json_to_stdout(self, capsys):
        assert main(["obs", "dump", "--rows", "60"]) == 0
        spans = __import__("json").loads(capsys.readouterr().out)
        assert any(record["name"] == "engine.train" for record in spans)

    def test_dump_chrome_to_file(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main([
            "obs", "dump", "--rows", "60", "--format", "chrome",
            "--output", str(out_path),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["obs", "dump"])
        assert args.format == "json"
        assert args.rows == 400
        args = build_parser().parse_args(["bench-report"])
        assert args.db == "bench_registry.sqlite"
        assert args.threshold == 0.2
        assert not args.check


class TestBenchReportCommand:
    @staticmethod
    def _bench_file(tmp_path, filename, created, rps, commit):
        import json

        path = tmp_path / filename
        path.write_text(json.dumps({
            "version": 3,
            "name": "serving",
            "created_unix": created,
            "git_commit": commit,
            "platform": {"system": "T", "machine": "t", "python": "3.11"},
            "platform_key": "T-t-py3.11",
            "records": [{"bench": "serving", "throughput_rps": rps}],
        }))
        return path

    def test_gate_passes_then_fails_on_regression(self, capsys, tmp_path):
        db = str(tmp_path / "reg.sqlite")
        base = self._bench_file(tmp_path, "BENCH_a.json", 1000.0, 20000.0, "a")
        curr = self._bench_file(tmp_path, "BENCH_b.json", 2000.0, 14000.0, "b")
        assert main(["bench-report", "--db", db, "--check", str(base)]) == 0
        assert "baseline recorded" in capsys.readouterr().out
        assert main(["bench-report", "--db", db, "--check", str(curr)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAILED regression gate" in out

    def test_no_files_is_a_usage_error(self, capsys, tmp_path):
        missing = str(tmp_path / "BENCH_*.json")
        assert main(["bench-report", "--db", str(tmp_path / "r.sqlite"), missing]) == 2
        assert "no BENCH files" in capsys.readouterr().out
