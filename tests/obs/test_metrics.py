"""Tests for the thread-safe metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("t.requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("t.requests")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_float_increments_accumulate(self):
        counter = MetricsRegistry().counter("t.seconds")
        counter.inc(0.25)
        counter.inc(0.75)
        assert counter.value == pytest.approx(1.0)

    def test_inc_locked_under_a_shared_lock(self):
        lock = threading.RLock()
        counter = MetricsRegistry().counter("t.requests", lock=lock)
        with lock:
            counter.inc_locked()
            counter.inc_locked(3)
        assert counter.value == 4


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("t.resident")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(12.0)
        assert gauge.value == pytest.approx(3.0)

    def test_can_go_negative(self):
        gauge = MetricsRegistry().gauge("t.delta")
        gauge.dec(2.0)
        assert gauge.value == pytest.approx(-2.0)


class TestHistogram:
    def test_basic_moments(self):
        hist = MetricsRegistry().histogram("t.seconds")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(6.0)
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == pytest.approx(1.0)
        assert hist.max == pytest.approx(3.0)

    def test_empty_histogram_reports_zeros(self):
        hist = MetricsRegistry().histogram("t.seconds")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.min == 0.0
        assert hist.max == 0.0
        assert hist.percentile(0.5) == 0.0

    def test_constant_distribution_percentiles_are_exact(self):
        # min == max clamps the winning bucket to a single point.
        hist = MetricsRegistry().histogram("t.seconds")
        for _ in range(100):
            hist.observe(0.5)
        assert hist.percentile(0.50) == pytest.approx(0.5)
        assert hist.percentile(0.99) == pytest.approx(0.5)

    def test_bimodal_distribution_separates_p50_from_p99(self):
        # 90% fast (1 ms), 10% slow (1 s): p50 must sit near the fast mode
        # and p99 near the slow one.  Log buckets are a quarter-decade wide,
        # so "near" means within a small constant factor.
        hist = MetricsRegistry().histogram("t.seconds")
        for _ in range(90):
            hist.observe(0.001)
        for _ in range(10):
            hist.observe(1.0)
        assert hist.percentile(0.50) == pytest.approx(0.001, rel=1.0)
        assert hist.percentile(0.99) == pytest.approx(1.0, rel=1.0)

    def test_percentile_fraction_validated(self):
        hist = MetricsRegistry().histogram("t.seconds")
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_summary_shape(self):
        hist = MetricsRegistry().histogram("t.seconds")
        hist.observe(2.0)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"}
        assert summary["count"] == 1

    def test_observe_locked_under_a_shared_lock(self):
        lock = threading.RLock()
        hist = MetricsRegistry().histogram("t.seconds", lock=lock)
        with lock:
            hist.observe_locked(1.0)
            hist.observe_locked(2.0)
        assert hist.count == 2

    def test_default_buckets_strictly_increasing(self):
        assert all(a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))

    def test_concurrent_observes_lose_nothing(self):
        hist = MetricsRegistry().histogram("t.seconds")

        def worker():
            for _ in range(500):
                hist.observe(0.01)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 2000
        assert hist.sum == pytest.approx(20.0)


class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("t.a") is registry.counter("t.a")

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("t.a", svc=0)
        b = registry.counter("t.a", svc=1)
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("t.a", x=1, y=2) is registry.counter("t.a", y=2, x=1)

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t.a")
        with pytest.raises(TypeError):
            registry.gauge("t.a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_full_name_renders_labels(self):
        counter = MetricsRegistry().counter("t.a", svc=3)
        assert counter.full_name == "t.a{svc=3}"

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("t.requests").inc(7)
        registry.gauge("t.resident").set(42.0)
        registry.histogram("t.seconds").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"]["t.requests"] == 7
        assert snap["gauges"]["t.resident"] == pytest.approx(42.0)
        assert snap["histograms"]["t.seconds"]["count"] == 1

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc()
        registry.counter("engine.batches").inc()
        snap = registry.snapshot("serve.")
        assert "serve.requests" in snap["counters"]
        assert "engine.batches" not in snap["counters"]

    def test_snapshot_label_filter_and_strip(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", svc=0).inc(2)
        registry.counter("serve.requests", svc=1).inc(9)
        snap = registry.snapshot("serve.", labels={"svc": 0}, strip_labels=True)
        assert snap["counters"] == {"serve.requests": 2}

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("t.a")
        hist = registry.histogram("t.h")
        counter.inc(5)
        hist.observe(1.0)
        registry.reset()
        # Live references stay valid — reset does not replace the objects.
        assert counter is registry.counter("t.a")
        assert counter.value == 0
        assert hist.count == 0
        assert hist.sum == 0.0


class TestEnabledSwitch:
    def test_disabled_mutations_are_noops(self):
        registry = MetricsRegistry()
        counter = registry.counter("t.a")
        gauge = registry.gauge("t.g")
        hist = registry.histogram("t.h")
        obs_metrics.set_enabled(False)
        try:
            counter.inc()
            counter.inc_locked()
            gauge.set(5.0)
            gauge.inc()
            hist.observe(1.0)
            hist.observe_locked(1.0)
        finally:
            obs_metrics.set_enabled(True)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert hist.count == 0
        assert obs_metrics.enabled()

    def test_module_shortcuts_hit_the_default_registry(self):
        counter = obs_metrics.counter("t.shortcut", test="metrics")
        before = counter.value
        counter.inc()
        snap = obs_metrics.snapshot("t.shortcut")
        assert snap["counters"]["t.shortcut{test=metrics}"] == before + 1


class TestKinds:
    def test_metric_classes_exported(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("t.c"), Counter)
        assert isinstance(registry.gauge("t.g"), Gauge)
        assert isinstance(registry.histogram("t.h"), Histogram)
