"""Tests for ``repro bench-report``: ingest, delta table, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import BenchRegistry
from repro.obs.report import bench_report, format_diff

PLATFORM = {"system": "Linux", "machine": "x86_64", "python": "3.11.8"}


def write_bench(tmp_path, filename, created, throughput, *, wall=None, commit="c1"):
    records = [{"bench": "serving", "backend": "microbatch", "throughput_rps": throughput}]
    if wall is not None:
        records[0]["wall_seconds"] = wall
    path = tmp_path / filename
    path.write_text(
        json.dumps(
            {
                "version": 3,
                "name": "serving",
                "created_unix": created,
                "git_commit": commit,
                "platform": PLATFORM,
                "platform_key": "Linux-x86_64-py3.11",
                "records": records,
            }
        )
    )
    return path


@pytest.fixture
def echo():
    lines: list[str] = []

    def capture(text=""):
        lines.append(str(text))

    capture.lines = lines
    return capture


class TestRegressionGate:
    def test_25_percent_throughput_drop_fails_the_check(self, tmp_path, echo):
        """The acceptance case: two ingested runs, a synthetic 25% regression."""
        db = tmp_path / "reg.sqlite"
        base = write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0, commit="a")
        curr = write_bench(tmp_path, "BENCH_b.json", 2000.0, 15_000.0, commit="b")
        assert bench_report([str(base)], db=db, check=True, echo=echo) == 0
        assert bench_report([str(curr)], db=db, check=True, echo=echo) == 1
        with BenchRegistry(db) as registry:
            assert len(registry.runs("serving")) == 2
        output = "\n".join(echo.lines)
        assert "REGRESSION" in output
        assert "FAILED regression gate" in output

    def test_small_drop_passes(self, tmp_path, echo):
        db = tmp_path / "reg.sqlite"
        base = write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0, commit="a")
        curr = write_bench(tmp_path, "BENCH_b.json", 2000.0, 18_000.0, commit="b")
        assert bench_report([str(base), str(curr)], db=db, check=True, echo=echo) == 0
        assert "REGRESSION" not in "\n".join(echo.lines)

    def test_first_run_is_baseline_only(self, tmp_path, echo):
        db = tmp_path / "reg.sqlite"
        base = write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0)
        assert bench_report([str(base)], db=db, check=True, echo=echo) == 0
        assert any("baseline recorded" in line for line in echo.lines)

    def test_regression_without_check_still_exits_zero(self, tmp_path, echo):
        db = tmp_path / "reg.sqlite"
        base = write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0, commit="a")
        curr = write_bench(tmp_path, "BENCH_b.json", 2000.0, 10_000.0, commit="b")
        assert bench_report([str(base), str(curr)], db=db, check=False, echo=echo) == 0
        assert "REGRESSION" in "\n".join(echo.lines)  # reported, not gated

    def test_lower_is_better_metric_gates_on_increase(self, tmp_path, echo):
        db = tmp_path / "reg.sqlite"
        base = write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0, wall=1.0, commit="a")
        curr = write_bench(tmp_path, "BENCH_b.json", 2000.0, 20_000.0, wall=1.5, commit="b")
        assert bench_report([str(base), str(curr)], db=db, check=True, echo=echo) == 1

    def test_threshold_is_tunable(self, tmp_path, echo):
        db = tmp_path / "reg.sqlite"
        base = write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0, commit="a")
        curr = write_bench(tmp_path, "BENCH_b.json", 2000.0, 18_000.0, commit="b")
        args = [str(base), str(curr)]
        assert bench_report(args, db=db, threshold=0.05, check=True, echo=echo) == 1


class TestUsage:
    def test_no_matching_files_is_a_usage_error(self, tmp_path, echo):
        code = bench_report(
            [str(tmp_path / "BENCH_*.json")], db=tmp_path / "reg.sqlite", echo=echo
        )
        assert code == 2

    def test_glob_patterns_expand(self, tmp_path, echo):
        db = tmp_path / "reg.sqlite"
        write_bench(tmp_path, "BENCH_a.json", 1000.0, 20_000.0, commit="a")
        write_bench(tmp_path, "BENCH_b.json", 2000.0, 19_000.0, commit="b")
        assert bench_report([str(tmp_path / "BENCH_*.json")], db=db, echo=echo) == 0
        assert any("2 file(s) ingested" in line for line in echo.lines)

    def test_unreadable_payload_is_a_usage_error(self, tmp_path, echo):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(["not", "an", "envelope"]))
        assert bench_report([str(bad)], db=tmp_path / "reg.sqlite", echo=echo) == 2


class TestFormatDiff:
    def test_table_shows_direction_and_change(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            a = write_bench(tmp_path, "BENCH_a.json", 1000.0, 100.0, wall=1.0, commit="a")
            b = write_bench(tmp_path, "BENCH_b.json", 2000.0, 50.0, wall=1.0, commit="b")
            registry.record_file(a)
            run = registry.record_file(b)
            lines = format_diff(registry.diff(run.run_id), threshold=0.2)
        text = "\n".join(lines)
        assert "baseline: run 1" in text
        assert "-50.0%" in text
        assert "REGRESSION" in text
        assert "[↓good]" in text  # wall_seconds, unchanged but direction-tagged
