"""Integration: a real encode+train+scan run feeds spans and metrics.

The unit tests poke the primitives; these run the actual instrumented hot
paths (serial executors, so every span lands in this process) and check
what comes out the other side — in particular that the Chrome trace dump
round-trips with consistent nesting, the satellite the ``repro obs dump``
CLI relies on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Dataset, Estimator
from repro.obs import default_tracer, metrics_snapshot
from repro.obs import trace as obs_trace


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One encode+train+scan run with a freshly cleared tracer."""
    tmp = tmp_path_factory.mktemp("obs-run")
    rng = np.random.default_rng(0)
    features = rng.normal(size=(120, 6))
    features[rng.random(features.shape) < 0.5] = 0.0
    labels = (features[:, 0] > 0).astype(np.float64)
    obs_trace.clear()
    dataset = Dataset.create(
        tmp / "shards", features, labels,
        scheme="TOC", batch_size=30, executor="serial", seed=0,
    )
    Estimator("logreg", scheme="TOC", epochs=2, executor="serial").fit(dataset)
    result = dataset.scan(where="c0 >= 0", agg="count")
    return dataset, result, default_tracer().spans()


class TestSpansFromTheRealPipeline:
    def test_expected_span_names_present(self, traced_run):
        _, _, spans = traced_run
        names = {record["name"] for record in spans}
        assert {"engine.encode", "engine.encode.batch", "engine.train",
                "engine.train.shard", "exec.scan"} <= names

    def test_batch_spans_nest_under_the_encode_span(self, traced_run):
        _, _, spans = traced_run
        by_id = {record["id"]: record for record in spans}
        batches = [r for r in spans if r["name"] == "engine.encode.batch"]
        assert len(batches) == 4
        for record in batches:
            assert by_id[record["parent"]]["name"] == "engine.encode"
            assert record["labels"]["scheme"] == "TOC"


class TestChromeRoundTrip:
    def test_events_carry_the_required_fields(self, traced_run):
        payload = json.loads(default_tracer().dump_chrome())
        events = payload["traceEvents"]
        assert events
        for event in events:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in event
            assert event["ph"] == "X"

    def test_nesting_is_consistent_per_thread(self, traced_run):
        """Every depth>0 event sits inside a shallower event on its thread."""
        events = json.loads(default_tracer().dump_chrome())["traceEvents"]
        by_tid: dict = {}
        for event in events:
            by_tid.setdefault(event["tid"], []).append(event)
        nested = 0
        for siblings in by_tid.values():
            for event in siblings:
                depth = event["args"]["depth"]
                if depth == 0:
                    continue
                nested += 1
                eps = 1e-3  # µs slack for float rounding
                assert any(
                    other["args"]["depth"] == depth - 1
                    and other["ts"] - eps <= event["ts"]
                    and event["ts"] + event["dur"] <= other["ts"] + other["dur"] + eps
                    for other in siblings
                    if other is not event
                ), f"no enclosing parent for {event['name']} at depth {depth}"
        assert nested > 0  # the pipeline genuinely produced nested spans


class TestMetricsFromTheRealPipeline:
    def test_engine_and_scan_counters_advance(self, traced_run):
        dataset, result, _ = traced_run
        snap = metrics_snapshot("engine.")
        assert snap["counters"]["engine.encode.batches"] >= 4
        assert snap["counters"]["engine.train.epochs"] >= 2
        assert snap["histograms"]["engine.encode.batch_seconds"]["count"] >= 4
        scan = metrics_snapshot("exec.scan")["counters"]
        assert scan["exec.scan.scans"] >= 1
        assert scan["exec.scan.rows_scanned"] >= 120
        assert scan["exec.scan.rows_matched"] >= result.n_rows_matched

    def test_dataset_stats_carries_the_snapshot_on_request(self, traced_run):
        dataset, _, _ = traced_run
        assert dataset.stats().metrics is None
        stats = dataset.stats(metrics=True)
        assert "engine.encode.batches" in stats.metrics["counters"]
        assert "metrics" in stats.as_dict()
        assert "metrics" not in dataset.stats().as_dict()
