"""Tests for the span tracer and its Chrome trace dump."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer


class TestSpans:
    def test_span_records_name_and_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (record,) = tracer.spans()
        assert record["name"] == "work"
        assert record["duration_s"] >= 0.0
        assert record["start_s"] >= 0.0
        assert record["depth"] == 0
        assert record["parent"] is None

    def test_labels_recorded_and_coerced(self):
        tracer = Tracer()
        with tracer.span("work", shard=3, scheme="TOC", blob=object()):
            pass
        (record,) = tracer.spans()
        assert record["labels"]["shard"] == 3
        assert record["labels"]["scheme"] == "TOC"
        assert isinstance(record["labels"]["blob"], str)  # coerced for JSON

    def test_nesting_assigns_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner closes first
        assert inner["name"] == "inner"
        assert inner["depth"] == 1
        assert inner["parent"] == outer["id"]
        assert outer["depth"] == 0
        assert outer["parent"] is None

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker():
            with tracer.span("outer"):
                barrier.wait()  # both threads hold an open span at once
                with tracer.span("inner"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.spans()
        assert len(records) == 4
        # No cross-thread nesting: every inner's parent is an outer from the
        # same thread, and outers stay at depth 0.
        by_id = {record["id"]: record for record in records}
        for record in records:
            if record["name"] == "inner":
                parent = by_id[record["parent"]]
                assert parent["name"] == "outer"
                assert parent["thread_id"] == record["thread_id"]
            else:
                assert record["depth"] == 0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        records = tracer.spans()
        assert len(tracer) == 4
        assert [record["name"] for record in records] == ["s6", "s7", "s8", "s9"]

    def test_clear_empties_the_buffer(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.spans() == []

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        obs_trace.set_enabled(False)
        try:
            with tracer.span("work"):
                pass
        finally:
            obs_trace.set_enabled(True)
        assert len(tracer) == 0
        assert obs_trace.enabled()

    def test_module_span_feeds_the_default_tracer(self):
        before = len(obs_trace.default_tracer())
        with obs_trace.span("t.module_span"):
            pass
        assert len(obs_trace.default_tracer()) == before + 1


class TestDumps:
    def test_dump_is_json_span_list(self):
        tracer = Tracer()
        with tracer.span("work", shard=1):
            pass
        records = json.loads(tracer.dump())
        assert isinstance(records, list)
        assert records[0]["name"] == "work"

    def test_chrome_dump_shape(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", shard=2):
                pass
        payload = json.loads(tracer.dump_chrome(indent=2))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == os.getpid()
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert "depth" in event["args"]
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"]["shard"] == 2
