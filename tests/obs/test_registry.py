"""Tests for the SQLite bench run registry and its diff machinery."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.obs.registry import (
    BenchRegistry,
    MetricDelta,
    flatten_records,
    metric_direction,
    platform_key,
)

V3_PLATFORM = {
    "system": "Linux",
    "machine": "x86_64",
    "python": "3.11.8",
    "processor": "x86_64",
    "cpu_count": 8,
}


def payload(
    name="serving",
    created=1000.0,
    commit="abc123",
    records=None,
    *,
    version=3,
    platform=None,
    stamp_key=True,
):
    """A minimal BENCH envelope (v3 by default, v2 when ``stamp_key=False``)."""
    platform = V3_PLATFORM if platform is None else platform
    out = {
        "version": version,
        "name": name,
        "created_unix": created,
        "git_commit": commit,
        "platform": platform,
        "records": records if records is not None else [{"bench": name, "throughput_rps": 100.0}],
    }
    if stamp_key:
        out["platform_key"] = platform_key(platform)
    return out


class TestPlatformKey:
    def test_v3_fingerprint(self):
        assert platform_key(V3_PLATFORM) == "Linux-x86_64-py3.11"

    def test_v2_platform_dict(self):
        legacy = {"system": "Darwin", "machine": "arm64", "python": "3.10.2"}
        assert platform_key(legacy) == "Darwin-arm64-py3.10"

    def test_missing_fields_degrade_gracefully(self):
        assert platform_key(None) == "unknown-unknown-py0.0"
        assert platform_key({"system": "Linux"}) == "Linux-unknown-py0.0"


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name", ["microbatch.throughput_rps", "scan.speedup", "cache.hit_rate", "accuracy"]
    )
    def test_higher_is_better(self, name):
        assert metric_direction(name) == 1

    @pytest.mark.parametrize(
        "name", ["epoch_seconds", "serving.wall_seconds", "p99_latency", "pool.evictions"]
    )
    def test_lower_is_better(self, name):
        assert metric_direction(name) == -1

    @pytest.mark.parametrize("name", ["n_rows", "batch_size", "clients"])
    def test_unknown_is_neutral(self, name):
        assert metric_direction(name) == 0

    def test_conflicting_tokens_are_neutral(self):
        # "hits" says higher, "seconds" says lower: refuse to guess.
        assert metric_direction("cache_hits_seconds") == 0
        # The serving bench's overhead_ratio carries both too, deliberately.
        assert metric_direction("overhead_ratio") == 0


class TestFlattenRecords:
    def test_id_keys_become_the_prefix(self):
        flat = flatten_records(
            [{"bench": "serving", "backend": "cached", "throughput_rps": 5.0}]
        )
        assert flat == {"serving.cached.throughput_rps": 5.0}

    def test_record_without_id_keys_uses_its_index(self):
        flat = flatten_records([{"throughput_rps": 5.0}])
        assert flat == {"record0.throughput_rps": 5.0}

    def test_bools_nan_inf_and_strings_skipped(self):
        flat = flatten_records(
            [{"bench": "x", "ok": True, "bad": float("nan"),
              "worse": float("inf"), "note": "hi", "value": 3}]
        )
        assert flat == {"x.value": 3.0}

    def test_colliding_names_get_the_index(self):
        flat = flatten_records(
            [{"bench": "x", "value": 1.0}, {"bench": "x", "value": 2.0}]
        )
        assert flat == {"x.value": 1.0, "x[1].value": 2.0}

    def test_non_dict_records_ignored(self):
        assert flatten_records([None, 42, {"bench": "x", "value": 1}]) == {"x.value": 1.0}


class TestMetricDelta:
    def test_change_is_relative(self):
        delta = MetricDelta("m", baseline=100.0, current=75.0, direction=1)
        assert delta.change == pytest.approx(-0.25)

    def test_change_none_when_not_comparable(self):
        assert MetricDelta("m", None, 5.0, 1).change is None
        assert MetricDelta("m", 5.0, None, 1).change is None
        assert MetricDelta("m", 0.0, 5.0, 1).change is None

    def test_regression_is_direction_aware(self):
        drop = MetricDelta("throughput", 100.0, 75.0, direction=1)
        assert drop.regressed(0.2)
        assert not drop.regressed(0.3)
        rise = MetricDelta("seconds", 1.0, 1.25, direction=-1)
        assert rise.regressed(0.2)
        # Improvements never regress.
        assert not MetricDelta("throughput", 100.0, 200.0, 1).regressed(0.2)
        assert not MetricDelta("seconds", 1.0, 0.5, -1).regressed(0.2)

    def test_neutral_never_regresses(self):
        assert not MetricDelta("n_rows", 100.0, 1.0, direction=0).regressed(0.2)


class TestBenchRegistry:
    def test_ingest_and_read_back(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            run = registry.record_payload(payload())
            assert run.name == "serving"
            assert run.platform_key == "Linux-x86_64-py3.11"
            assert registry.metrics_for(run.run_id) == {"serving.throughput_rps": 100.0}

    def test_reingest_is_idempotent(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            first = registry.record_payload(payload())
            second = registry.record_payload(payload())
            assert first.run_id == second.run_id
            assert len(registry.runs()) == 1

    def test_record_file_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        path.write_text(json.dumps(payload()))
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            run = registry.record_file(path)
            assert run.source_file == str(path)

    def test_v2_envelope_derives_its_platform_key(self, tmp_path):
        legacy = payload(
            version=2,
            platform={"system": "Linux", "machine": "x86_64", "python": "3.11.8"},
            stamp_key=False,
        )
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            run = registry.record_payload(legacy)
            assert run.platform_key == "Linux-x86_64-py3.11"

    def test_baseline_is_most_recent_same_platform(self, tmp_path):
        other = {**V3_PLATFORM, "machine": "arm64"}
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            old = registry.record_payload(payload(created=1000.0, commit="a"))
            mid = registry.record_payload(payload(created=2000.0, commit="b"))
            registry.record_payload(payload(created=2500.0, commit="c", platform=other))
            new = registry.record_payload(payload(created=3000.0, commit="d"))
            assert registry.baseline_for(new.run_id).run_id == mid.run_id
            assert registry.baseline_for(mid.run_id).run_id == old.run_id
            assert registry.baseline_for(old.run_id) is None

    def test_other_benchmark_names_do_not_baseline(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            registry.record_payload(payload(name="scan", created=1000.0))
            run = registry.record_payload(payload(name="serving", created=2000.0))
            assert registry.baseline_for(run.run_id) is None

    def test_diff_covers_both_metric_sets(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            registry.record_payload(
                payload(created=1000.0, commit="a",
                        records=[{"bench": "s", "throughput_rps": 100.0, "old_only": 1.0}])
            )
            run = registry.record_payload(
                payload(created=2000.0, commit="b",
                        records=[{"bench": "s", "throughput_rps": 70.0, "new_only": 2.0}])
            )
            diff = registry.diff(run.run_id)
            by_name = {delta.metric: delta for delta in diff.deltas}
            assert by_name["s.throughput_rps"].change == pytest.approx(-0.3)
            assert by_name["s.old_only"].current is None
            assert by_name["s.new_only"].baseline is None
            assert [d.metric for d in diff.regressions(0.2)] == ["s.throughput_rps"]

    def test_payload_without_name_rejected(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            with pytest.raises(ValueError):
                registry.record_payload({"records": []})

    def test_unknown_run_id_rejected(self, tmp_path):
        with BenchRegistry(tmp_path / "reg.sqlite") as registry:
            with pytest.raises(KeyError):
                registry.diff(99)

    def test_registry_persists_across_reopen(self, tmp_path):
        path = tmp_path / "reg.sqlite"
        with BenchRegistry(path) as registry:
            registry.record_payload(payload())
        with BenchRegistry(path) as registry:
            assert len(registry.runs("serving")) == 1

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "reg.sqlite"
        BenchRegistry(path).close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        with pytest.raises(RuntimeError):
            BenchRegistry(path)
