"""End-to-end tests for the out-of-core training engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.registry import DATASET_PROFILES
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent


@pytest.fixture(scope="module")
def dataset():
    return DATASET_PROFILES["census"].classification(600, seed=3)


@pytest.fixture(scope="module")
def config():
    return GradientDescentConfig(batch_size=100, epochs=2, learning_rate=0.3, shuffle_seed=0)


class TestOutOfCoreTrainer:
    def test_two_epoch_convergence_matches_in_memory_reference(self, tmp_path, dataset, config):
        """Same seed, same batches: OOC training equals the in-memory loop."""
        features, labels = dataset

        reference = LogisticRegressionModel(features.shape[1], seed=0)
        ref_history = MiniBatchGradientDescent(config).fit(
            reference, features, labels, scheme=get_scheme("TOC")
        )

        trainer = OutOfCoreTrainer("TOC", config, budget_ratio=0.5, executor="serial")
        model = LogisticRegressionModel(features.shape[1], seed=0)
        report = trainer.fit(model, features, labels, tmp_path)

        np.testing.assert_allclose(model.get_parameters(), reference.get_parameters())
        assert report.history.epoch_losses[-1] < report.history.epoch_losses[0]
        assert ref_history.epoch_losses[-1] < ref_history.epoch_losses[0]
        # Identical parameters mean identical post-training loss on the data
        # (the per-epoch histories differ by bookkeeping: streaming records
        # during the pass, the in-memory loop in a second sweep after it).
        assert model.loss(features, labels) == pytest.approx(reference.loss(features, labels))

    def test_dataset_larger_than_pool_spills(self, tmp_path, dataset, config):
        features, labels = dataset
        trainer = OutOfCoreTrainer("TOC", config, budget_ratio=0.5, executor="serial")
        model = LogisticRegressionModel(features.shape[1], seed=0)
        report = trainer.fit(model, features, labels, tmp_path)

        assert not report.fits_in_memory
        assert report.pool_stats.evictions > 0
        assert report.pool_stats.misses >= len(trainer.dataset)
        assert len(report.epoch_io_seconds) == config.epochs
        assert all(io > 0 for io in report.epoch_io_seconds)

    def test_generous_pool_hits_after_first_epoch(self, tmp_path, dataset, config):
        features, labels = dataset
        trainer = OutOfCoreTrainer("TOC", config, budget_ratio=10.0, executor="serial")
        model = LogisticRegressionModel(features.shape[1], seed=0)
        report = trainer.fit(model, features, labels, tmp_path)

        assert report.fits_in_memory
        n = len(trainer.dataset)
        assert report.pool_stats.misses == n  # first epoch only
        assert report.pool_stats.hits == (config.epochs - 1) * n
        assert report.epoch_io_seconds[-1] == 0.0

    def test_explicit_budget_and_prefetch_depths(self, tmp_path, dataset, config):
        features, labels = dataset
        for depth in (0, 1, 4):
            trainer = OutOfCoreTrainer(
                "TOC",
                config,
                budget_bytes=1 << 20,
                prefetch_depth=depth,
                executor="serial",
            )
            model = LogisticRegressionModel(features.shape[1], seed=0)
            report = trainer.fit(model, features, labels, tmp_path / f"depth{depth}")
            assert report.budget_bytes == 1 << 20
            assert len(report.history.epoch_losses) == config.epochs

    def test_prefetch_depth_does_not_change_the_model(self, tmp_path, dataset, config):
        features, labels = dataset
        params = []
        for depth in (0, 3):
            trainer = OutOfCoreTrainer(
                "TOC", config, budget_ratio=0.5, prefetch_depth=depth, executor="serial"
            )
            model = LogisticRegressionModel(features.shape[1], seed=0)
            trainer.fit(model, features, labels, tmp_path / f"d{depth}")
            params.append(model.get_parameters())
        np.testing.assert_allclose(params[0], params[1])

    def test_train_before_shard_rejected(self, config):
        trainer = OutOfCoreTrainer("TOC", config)
        with pytest.raises(RuntimeError):
            trainer.train(LogisticRegressionModel(4, seed=0))

    def test_bismarck_session_over_shards(self, tmp_path, dataset, config):
        features, labels = dataset
        trainer = OutOfCoreTrainer("TOC", config, budget_ratio=10.0, executor="serial")
        trainer.shard(features, labels, tmp_path)

        session = trainer.bismarck_session()
        model = LogisticRegressionModel(features.shape[1], seed=0)
        report = session.train(model, epochs=2, learning_rate=0.3)
        assert report.epochs[-1].mean_loss < report.epochs[0].mean_loss

    def test_shards_reusable_across_trainers(self, tmp_path, dataset, config):
        """Shard once, reattach from disk in a fresh trainer (open path)."""
        from repro.engine.shards import ShardedDataset

        features, labels = dataset
        first = OutOfCoreTrainer("TOC", config, budget_ratio=0.5, executor="serial")
        first.shard(features, labels, tmp_path)

        second = OutOfCoreTrainer("TOC", config, budget_ratio=0.5)
        second.attach(ShardedDataset.open(tmp_path))
        model = LogisticRegressionModel(features.shape[1], seed=0)
        report = second.train(model)
        assert len(report.history.epoch_losses) == config.epochs


class TestAdaptiveScheme:
    """scheme="auto": per-shard compression flowing through the whole engine."""

    @pytest.fixture(scope="class")
    def mixed_dataset(self, tmp_path_factory):
        """A shard directory whose batches genuinely favour different schemes."""
        from repro.engine.shards import ShardedDataset

        rng = np.random.default_rng(5)
        sparse = rng.normal(size=(90, 20)) * (rng.random((90, 20)) < 0.05)
        dense = rng.normal(size=(90, 20))
        labels = (rng.random(90) < 0.5).astype(np.float64)
        batches = [(sparse, labels), (dense, labels), (sparse.copy(), labels)]
        directory = tmp_path_factory.mktemp("auto-shards")
        created = ShardedDataset.create(directory, batches, "auto", executor="serial")
        return directory, batches, created

    def test_auto_trainer_trains_over_mixed_shards(self, mixed_dataset, config):
        from repro.engine.shards import ShardedDataset

        directory, batches, created = mixed_dataset
        assert created.is_mixed  # the fixture data must actually split

        trainer = OutOfCoreTrainer("auto", config, budget_ratio=0.5)
        trainer.attach(ShardedDataset.open(directory))
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        report = trainer.train(model)
        assert len(report.history.epoch_losses) == config.epochs
        assert np.all(np.isfinite(model.get_parameters()))

    def test_mixed_training_matches_per_batch_reference(self, mixed_dataset, config):
        """Per-shard decoding is exact: same updates as in-memory batches."""
        from repro.engine.shards import ShardedDataset

        directory, batches, _ = mixed_dataset
        trainer = OutOfCoreTrainer("auto", config, budget_ratio=10.0)
        trainer.attach(ShardedDataset.open(directory))
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        trainer.train(model)

        reference = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        for _ in range(config.epochs):
            for features, labels in batches:
                reference.gradient_step(features, labels, config.learning_rate)
        np.testing.assert_allclose(
            model.get_parameters(), reference.get_parameters(), rtol=1e-9, atol=1e-12
        )

    def test_pinned_trainer_rejects_mixed_shards(self, mixed_dataset, config):
        from repro.engine.shards import ShardedDataset

        directory, _, _ = mixed_dataset
        pinned = OutOfCoreTrainer("TOC", config)
        with pytest.raises(ValueError, match="pinned to 'TOC'"):
            pinned.attach(ShardedDataset.open(directory))

    def test_auto_fit_and_checkpoint_record_scheme_mix(self, tmp_path, dataset, config):
        from repro.serve.checkpoint import ModelRegistry

        features, labels = dataset
        trainer = OutOfCoreTrainer("auto", config, budget_ratio=2.0, executor="serial")
        model = LogisticRegressionModel(features.shape[1], seed=0)
        trainer.fit(
            model, features, labels, tmp_path / "shards",
            checkpoint_to=tmp_path / "registry",
        )
        checkpoint = ModelRegistry(tmp_path / "registry").load("latest")
        meta = checkpoint.dataset_meta
        assert meta["requested_scheme"] == "auto"
        assert sum(meta["scheme_counts"].values()) == len(trainer.dataset)
        assert checkpoint.scheme_name == trainer.dataset.scheme_name

    def test_auto_bismarck_session_over_mixed_shards(self, mixed_dataset, config):
        from repro.engine.shards import ShardedDataset

        directory, batches, _ = mixed_dataset
        trainer = OutOfCoreTrainer("auto", config, budget_ratio=10.0)
        trainer.attach(ShardedDataset.open(directory))
        session = trainer.bismarck_session()
        model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
        report = session.train(model, epochs=2, learning_rate=0.3)
        assert np.isfinite(report.final_loss)


class TestReportAndSchemeGuards:
    def test_attach_rejects_mismatched_scheme(self, tmp_path, dataset, config):
        from repro.engine.shards import ShardedDataset

        features, labels = dataset
        csr_trainer = OutOfCoreTrainer("CSR", config, executor="serial")
        csr_trainer.shard(features, labels, tmp_path)

        toc_trainer = OutOfCoreTrainer("TOC", config)
        with pytest.raises(ValueError, match="encoded with 'CSR'"):
            toc_trainer.attach(ShardedDataset.open(tmp_path))

    def test_unknown_scheme_rejected_at_construction(self, config):
        with pytest.raises(KeyError):
            OutOfCoreTrainer("LZ77", config)

    def test_report_stats_are_a_snapshot(self, tmp_path, dataset, config):
        features, labels = dataset
        trainer = OutOfCoreTrainer("TOC", config, budget_ratio=10.0, executor="serial")
        trainer.shard(features, labels, tmp_path)

        first = trainer.train(LogisticRegressionModel(features.shape[1], seed=0))
        hits_after_first = first.pool_stats.hits
        second = trainer.train(LogisticRegressionModel(features.shape[1], seed=0))

        assert first.pool_stats.hits == hits_after_first  # untouched by the rerun
        assert second.pool_stats.hits > hits_after_first  # warm cache kept counting
