"""Manifest format migration: v1 single-scheme directories keep working.

PR 1 wrote manifests with ``format_version: 1`` and one dataset-wide
``"scheme"`` key; the per-shard format (v2) must read those unchanged — same
shards, same decoder, bit-identical training — because shard directories
outlive the code that wrote them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.registry import DATASET_PROFILES
from repro.engine.shards import MANIFEST_NAME, ShardedDataset
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig


@pytest.fixture(scope="module")
def batches():
    features, labels = DATASET_PROFILES["census"].classification(240, seed=7)
    split = np.array_split(np.arange(features.shape[0]), 4)
    return [(features[idx], labels[idx]) for idx in split]


def downgrade_manifest_to_v1(directory) -> None:
    """Rewrite a v2 manifest exactly as the PR 1 code serialised it."""
    path = directory / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    assert manifest["format_version"] == 2
    schemes = {row.pop("scheme") for row in manifest["shards"]}
    assert len(schemes) == 1, "v1 can only describe single-scheme directories"
    v1 = {
        "format_version": 1,
        "scheme": schemes.pop(),
        "encode_seconds": manifest["encode_seconds"],
        "encode_executor": manifest["encode_executor"],
        "shards": manifest["shards"],
    }
    path.write_text(json.dumps(v1, indent=2))


class TestManifestMigration:
    def test_v1_manifest_loads_with_per_shard_schemes(self, tmp_path, batches):
        ShardedDataset.create(tmp_path, batches, "TOC", executor="serial")
        downgrade_manifest_to_v1(tmp_path)

        dataset = ShardedDataset.open(tmp_path)
        assert dataset.scheme_name == "TOC"
        assert not dataset.is_mixed
        assert all(shard.scheme == "TOC" for shard in dataset.shards)
        for batch_id, (features, labels) in enumerate(batches):
            np.testing.assert_allclose(dataset.decode(batch_id).to_dense(), features)
            np.testing.assert_array_equal(dataset.labels_for(batch_id), labels)

    def test_v1_and_v2_train_identically(self, tmp_path, batches):
        """Same shards, different manifest generation: identical parameters."""
        v2_dir, v1_dir = tmp_path / "v2", tmp_path / "v1"
        ShardedDataset.create(v2_dir, batches, "TOC", executor="serial")
        ShardedDataset.create(v1_dir, batches, "TOC", executor="serial")
        downgrade_manifest_to_v1(v1_dir)

        config = GradientDescentConfig(batch_size=60, epochs=2, learning_rate=0.3)
        parameters = []
        for directory in (v2_dir, v1_dir):
            trainer = OutOfCoreTrainer("TOC", config, budget_ratio=0.5)
            trainer.attach(ShardedDataset.open(directory))
            model = LogisticRegressionModel(batches[0][0].shape[1], seed=0)
            trainer.train(model)
            parameters.append(model.get_parameters())
        np.testing.assert_array_equal(parameters[0], parameters[1])

    def test_unknown_format_version_rejected(self, tmp_path, batches):
        ShardedDataset.create(tmp_path, batches, "TOC", executor="serial")
        path = tmp_path / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported shard format"):
            ShardedDataset.open(tmp_path)
