"""Tests for the read-ahead prefetch iterator."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.prefetch import prefetch_iter


class TestOrdering:
    def test_preserves_order(self):
        out = list(prefetch_iter(lambda i: i * i, range(10), depth=3))
        assert out == [i * i for i in range(10)]

    def test_depth_larger_than_sequence(self):
        assert list(prefetch_iter(lambda i: i, range(2), depth=8)) == [0, 1]

    def test_zero_depth_degenerates_to_map(self):
        assert list(prefetch_iter(lambda i: -i, range(4), depth=0)) == [0, -1, -2, -3]

    def test_empty_keys(self):
        assert list(prefetch_iter(lambda i: i, [], depth=2)) == []

    def test_reads_ahead_of_the_consumer(self):
        fetched: list[int] = []
        iterator = prefetch_iter(fetched.append, range(10), depth=3)
        next(iterator)
        # While the consumer holds result 0, the window must already cover
        # the next `depth` keys (3 submitted up-front + 1 refill after yield).
        deadline = time.monotonic() + 2.0
        while len(fetched) < 4 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert len(fetched) >= 4
        iterator.close()


class TestExceptionPropagation:
    def test_fetch_error_reaches_the_consumer(self):
        def fetch(key):
            if key == 3:
                raise OSError("shard file vanished")
            return key

        iterator = prefetch_iter(fetch, range(6), depth=2)
        with pytest.raises(OSError, match="shard file vanished"):
            list(iterator)

    def test_results_before_the_error_still_arrive(self):
        def fetch(key):
            if key == 2:
                raise ValueError("bad batch")
            return key * 10

        iterator = prefetch_iter(fetch, range(5), depth=2)
        assert next(iterator) == 0
        assert next(iterator) == 10
        with pytest.raises(ValueError, match="bad batch"):
            next(iterator)

    def test_error_with_zero_depth(self):
        def fetch(key):
            raise RuntimeError("decode failed")

        with pytest.raises(RuntimeError, match="decode failed"):
            next(prefetch_iter(fetch, range(3), depth=0))

    def test_error_does_not_leak_worker_threads(self):
        before = threading.active_count()

        def fetch(key):
            raise RuntimeError("boom")

        for _ in range(5):
            with pytest.raises(RuntimeError):
                list(prefetch_iter(fetch, range(4), depth=2))
        deadline = time.monotonic() + 2.0
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before


class TestEarlyAbandonment:
    def test_early_break_does_not_hang(self):
        for value in prefetch_iter(lambda i: i, range(100), depth=4):
            if value == 3:
                break
        assert value == 3

    def test_no_fetches_start_after_close(self):
        fetched: list[int] = []
        lock = threading.Lock()

        def fetch(key):
            with lock:
                fetched.append(key)
            time.sleep(0.002)
            return key

        iterator = prefetch_iter(fetch, range(100), depth=4)
        next(iterator)
        next(iterator)
        iterator.close()  # shuts the executor down, cancelling queued fetches
        with lock:
            snapshot = len(fetched)
        time.sleep(0.05)
        assert len(fetched) == snapshot
        assert snapshot < 100

    def test_abandoned_iterator_is_collectable_without_consuming(self):
        started = threading.Event()

        def fetch(key):
            started.set()
            return key

        iterator = prefetch_iter(fetch, range(50), depth=2)
        next(iterator)
        assert started.is_set()
        del iterator  # generator finalizer must run the shutdown path

    def test_close_before_first_next_is_safe(self):
        iterator = prefetch_iter(lambda i: i, range(10), depth=2)
        iterator.close()
        with pytest.raises(StopIteration):
            next(iterator)
