"""Parallel compaction: executor fan-out and the ``max_shards`` pass budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset
from repro.data.registry import DATASET_PROFILES
from repro.engine.compact import fsck_dataset


@pytest.fixture(scope="module")
def census():
    return DATASET_PROFILES["census"].classification(400, seed=7)


@pytest.fixture()
def drifted(tmp_path, census):
    """A directory whose every shard re-advises away from DEN."""
    features, labels = census
    return Dataset.create(
        tmp_path / "den", features, labels, scheme="DEN", batch_size=100,
        executor="serial",
    )


class TestMaxShardsBudget:
    def test_budget_defers_excess_shards(self, drifted):
        report = drifted.compact(max_shards=2, executor="serial")
        assert report.n_reencoded == 2
        assert report.deferred == 2
        # The untouched shards stay DEN until a later pass.
        schemes = [s.scheme for s in drifted.sharded.shards]
        assert schemes.count("DEN") == 2

    def test_budgeted_passes_converge(self, drifted):
        first = drifted.compact(max_shards=2, executor="serial")
        second = drifted.compact(max_shards=2, executor="serial")
        third = drifted.compact(executor="serial")
        assert (first.n_reencoded, first.deferred) == (2, 2)
        assert (second.n_reencoded, second.deferred) == (2, 0)
        assert not third.changed
        assert all(s.scheme != "DEN" for s in drifted.sharded.shards)

    def test_zero_budget_is_an_advise_only_pass(self, drifted):
        report = drifted.compact(max_shards=0, executor="serial")
        assert report.n_reencoded == 0
        assert report.deferred == 4
        assert all(s.scheme == "DEN" for s in drifted.sharded.shards)

    def test_negative_budget_rejected(self, drifted):
        with pytest.raises(ValueError, match="max_shards"):
            drifted.compact(max_shards=-1)

    def test_budgeted_pass_leaves_directory_consistent(self, drifted):
        before = np.vstack([m.to_dense() for m, _ in drifted.batches()])
        drifted.compact(max_shards=1, executor="serial")
        assert fsck_dataset(drifted.sharded, remove=False).clean
        reopened = Dataset.open(drifted.path)
        decoded = np.vstack([m.to_dense() for m, _ in reopened.batches()])
        np.testing.assert_allclose(decoded, before)


class TestExecutors:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_every_executor_produces_identical_results(
        self, tmp_path, census, executor
    ):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / f"den-{executor}", features, labels, scheme="DEN",
            batch_size=100, executor="serial",
        )
        before = np.vstack([m.to_dense() for m, _ in dataset.batches()])
        report = dataset.compact(executor=executor, workers=2)
        assert report.n_reencoded == 4
        assert report.executor == executor
        reopened = Dataset.open(dataset.path)
        decoded = np.vstack([m.to_dense() for m, _ in reopened.batches()])
        np.testing.assert_allclose(decoded, before)

    def test_auto_resolves_to_a_known_kind(self, drifted):
        report = drifted.compact(executor="auto")
        assert report.executor in ("serial", "thread", "process")
        assert report.n_reencoded == 4

    def test_unknown_executor_rejected(self, drifted):
        with pytest.raises(ValueError):
            drifted.compact(executor="gpu")

    def test_noop_pass_reports_serial(self, drifted):
        drifted.compact(executor="process")
        report = drifted.compact(executor="process")
        assert not report.changed
        assert report.executor == "serial"
