"""Tests for the shard encode pipeline and the on-disk shard store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.compression.registry import get_scheme
from repro.data.registry import DATASET_PROFILES
from repro.engine.encode import (
    AUTO_SCHEME,
    encode_batches,
    resolve_executor,
    resolve_scheme_name,
    resolve_workers,
)
from repro.engine.shards import (
    MANIFEST_NAME,
    MIXED_SCHEME,
    ShardedDataset,
    read_generation,
)
from repro.storage.buffer_pool import BufferPool


@pytest.fixture(scope="module")
def small_batches():
    features, labels = DATASET_PROFILES["census"].classification(240, seed=7)
    split = np.array_split(np.arange(features.shape[0]), 4)
    return [(features[idx], labels[idx]) for idx in split]


@pytest.fixture(scope="module")
def mixed_batches():
    """Batches whose densities differ enough that one scheme cannot win all."""
    rng = np.random.default_rng(42)
    sparse = rng.normal(size=(80, 24)) * (rng.random((80, 24)) < 0.05)
    dense = rng.normal(size=(80, 24))
    labels = np.zeros(80)
    return [(sparse, labels), (dense, labels), (sparse * 2.0, labels)]


class TestEncodePipeline:
    def test_serial_encode_round_trips(self, small_batches):
        encoded = encode_batches([x for x, _ in small_batches], "TOC", executor="serial")
        scheme = get_scheme("TOC")
        for enc, (features, _) in zip(encoded, small_batches):
            decoded = scheme.decompress_bytes(enc.payload).to_dense()
            np.testing.assert_allclose(decoded, features)

    def test_thread_and_serial_payloads_identical(self, small_batches):
        feats = [x for x, _ in small_batches]
        serial = encode_batches(feats, "TOC", executor="serial")
        threaded = encode_batches(feats, "TOC", workers=2, executor="thread")
        assert [e.payload for e in serial] == [e.payload for e in threaded]
        assert [e.batch_id for e in threaded] == list(range(len(feats)))

    def test_process_payloads_identical(self, small_batches):
        feats = [x for x, _ in small_batches]
        serial = encode_batches(feats, "TOC", executor="serial")
        procs = encode_batches(feats, "TOC", workers=2, executor="process")
        assert [e.payload for e in serial] == [e.payload for e in procs]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            encode_batches([], "TOC")

    def test_bad_executor_rejected(self, small_batches):
        with pytest.raises(ValueError):
            encode_batches([small_batches[0][0]], "TOC", executor="gpu")

    def test_worker_resolution(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)
        assert resolve_executor("serial", 8) == "serial"
        assert resolve_executor("auto", 1) == "serial"


class TestAutoSchemeEncode:
    def test_fixed_names_pass_through(self, mixed_batches):
        assert resolve_scheme_name("TOC", mixed_batches[0][0]) == "TOC"
        assert resolve_scheme_name("DEN", mixed_batches[1][0]) == "DEN"

    def test_auto_resolves_per_batch(self, mixed_batches):
        sparse, dense = mixed_batches[0][0], mixed_batches[1][0]
        assert resolve_scheme_name(AUTO_SCHEME, sparse) != resolve_scheme_name(
            AUTO_SCHEME, dense
        )

    def test_auto_encode_records_chosen_schemes(self, mixed_batches):
        encoded = encode_batches(
            [x for x, _ in mixed_batches], AUTO_SCHEME, executor="serial"
        )
        schemes = [e.scheme for e in encoded]
        assert AUTO_SCHEME not in schemes  # every shard resolved to a real scheme
        assert len(set(schemes)) > 1  # the mix genuinely splits
        # Each payload round-trips through the scheme recorded for it.
        for enc, (features, _) in zip(encoded, mixed_batches):
            decoded = get_scheme(enc.scheme).decompress_bytes(enc.payload).to_dense()
            np.testing.assert_allclose(decoded, features)

    def test_auto_is_deterministic_across_executors(self, mixed_batches):
        feats = [x for x, _ in mixed_batches]
        serial = encode_batches(feats, AUTO_SCHEME, executor="serial")
        threaded = encode_batches(feats, AUTO_SCHEME, workers=2, executor="thread")
        assert [e.scheme for e in serial] == [e.scheme for e in threaded]
        assert [e.payload for e in serial] == [e.payload for e in threaded]

    def test_explicit_per_batch_schemes(self, mixed_batches):
        feats = [x for x, _ in mixed_batches]
        encoded = encode_batches(feats, ["TOC", "DEN", "CSR"], executor="serial")
        assert [e.scheme for e in encoded] == ["TOC", "DEN", "CSR"]

    def test_per_batch_scheme_count_mismatch_rejected(self, mixed_batches):
        feats = [x for x, _ in mixed_batches]
        with pytest.raises(ValueError, match="scheme names"):
            encode_batches(feats, ["TOC"], executor="serial")


class TestShardedDataset:
    def test_create_open_round_trip(self, tmp_path, small_batches):
        created = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        reopened = ShardedDataset.open(tmp_path)
        assert reopened.scheme_name == "TOC"
        assert len(reopened) == len(small_batches)
        assert reopened.payload_sizes() == created.payload_sizes()
        assert reopened.n_examples == sum(x.shape[0] for x, _ in small_batches)

        scheme = get_scheme("TOC")
        for batch_id, (features, labels) in enumerate(small_batches):
            decoded = scheme.decompress_bytes(reopened.read_payload(batch_id)).to_dense()
            np.testing.assert_allclose(decoded, features)
            np.testing.assert_array_equal(reopened.labels_for(batch_id), labels)

    def test_physical_bytes_include_fudge_factor(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        assert dataset.physical_bytes() >= dataset.total_payload_bytes()

    def test_open_missing_directory_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedDataset.open(tmp_path / "nope")

    def test_attach_serves_bytes_through_pool(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        pool = BufferPool(budget_bytes=10 * dataset.total_payload_bytes())
        dataset.attach(pool)
        for batch_id in range(len(dataset)):
            assert pool.read(batch_id) == dataset.read_payload(batch_id)
        # Everything fits: the second epoch is all hits.
        for batch_id in range(len(dataset)):
            pool.read(batch_id)
        assert pool.stats.hits == len(dataset)
        assert pool.stats.misses == len(dataset)

    def test_pool_smaller_than_shard_set_evicts_and_rereads(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        sizes = dataset.payload_sizes()
        # Room for roughly two shards: the cyclic scan must keep missing.
        pool = BufferPool(budget_bytes=sizes[0] + sizes[1] + 1)
        dataset.attach(pool)
        epochs = 3
        for _ in range(epochs):
            for batch_id in range(len(dataset)):
                assert pool.read(batch_id) == dataset.read_payload(batch_id)
        assert pool.stats.evictions > 0
        assert pool.stats.misses > len(dataset)  # later epochs still miss
        assert pool.cached_bytes <= pool.budget_bytes
        assert pool.stats.bytes_read_from_disk > dataset.total_payload_bytes()

    def test_as_blob_table_reads_decoded_batches(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        pool = BufferPool(budget_bytes=10 * dataset.total_payload_bytes())
        table = dataset.as_blob_table(pool)
        assert len(table) == len(dataset)
        for batch_id, (compressed, labels) in enumerate(table.iter_batches()):
            np.testing.assert_allclose(compressed.to_dense(), small_batches[batch_id][0])
            np.testing.assert_array_equal(labels, small_batches[batch_id][1])

    def test_manifest_records_scheme_per_shard(self, tmp_path, small_batches):
        import json

        ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["format_version"] == 2
        assert manifest["scheme"] == "TOC"
        assert all(row["scheme"] == "TOC" for row in manifest["shards"])

    def test_auto_create_open_round_trip(self, tmp_path, mixed_batches):
        created = ShardedDataset.create(tmp_path, mixed_batches, AUTO_SCHEME, executor="serial")
        assert created.is_mixed
        assert created.scheme_name == MIXED_SCHEME
        assert sum(created.scheme_counts().values()) == len(mixed_batches)

        reopened = ShardedDataset.open(tmp_path)
        assert reopened.requested_scheme == AUTO_SCHEME
        assert [s.scheme for s in reopened.shards] == [s.scheme for s in created.shards]
        for batch_id, (features, _) in enumerate(mixed_batches):
            np.testing.assert_allclose(reopened.decode(batch_id).to_dense(), features)

    def test_scheme_for_caches_instances(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        assert dataset.scheme_for(0) is dataset.scheme_for(1)
        assert dataset.scheme_for(0).name == "TOC"

    def test_as_blob_table_resolves_mixed_schemes(self, tmp_path, mixed_batches):
        dataset = ShardedDataset.create(tmp_path, mixed_batches, AUTO_SCHEME, executor="serial")
        pool = BufferPool(budget_bytes=10 * dataset.total_payload_bytes())
        table = dataset.as_blob_table(pool)
        for batch_id, (compressed, _) in enumerate(table.iter_batches()):
            assert compressed.scheme_name == dataset.shards[batch_id].scheme
            np.testing.assert_allclose(compressed.to_dense(), mixed_batches[batch_id][0])

    def test_as_blob_table_scheme_parameter_removed(self, tmp_path, small_batches):
        # The parameter was deprecated for one release and is now gone: the
        # manifest is the only source of per-shard decoders.
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        pool = BufferPool(budget_bytes=10 * dataset.total_payload_bytes())
        with pytest.raises(TypeError):
            dataset.as_blob_table(pool, get_scheme("TOC"))

    def test_append_extends_manifest_and_labels(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        n_before = len(dataset)
        rng = np.random.default_rng(9)
        extra_x = rng.random((40, small_batches[0][0].shape[1]))
        extra_y = rng.integers(0, 2, size=40).astype(np.float64)
        added = dataset.append([(extra_x, extra_y)], executor="serial")

        assert [info.batch_id for info in added] == [n_before]
        assert added[0].scheme == "TOC"  # default: the dataset's requested scheme
        reopened = ShardedDataset.open(tmp_path)
        assert len(reopened) == n_before + 1
        np.testing.assert_allclose(reopened.decode(n_before).to_dense(), extra_x)
        np.testing.assert_array_equal(reopened.labels_for(n_before), extra_y)

    def test_append_rejects_mismatched_width(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        bad = np.zeros((4, small_batches[0][0].shape[1] + 1))
        with pytest.raises(ValueError, match="columns"):
            dataset.append([(bad, np.zeros(4))], executor="serial")

    def test_stage_shard_publishes_on_manifest_swap(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        dense = dataset.decode(0).to_dense()
        payload = get_scheme("DEN").compress(dense).to_bytes()
        info = dataset.stage_shard(0, payload, "DEN")
        assert info.nbytes == len(payload)
        assert info.filename == "shard-00000.g1.bin"

        # Crash window: the staged file exists but the manifest was not yet
        # swapped — readers still decode the OLD file with the OLD scheme.
        crashed = ShardedDataset.open(tmp_path)
        assert crashed.shards[0].scheme == "TOC"
        np.testing.assert_allclose(crashed.decode(0).to_dense(), dense)

        dataset.rewrite_manifest()
        reopened = ShardedDataset.open(tmp_path)
        assert reopened.shards[0].scheme == "DEN"
        assert reopened.shards[0].filename == "shard-00000.g1.bin"
        np.testing.assert_allclose(reopened.decode(0).to_dense(), dense)

    def test_stage_shard_generation_counter_increments(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        dense = dataset.decode(0).to_dense()
        dataset.stage_shard(0, get_scheme("DEN").compress(dense).to_bytes(), "DEN")
        info = dataset.stage_shard(0, get_scheme("CSR").compress(dense).to_bytes(), "CSR")
        assert info.filename == "shard-00000.g2.bin"


class TestManifestGeneration:
    def test_create_publishes_generation_one(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        assert dataset.generation == 1
        assert read_generation(tmp_path) == 1
        assert ShardedDataset.open(tmp_path).generation == 1

    def test_every_manifest_swap_bumps_the_generation(self, tmp_path, small_batches):
        dataset = ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        before = dataset.generation
        dataset.append([small_batches[0]], executor="serial")
        assert dataset.generation == before + 1
        assert read_generation(tmp_path) == before + 1
        dataset.rewrite_manifest()
        assert read_generation(tmp_path) == before + 2

    def test_read_generation_without_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_generation(tmp_path)

    def test_pre_generation_manifest_reads_as_zero(self, tmp_path, small_batches):
        ShardedDataset.create(tmp_path, small_batches, "TOC", executor="serial")
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        del manifest["generation"]
        manifest_path.write_text(json.dumps(manifest))
        assert read_generation(tmp_path) == 0
        assert ShardedDataset.open(tmp_path).generation == 0
