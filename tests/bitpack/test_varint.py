"""Unit and property tests for the varint codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.varint import decode_varints, encode_varints


class TestVarint:
    def test_roundtrip_small(self):
        values = np.array([0, 1, 127, 128, 255, 300, 16384])
        assert np.array_equal(decode_varints(encode_varints(values)), values)

    def test_single_byte_for_small_values(self):
        assert len(encode_varints(np.array([0]))) == 1
        assert len(encode_varints(np.array([127]))) == 1
        assert len(encode_varints(np.array([128]))) == 2

    def test_empty(self):
        assert decode_varints(encode_varints(np.array([], dtype=np.int64))).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varints(np.array([-1]))

    def test_count_limits_decoding(self):
        raw = encode_varints(np.array([1, 2, 3, 4]))
        assert decode_varints(raw, count=2).tolist() == [1, 2]

    def test_count_beyond_stream_rejected(self):
        raw = encode_varints(np.array([1, 2]))
        with pytest.raises(ValueError):
            decode_varints(raw, count=5)

    def test_truncated_stream_rejected(self):
        raw = encode_varints(np.array([2**20]))
        with pytest.raises(ValueError):
            decode_varints(raw[:-1])

    def test_large_values(self):
        values = np.array([2**40, 2**50, 2**62])
        assert np.array_equal(decode_varints(encode_varints(values)), values)

    def test_max_int64_roundtrips(self):
        values = np.array([2**63 - 1], dtype=np.int64)
        raw = encode_varints(values)
        assert len(raw) == 9  # exactly MAX_VARINT_BYTES
        assert np.array_equal(decode_varints(raw), values)

    def test_overlong_varint_rejected(self):
        # Ten continuation bytes would shift past bit 63 — corrupt stream.
        with pytest.raises(ValueError, match="overflows int64"):
            decode_varints(b"\xff" * 10 + b"\x01")


class TestTruncatedTail:
    """A truncated trailing varint is corruption even when ``count`` is met.

    ``decode_varints`` validates the *whole* buffer: the bytes after the
    ``count``-th value must themselves be complete varints, otherwise a
    silently-truncated shard file would decode without complaint.
    """

    def test_truncated_tail_rejected_despite_count(self):
        raw = encode_varints(np.array([1, 2, 2**20]))
        with pytest.raises(ValueError, match="truncated"):
            decode_varints(raw[:-1], count=2)

    def test_lone_continuation_byte_tail_rejected(self):
        raw = encode_varints(np.array([1, 2])) + b"\x80"
        with pytest.raises(ValueError, match="truncated"):
            decode_varints(raw, count=2)

    def test_complete_tail_still_accepted(self):
        raw = encode_varints(np.array([1, 2, 3, 4]))
        assert decode_varints(raw, count=2).tolist() == [1, 2]

    def test_overlong_tail_rejected_despite_count(self):
        raw = encode_varints(np.array([1, 2])) + b"\xff" * 10 + b"\x01"
        with pytest.raises(ValueError, match="overflows int64"):
            decode_varints(raw, count=2)


class TestVarintProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(decode_varints(encode_varints(arr)), arr)

    @given(st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_small_values_one_byte_each(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert len(encode_varints(arr)) == arr.size

    @given(
        st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_truncation_of_final_multibyte_varint_rejected(self, values, cut):
        """Fuzz: chopping inside the last varint always raises."""
        arr = np.asarray(values, dtype=np.int64)
        arr[-1] = max(int(arr[-1]), 128)  # force a multi-byte final varint
        raw = encode_varints(arr)
        widths = [len(encode_varints(arr[i : i + 1])) for i in range(arr.size)]
        cut = min(cut, widths[-1] - 1)
        with pytest.raises(ValueError):
            decode_varints(raw[: len(raw) - cut], count=arr.size - 1)
