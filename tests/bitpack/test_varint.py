"""Unit and property tests for the varint codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.varint import decode_varints, encode_varints


class TestVarint:
    def test_roundtrip_small(self):
        values = np.array([0, 1, 127, 128, 255, 300, 16384])
        assert np.array_equal(decode_varints(encode_varints(values)), values)

    def test_single_byte_for_small_values(self):
        assert len(encode_varints(np.array([0]))) == 1
        assert len(encode_varints(np.array([127]))) == 1
        assert len(encode_varints(np.array([128]))) == 2

    def test_empty(self):
        assert decode_varints(encode_varints(np.array([], dtype=np.int64))).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varints(np.array([-1]))

    def test_count_limits_decoding(self):
        raw = encode_varints(np.array([1, 2, 3, 4]))
        assert decode_varints(raw, count=2).tolist() == [1, 2]

    def test_count_beyond_stream_rejected(self):
        raw = encode_varints(np.array([1, 2]))
        with pytest.raises(ValueError):
            decode_varints(raw, count=5)

    def test_truncated_stream_rejected(self):
        raw = encode_varints(np.array([2**20]))
        with pytest.raises(ValueError):
            decode_varints(raw[:-1])

    def test_large_values(self):
        values = np.array([2**40, 2**50, 2**62])
        assert np.array_equal(decode_varints(encode_varints(values)), values)


class TestVarintProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(decode_varints(encode_varints(arr)), arr)

    @given(st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_small_values_one_byte_each(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert len(encode_varints(arr)) == arr.size
