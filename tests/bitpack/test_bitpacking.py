"""Unit and property tests for the bit-packing codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.bitpacking import (
    PackedIntArray,
    bytes_per_integer,
    pack_integers,
    unpack_integers,
)


class TestBytesPerInteger:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (0, 1),
            (1, 1),
            (255, 1),
            (256, 2),
            (65535, 2),
            (65536, 3),
            (2**24 - 1, 3),
            (2**24, 4),
            (2**32 - 1, 4),
        ],
    )
    def test_width_boundaries(self, value, expected):
        assert bytes_per_integer(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_integer(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_integer(2**32)


class TestPackUnpack:
    @pytest.mark.parametrize("width_max", [200, 60000, 2**20, 2**30])
    def test_roundtrip_each_width(self, width_max):
        rng = np.random.default_rng(0)
        values = rng.integers(0, width_max, size=100)
        packed = pack_integers(values)
        assert np.array_equal(unpack_integers(packed), values)

    def test_empty_array(self):
        packed = pack_integers(np.array([], dtype=np.int64))
        assert packed.count == 0
        assert unpack_integers(packed).size == 0

    def test_all_zeros_use_one_byte(self):
        packed = pack_integers(np.zeros(10, dtype=np.int64))
        assert packed.width == 1
        assert len(packed.data) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_integers(np.array([1, -2, 3]))

    def test_uint24_payload_is_three_bytes_each(self):
        values = np.array([2**16, 2**20, 2**24 - 1])
        packed = pack_integers(values)
        assert packed.width == 3
        assert len(packed.data) == 9

    def test_serialisation_roundtrip(self):
        values = np.array([0, 5, 300, 70000, 2**24 + 7])
        packed = pack_integers(values)
        raw = packed.to_bytes()
        restored, consumed = PackedIntArray.from_bytes(raw)
        assert consumed == len(raw)
        assert np.array_equal(restored.unpack(), values)

    def test_serialisation_with_trailing_bytes(self):
        values = np.array([1, 2, 3])
        raw = pack_integers(values).to_bytes() + b"extra"
        restored, consumed = PackedIntArray.from_bytes(raw)
        assert consumed == len(raw) - len(b"extra")
        assert np.array_equal(restored.unpack(), values)

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            PackedIntArray.from_bytes(b"\x01\x00")

    def test_truncated_payload_rejected(self):
        raw = pack_integers(np.arange(10)).to_bytes()
        with pytest.raises(ValueError):
            PackedIntArray.from_bytes(raw[:-3])

    def test_unsupported_width_rejected(self):
        header = np.array([1, 7], dtype="<u4").tobytes()
        with pytest.raises(ValueError):
            PackedIntArray.from_bytes(header + b"\x00" * 7)

    def test_nbytes_counts_header(self):
        packed = pack_integers(np.arange(4))
        assert packed.nbytes == len(packed.data) + 8


class TestBitpackingProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=200)
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        packed = pack_integers(np.asarray(values, dtype=np.int64))
        assert np.array_equal(unpack_integers(packed), np.asarray(values, dtype=np.int64))

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_width_is_minimal(self, values):
        packed = pack_integers(np.asarray(values, dtype=np.int64))
        assert packed.width == bytes_per_integer(max(values))

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_serialisation_roundtrip_property(self, values):
        packed = pack_integers(np.asarray(values, dtype=np.int64))
        restored, _ = PackedIntArray.from_bytes(packed.to_bytes())
        assert np.array_equal(restored.unpack(), np.asarray(values, dtype=np.int64))

    @given(
        st.lists(
            st.integers(min_value=2**16, max_value=2**24 - 1), min_size=1, max_size=100
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_uint24_fuzz_roundtrip(self, values):
        """Width 3 (uint24) has no native dtype — fuzz it explicitly."""
        arr = np.asarray(values, dtype=np.int64)
        packed = pack_integers(arr)
        assert packed.width == 3
        assert np.array_equal(unpack_integers(packed), arr)
        restored, _ = PackedIntArray.from_bytes(packed.to_bytes())
        assert np.array_equal(restored.unpack(), arr)

    def test_uint24_edge_values_roundtrip(self):
        edges = np.array([2**16, 2**16 + 1, 2**24 - 2, 2**24 - 1], dtype=np.int64)
        packed = pack_integers(edges)
        assert packed.width == 3
        restored, consumed = PackedIntArray.from_bytes(packed.to_bytes())
        assert consumed == packed.nbytes
        assert np.array_equal(restored.unpack(), edges)
