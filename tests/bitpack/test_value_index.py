"""Unit and property tests for the value-indexing (dictionary) codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitpack.value_index import ValueIndex, build_value_index


class TestValueIndex:
    def test_roundtrip_simple(self):
        values = np.array([1.1, 2.0, 1.1, 3.5, 2.0, 2.0])
        index = build_value_index(values)
        assert np.array_equal(index.decode(), values)

    def test_dictionary_has_unique_values_in_first_appearance_order(self):
        values = np.array([3.0, 1.0, 3.0, 2.0, 1.0])
        index = build_value_index(values)
        assert index.dictionary.tolist() == [3.0, 1.0, 2.0]

    def test_codes_reference_dictionary(self):
        values = np.array([5.0, 7.0, 5.0])
        index = build_value_index(values)
        assert index.dictionary[index.codes].tolist() == values.tolist()

    def test_empty_input(self):
        index = build_value_index(np.array([]))
        assert index.decode().size == 0
        assert index.dictionary.size == 0

    def test_single_value_repeated(self):
        index = build_value_index(np.full(100, 2.5))
        assert index.dictionary.size == 1
        assert np.array_equal(index.decode(), np.full(100, 2.5))

    def test_nbytes_smaller_than_doubles_when_few_distinct(self):
        values = np.tile(np.array([1.0, 2.0, 3.0]), 100)
        index = build_value_index(values)
        assert index.nbytes < values.size * 8

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError):
            ValueIndex(dictionary=np.array([1.0]), codes=np.array([0, 1]))

    def test_serialisation_roundtrip(self):
        values = np.array([1.5, -2.0, 1.5, 0.25, -2.0])
        index = build_value_index(values)
        restored, consumed = ValueIndex.from_bytes(index.to_bytes())
        assert consumed == len(index.to_bytes())
        assert np.array_equal(restored.decode(), values)

    def test_truncated_dictionary_rejected(self):
        index = build_value_index(np.array([1.0, 2.0, 3.0]))
        raw = index.to_bytes()
        with pytest.raises(ValueError):
            ValueIndex.from_bytes(raw[:-4])


class TestValueIndexProperties:
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=0,
            max_size=300,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.float64)
        index = build_value_index(arr)
        assert np.array_equal(index.decode(), arr)

    @given(
        st.lists(
            st.sampled_from([0.0, 1.0, -1.5, 2.25, 100.0]), min_size=1, max_size=500
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dictionary_size_bounded_by_distinct_count(self, values):
        arr = np.asarray(values, dtype=np.float64)
        index = build_value_index(arr)
        assert index.dictionary.size == np.unique(arr).size

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_serialisation_property(self, values):
        arr = np.asarray(values, dtype=np.float64)
        index = build_value_index(arr)
        restored, _ = ValueIndex.from_bytes(index.to_bytes())
        assert np.array_equal(restored.decode(), arr)
