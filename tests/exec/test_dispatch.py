"""Tests for the unified kernel-dispatch execution layer."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import exec as kernels
from repro.compression.registry import available_schemes, get_scheme

ALL_SCHEMES = available_schemes(include_ablations=True)


@pytest.fixture()
def dense(rng):
    return rng.normal(size=(12, 8)) * (rng.random((12, 8)) < 0.5)


class TestRepresentationDispatch:
    def test_ndarray_passthrough(self, dense, rng):
        v = rng.normal(size=8)
        u = rng.normal(size=12)
        np.testing.assert_allclose(kernels.matvec(dense, v), dense @ v)
        np.testing.assert_allclose(kernels.rmatvec(dense, u), u @ dense)
        np.testing.assert_allclose(kernels.to_dense(dense), dense)

    def test_scipy_sparse_supported(self, dense, rng):
        csr = sp.csr_matrix(dense)
        v = rng.normal(size=8)
        u = rng.normal(size=12)
        np.testing.assert_allclose(kernels.matvec(csr, v), dense @ v)
        np.testing.assert_allclose(kernels.rmatvec(csr, u), u @ dense)
        np.testing.assert_allclose(kernels.to_dense(csr), dense)

    def test_compressed_matrix_supported(self, dense, rng):
        compressed = get_scheme("TOC").compress(dense)
        v = rng.normal(size=8)
        u = rng.normal(size=12)
        m = rng.normal(size=(8, 3))
        k = rng.normal(size=(3, 12))
        np.testing.assert_allclose(kernels.matvec(compressed, v), dense @ v, rtol=1e-9)
        np.testing.assert_allclose(kernels.rmatvec(compressed, u), u @ dense, rtol=1e-9)
        np.testing.assert_allclose(kernels.matmat(compressed, m), dense @ m, rtol=1e-9)
        np.testing.assert_allclose(kernels.rmatmat(compressed, k), k @ dense, rtol=1e-9)
        np.testing.assert_allclose(kernels.to_dense(compressed), dense)

    def test_scale_dispatch(self, dense):
        compressed = get_scheme("CSR").compress(dense)
        np.testing.assert_allclose(
            kernels.to_dense(kernels.scale(compressed, 2.0)), dense * 2.0
        )
        np.testing.assert_allclose(kernels.scale(dense, 2.0), dense * 2.0)

    def test_matmat_and_rmatmat_on_ndarray(self, dense, rng):
        m = rng.normal(size=(8, 4))
        k = rng.normal(size=(4, 12))
        np.testing.assert_allclose(kernels.matmat(dense, m), dense @ m)
        np.testing.assert_allclose(kernels.rmatmat(dense, k), k @ dense)

    def test_duck_typed_object_delegates(self, dense, rng):
        class Duck:
            def matvec(self, v):
                return dense @ v

        v = rng.normal(size=8)
        np.testing.assert_allclose(kernels.matvec(Duck(), v), dense @ v)

    def test_duck_typed_object_missing_kernel_explains(self, dense):
        class OnlyMatvec:
            def matvec(self, v):
                return dense @ v

        with pytest.raises(TypeError, match="rmatvec"):
            kernels.rmatvec(OnlyMatvec(), np.ones(12))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="no kernels registered"):
            kernels.matvec(object(), np.ones(3))

    def test_array_protocol_objects_dispatch_as_arrays(self, dense, rng):
        class ArrayLike:  # e.g. a pandas DataFrame
            def __array__(self, dtype=None):
                return dense if dtype is None else dense.astype(dtype)

        v = rng.normal(size=8)
        np.testing.assert_allclose(kernels.matvec(ArrayLike(), v), dense @ v)
        assert kernels.kernels_for(ArrayLike()).name == "ndarray"

    def test_array_convertible_duck_keeps_its_kernels(self, dense):
        class DuckWithArray:
            def __array__(self, dtype=None):  # pragma: no cover - must not be used
                raise AssertionError("dispatch must prefer the kernel methods")

            def matvec(self, v):
                return dense @ v

        np.testing.assert_allclose(
            kernels.matvec(DuckWithArray(), np.ones(8)), dense @ np.ones(8)
        )

    def test_kernels_for_names_the_representation(self, dense):
        assert kernels.kernels_for(dense).name == "ndarray"
        assert kernels.kernels_for(sp.csr_matrix(dense)).name == "scipy-sparse"
        assert kernels.kernels_for(get_scheme("TOC").compress(dense)).name == "compressed"

    def test_supports_direct_ops(self, dense):
        assert kernels.supports_direct_ops(dense)
        assert kernels.supports_direct_ops(get_scheme("TOC").compress(dense))
        assert not kernels.supports_direct_ops(get_scheme("Gzip").compress(dense))


class TestEverySchemeThroughDispatch:
    """One dispatch layer, every registered representation behind it."""

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_matvec_matches_dense(self, scheme_name, dense, rng):
        compressed = get_scheme(scheme_name).compress(dense)
        v = rng.normal(size=8)
        np.testing.assert_allclose(
            kernels.matvec(compressed, v), dense @ v, rtol=1e-9, atol=1e-12
        )

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_row_slice_matches_fancy_indexing(self, scheme_name, dense):
        compressed = get_scheme(scheme_name).compress(dense)
        rows = [11, 0, 3, 3, 7]
        np.testing.assert_allclose(
            kernels.row_slice(compressed, rows), dense[rows], rtol=1e-9, atol=1e-12
        )


class TestRowSlice:
    def test_ndarray_rows_are_copies(self, dense):
        rows = kernels.row_slice(dense, [2, 5])
        rows[:] = -1.0
        assert not np.allclose(dense[[2, 5]], -1.0)

    def test_scipy_sparse_rows(self, dense):
        got = kernels.row_slice(sp.coo_matrix(dense), [1, 4, 1])
        np.testing.assert_allclose(got, dense[[1, 4, 1]])

    def test_empty_selection(self, dense):
        compressed = get_scheme("TOC").compress(dense)
        assert kernels.row_slice(compressed, []).shape == (0, 8)

    @pytest.mark.parametrize("scheme_name", ("DEN", "CSR", "TOC"))
    def test_out_of_range_rejected(self, scheme_name, dense):
        compressed = get_scheme(scheme_name).compress(dense)
        with pytest.raises(IndexError):
            kernels.row_slice(compressed, [0, 12])
        with pytest.raises(IndexError):
            kernels.row_slice(compressed, [-1])

    def test_direct_op_schemes_slice_without_full_decode(self, dense):
        """TOC's row_slice decodes only the selected rows, never to_dense."""
        compressed = get_scheme("TOC").compress(dense)
        calls = []
        original = type(compressed).to_dense

        def spy(self):
            calls.append(1)
            return original(self)

        type(compressed).to_dense = spy
        try:
            kernels.row_slice(compressed, [0, 5])
        finally:
            type(compressed).to_dense = original
        assert not calls


class TestRegisterKernels:
    def test_new_representation_resolves_before_fallback(self, dense):
        class Wrapped:
            def __init__(self, data):
                self.data = data

        from repro.exec.dispatch import _DISPATCH, KernelSet

        kernel_set = KernelSet(
            name="wrapped",
            matvec=lambda m, v: m.data @ v,
            rmatvec=lambda m, v: v @ m.data,
            matmat=lambda m, o: m.data @ o,
            rmatmat=lambda m, o: o @ m.data,
            scale=lambda m, c: Wrapped(m.data * c),
            to_dense=lambda m: m.data,
            row_slice=lambda m, rows: m.data[list(rows)],
        )
        before = len(_DISPATCH)
        kernels.register_kernels(lambda m: isinstance(m, Wrapped), kernel_set)
        try:
            assert kernels.kernels_for(Wrapped(dense)).name == "wrapped"
            np.testing.assert_allclose(kernels.matvec(Wrapped(dense), np.ones(8)), dense @ np.ones(8))
        finally:
            del _DISPATCH[before - 1]
