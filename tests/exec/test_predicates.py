"""Predicate / aggregate expression objects and their textual parsers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.predicates import (
    Aggregate,
    And,
    Compare,
    Not,
    Or,
    parse_aggregate,
    parse_aggregates,
    parse_predicate,
)


class _DenseContext:
    """Minimal evaluation context: compares against a plain ndarray."""

    def __init__(self, dense: np.ndarray):
        self.dense = dense

    def compare(self, col, op, value):
        from repro.exec.predicates import COMPARE_OPS

        return COMPARE_OPS[op](self.dense[:, col], value)


@pytest.fixture()
def dense():
    rng = np.random.default_rng(3)
    return rng.choice([0.0, 1.0, 2.0, 3.5], size=(50, 5))


class TestCompare:
    def test_all_operators(self, dense):
        context = _DenseContext(dense)
        for op, fn in (
            ("==", np.equal),
            ("!=", np.not_equal),
            ("<", np.less),
            ("<=", np.less_equal),
            (">", np.greater),
            (">=", np.greater_equal),
        ):
            got = Compare(2, op, 1.0).evaluate(context)
            np.testing.assert_array_equal(got, fn(dense[:, 2], 1.0))

    def test_column_name_string_coerces(self):
        assert Compare("c4", "==", 1.0).column == 4

    def test_rejects_unknown_operator_and_negative_column(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            Compare(0, "~=", 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            Compare(-1, "==", 1.0)

    def test_columns_reported(self):
        predicate = (Compare(0, ">", 1.0) & Compare(3, "<", 2.0)) | ~Compare(1, "==", 0.0)
        assert predicate.columns() == {0, 1, 3}


class TestCombinators:
    def test_sugar_builds_expected_tree(self):
        predicate = Compare(0, ">", 1.0) & Compare(1, "<", 2.0)
        assert isinstance(predicate, And)
        predicate = Compare(0, ">", 1.0) | Compare(1, "<", 2.0)
        assert isinstance(predicate, Or)
        assert isinstance(~Compare(0, ">", 1.0), Not)

    def test_and_or_need_two_children(self):
        with pytest.raises(ValueError):
            And([Compare(0, ">", 1.0)])
        with pytest.raises(ValueError):
            Or([Compare(0, ">", 1.0)])

    def test_evaluation_matches_numpy(self, dense):
        context = _DenseContext(dense)
        predicate = (Compare(0, "==", 1.0) | Compare(1, ">", 2.0)) & ~Compare(2, "<", 1.0)
        expected = ((dense[:, 0] == 1.0) | (dense[:, 1] > 2.0)) & ~(dense[:, 2] < 1.0)
        np.testing.assert_array_equal(predicate.evaluate(context), expected)


class TestParsePredicate:
    def test_simple_comparison(self):
        predicate = parse_predicate("c2 >= 0.5")
        assert predicate == Compare(2, ">=", 0.5)

    def test_precedence_or_loosest_not_tightest(self, dense):
        context = _DenseContext(dense)
        predicate = parse_predicate("c0 == 1 or c1 > 2 and not c2 < 1")
        expected = (dense[:, 0] == 1.0) | ((dense[:, 1] > 2.0) & ~(dense[:, 2] < 1.0))
        np.testing.assert_array_equal(predicate.evaluate(context), expected)

    def test_parentheses_override(self, dense):
        context = _DenseContext(dense)
        predicate = parse_predicate("(c0 == 1 or c1 > 2) and c2 < 1")
        expected = ((dense[:, 0] == 1.0) | (dense[:, 1] > 2.0)) & (dense[:, 2] < 1.0)
        np.testing.assert_array_equal(predicate.evaluate(context), expected)

    def test_symbol_aliases_and_case(self):
        assert parse_predicate("c0 == 1 && !c1 > 2") == parse_predicate(
            "C0 == 1 AND NOT C1 > 2"
        )
        assert parse_predicate("c0 == 1 || c1 > 2") == parse_predicate("c0 == 1 or c1 > 2")

    def test_scientific_and_negative_literals(self):
        assert parse_predicate("c0 > -1.5e-3") == Compare(0, ">", -1.5e-3)
        assert parse_predicate("c0 <= .5") == Compare(0, "<=", 0.5)

    def test_predicate_passthrough(self):
        built = Compare(0, ">", 1.0)
        assert parse_predicate(built) is built

    @pytest.mark.parametrize(
        "bad", ["", "c0 >", "c0 1.0", ">= 1", "c0 == 1 extra", "(c0 == 1", "x0 == 1"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_predicate(bad)

    def test_str_round_trips(self, dense):
        context = _DenseContext(dense)
        predicate = parse_predicate("c0 == 1 or (c1 > 2 and not c2 < 1)")
        reparsed = parse_predicate(str(predicate))
        np.testing.assert_array_equal(
            predicate.evaluate(context), reparsed.evaluate(context)
        )


class TestAggregates:
    def test_parse_single_specs(self):
        assert parse_aggregate("count") == Aggregate("count")
        assert parse_aggregate("sum:c3") == Aggregate("sum", 3)
        assert parse_aggregate("MEAN:2") == Aggregate("mean", 2)

    def test_parse_clause_forms(self):
        expected = [Aggregate("count"), Aggregate("min", 0), Aggregate("max", 1)]
        assert parse_aggregates("count,min:c0,max:c1") == expected
        assert parse_aggregates(["count", "min:c0", Aggregate("max", 1)]) == expected
        assert parse_aggregates("count") == [Aggregate("count")]

    def test_keys(self):
        assert Aggregate("count").key == "count"
        assert Aggregate("sum", 4).key == "sum(c4)"

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="needs a column"):
            parse_aggregate("sum")
        with pytest.raises(ValueError, match="unknown aggregate"):
            Aggregate("median", 0)
        with pytest.raises(ValueError):
            parse_aggregate("sum:cx")
        with pytest.raises(ValueError, match="empty"):
            parse_aggregates([])
