"""The scan executor vs the dense NumPy reference, across every scheme.

The property this whole layer rides on: for any predicate, any projection,
and any scheme, the scan's output is bit-identical to densifying first and
masking with NumPy — push-down changes the execution strategy, never the
answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import available_schemes, get_scheme
from repro.exec.predicates import COMPARE_OPS, Compare, parse_predicate
from repro.exec.scan import (
    ScanReader,
    register_scan_reader,
    scan_matrix,
    scan_reader_for,
    scan_shards,
)

ALL_SCHEMES = available_schemes()


def quantised(rng, rows=60, cols=7, domain=(0.0, 0.5, 1.0, 2.5)):
    return rng.choice(domain, size=(rows, cols), p=(0.5, 0.2, 0.2, 0.1))


def random_predicate(rng, cols):
    """A random expression tree over random leaves (depth <= 2)."""
    ops = list(COMPARE_OPS)
    values = (0.0, 0.5, 1.0, 2.5, 0.7)

    def leaf():
        return Compare(int(rng.integers(cols)), ops[rng.integers(len(ops))],
                       values[rng.integers(len(values))])

    predicate = leaf()
    for _ in range(int(rng.integers(0, 3))):
        other = leaf()
        kind = rng.integers(3)
        if kind == 0:
            predicate = predicate & other
        elif kind == 1:
            predicate = predicate | other
        else:
            predicate = predicate & ~other
    return predicate


class _EvalDense:
    def __init__(self, dense):
        self.dense = dense

    def compare(self, col, op, value):
        return COMPARE_OPS[op](self.dense[:, col], value)


class TestScanMatrixAllSchemes:
    """Random predicates x every scheme x both strategies == dense NumPy."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_random_predicates_match_dense_reference(self, scheme):
        rng = np.random.default_rng(hash(scheme) % 2**32)
        for trial in range(8):
            dense = quantised(rng)
            matrix = get_scheme(scheme).compress(dense)
            predicate = random_predicate(rng, dense.shape[1])
            expected_mask = predicate.evaluate(_EvalDense(dense))
            for pushdown in (True, False):
                rows, row_ids, _ = scan_matrix(matrix, where=predicate, pushdown=pushdown)
                np.testing.assert_array_equal(row_ids, np.flatnonzero(expected_mask))
                np.testing.assert_array_equal(rows, dense[expected_mask])

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_projection_matches_dense_reference(self, scheme):
        rng = np.random.default_rng(7)
        dense = quantised(rng)
        matrix = get_scheme(scheme).compress(dense)
        rows, row_ids, _ = scan_matrix(matrix, columns=[5, 0], where="c1 >= 0.5")
        mask = dense[:, 1] >= 0.5
        np.testing.assert_array_equal(rows, dense[mask][:, [5, 0]])
        np.testing.assert_array_equal(row_ids, np.flatnonzero(mask))

    @pytest.mark.parametrize("scheme", ("CVI", "DVI"))
    def test_value_indexed_schemes_push_down(self, scheme):
        rng = np.random.default_rng(1)
        matrix = get_scheme(scheme).compress(quantised(rng))
        _, _, pushed = scan_matrix(matrix, where="c0 == 0.5")
        assert pushed

    @pytest.mark.parametrize("scheme", ("DEN", "CSR", "CLA", "Snappy", "Gzip"))
    def test_other_schemes_fall_back(self, scheme):
        rng = np.random.default_rng(1)
        matrix = get_scheme(scheme).compress(quantised(rng))
        _, _, pushed = scan_matrix(matrix, where="c0 == 0.5")
        assert not pushed

    def test_no_predicate_selects_everything(self):
        rng = np.random.default_rng(2)
        dense = quantised(rng)
        matrix = get_scheme("DVI").compress(dense)
        rows, row_ids, _ = scan_matrix(matrix)
        np.testing.assert_array_equal(rows, dense)
        np.testing.assert_array_equal(row_ids, np.arange(dense.shape[0]))

    def test_column_out_of_range(self):
        matrix = get_scheme("DEN").compress(np.zeros((4, 3)))
        with pytest.raises(IndexError, match="column"):
            scan_matrix(matrix, where="c9 == 1")


class TestImplicitZeros:
    """CVI's unstored cells must answer predicates exactly like stored 0.0."""

    @pytest.mark.parametrize("op", sorted(COMPARE_OPS))
    def test_cvi_zero_semantics_every_operator(self, op):
        rng = np.random.default_rng(5)
        dense = quantised(rng, rows=40)
        dense[7] = 0.0  # one fully-implicit row
        matrix = get_scheme("CVI").compress(dense)
        for value in (0.0, 0.5, -1.0):
            predicate = Compare(2, op, value)
            expected = predicate.evaluate(_EvalDense(dense))
            _, row_ids, pushed = scan_matrix(matrix, where=predicate)
            assert pushed
            np.testing.assert_array_equal(row_ids, np.flatnonzero(expected))


class TestScanShards:
    """Multi-shard streams: mixed schemes, limits, aggregates, empties."""

    def _stream(self, dense, schemes, batch):
        shards = []
        for index, start in enumerate(range(0, dense.shape[0], batch)):
            scheme = schemes[index % len(schemes)]
            shards.append(
                (get_scheme(scheme).compress(dense[start : start + batch]), start)
            )
        return shards

    def test_mixed_scheme_manifest_matches_dense(self):
        rng = np.random.default_rng(9)
        dense = quantised(rng, rows=120)
        shards = self._stream(dense, ALL_SCHEMES, batch=15)
        for pushdown in (True, False):
            result = scan_shards(iter(shards), where="c0 == 0.5 or c3 > 1", pushdown=pushdown)
            mask = (dense[:, 0] == 0.5) | (dense[:, 3] > 1)
            np.testing.assert_array_equal(result.rows, dense[mask])
            np.testing.assert_array_equal(result.row_ids, np.flatnonzero(mask))
            assert result.n_rows_scanned == 120
            assert result.n_rows_matched == int(mask.sum())
            assert result.shards_scanned == 8
        assert set(result.schemes) <= set(ALL_SCHEMES)

    def test_random_predicates_over_mixed_shards(self):
        rng = np.random.default_rng(13)
        for _ in range(6):
            dense = quantised(rng, rows=90)
            shards = self._stream(dense, ("DVI", "TOC", "CSR"), batch=30)
            predicate = random_predicate(rng, dense.shape[1])
            expected = predicate.evaluate(_EvalDense(dense))
            result = scan_shards(iter(shards), where=predicate)
            np.testing.assert_array_equal(result.rows, dense[expected])

    def test_aggregates_match_numpy(self):
        rng = np.random.default_rng(21)
        dense = quantised(rng, rows=100)
        shards = self._stream(dense, ("DVI", "CVI", "DEN", "TOC"), batch=25)
        mask = dense[:, 1] >= 0.5
        kept = dense[mask]
        result = scan_shards(
            iter(shards), where="c1 >= 0.5", agg="count,sum:c2,mean:c2,min:c0,max:c3"
        )
        assert result.is_aggregate
        assert result.aggregates["count"] == int(mask.sum())
        assert np.isclose(result.aggregates["sum(c2)"], kept[:, 2].sum())
        assert np.isclose(result.aggregates["mean(c2)"], kept[:, 2].mean())
        assert result.aggregates["min(c0)"] == kept[:, 0].min()
        assert result.aggregates["max(c3)"] == kept[:, 3].max()

    def test_aggregates_over_no_rows(self):
        rng = np.random.default_rng(22)
        shards = self._stream(quantised(rng, rows=40), ("CVI", "DVI"), batch=20)
        result = scan_shards(iter(shards), where="c0 > 99", agg="count,mean:c1,min:c1")
        assert result.aggregates["count"] == 0
        assert result.aggregates["mean(c1)"] is None
        assert result.aggregates["min(c1)"] is None

    def test_limit_early_exit_skips_remaining_shards(self):
        rng = np.random.default_rng(23)
        dense = quantised(rng, rows=100)
        shards = self._stream(dense, ("DVI",), batch=20)
        consumed = []

        def counting_stream():
            for shard in shards:
                consumed.append(shard[1])
                yield shard

        result = scan_shards(counting_stream(), limit=10)
        assert result.rows.shape == (10, dense.shape[1])
        assert result.n_rows_matched == 10
        assert len(consumed) == 1  # one 20-row shard already filled the limit

    def test_limit_zero_rejected_and_empty_match(self):
        rng = np.random.default_rng(24)
        dense = quantised(rng, rows=30)
        shards = self._stream(dense, ("CVI",), batch=30)
        # limit=0 would silently return nothing where "no limit" was meant;
        # it is a caller bug and must fail loudly.
        with pytest.raises(ValueError, match="at least 1"):
            scan_shards(iter(shards), limit=0)
        empty = scan_shards(iter(shards), where="c0 > 99")
        assert empty.rows.shape == (0, dense.shape[1])
        assert empty.row_ids.size == 0
        assert empty.selectivity == 0.0

    def test_agg_excludes_columns_and_limit(self):
        with pytest.raises(ValueError, match="not both"):
            scan_shards(iter([]), columns=[0], agg="count")
        with pytest.raises(ValueError, match="selections"):
            scan_shards(iter([]), agg="count", limit=5)
        with pytest.raises(ValueError, match="at least 1"):
            scan_shards(iter([]), limit=-1)


class TestReaderRegistry:
    def test_resolution_per_scheme(self):
        rng = np.random.default_rng(4)
        dense = quantised(rng)
        assert scan_reader_for(get_scheme("DVI").compress(dense)).name == "DVI-value-index"
        assert scan_reader_for(get_scheme("CVI").compress(dense)).name == "CVI-value-index"
        assert scan_reader_for(get_scheme("TOC").compress(dense)).name == "compressed-ops"
        assert scan_reader_for(get_scheme("DEN").compress(dense)).name == "dense-fallback"
        assert not scan_reader_for(get_scheme("DVI").compress(dense), pushdown=False).pushdown

    def test_register_scan_reader_extends_fast_path(self):
        class Tagged:
            def __init__(self, dense):
                self.dense = dense
                self.shape = dense.shape

            def to_dense(self):
                return self.dense

        class TaggedReader(ScanReader):
            name = "tagged"

            def column(self, matrix, col):
                return matrix.dense[:, col]

        from repro.exec.scan import _SCAN_READERS

        register_scan_reader(lambda m: isinstance(m, Tagged), TaggedReader())
        try:
            rng = np.random.default_rng(6)
            dense = quantised(rng)
            reader = scan_reader_for(Tagged(dense))
            assert reader.name == "tagged"
            rows, row_ids, pushed = scan_matrix(Tagged(dense), where="c0 == 0.5")
            assert pushed
            np.testing.assert_array_equal(rows, dense[dense[:, 0] == 0.5])
        finally:
            _SCAN_READERS.pop()

    def test_toc_aggregates_push_down_but_selections_do_not(self):
        rng = np.random.default_rng(8)
        matrix = get_scheme("TOC").compress(quantised(rng))
        selection = scan_shards(iter([(matrix, 0)]), where="c0 == 0.5")
        aggregate = scan_shards(iter([(matrix, 0)]), where="c0 == 0.5", agg="count")
        assert selection.fallback_shards == 1  # probing columns would add work
        assert aggregate.pushdown_shards == 1  # no materialisation: probing wins
