"""Tests for mini-batch splitting and the shuffle-once discipline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.minibatch import MiniBatchIterator, split_minibatches


@pytest.fixture()
def data():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(103, 7))
    labels = rng.integers(0, 2, size=103).astype(np.float64)
    return features, labels


class TestSplitMinibatches:
    def test_batch_sizes(self, data):
        features, labels = data
        batches = split_minibatches(features, labels, batch_size=25)
        assert [bx.shape[0] for bx, _ in batches] == [25, 25, 25, 25, 3]

    def test_drop_last(self, data):
        features, labels = data
        batches = split_minibatches(features, labels, batch_size=25, drop_last=True)
        assert [bx.shape[0] for bx, _ in batches] == [25, 25, 25, 25]

    def test_all_rows_covered_exactly_once(self, data):
        features, labels = data
        batches = split_minibatches(features, labels, batch_size=20)
        stacked = np.vstack([bx for bx, _ in batches])
        assert stacked.shape == features.shape
        assert np.allclose(np.sort(stacked, axis=0), np.sort(features, axis=0))

    def test_labels_stay_aligned_with_features(self, data):
        features, labels = data
        # Make the label recoverable from the row so alignment is checkable.
        features = features.copy()
        features[:, 0] = labels
        batches = split_minibatches(features, labels, batch_size=30, seed=3)
        for bx, by in batches:
            assert np.array_equal(bx[:, 0], by)

    def test_shuffle_once_is_deterministic(self, data):
        features, labels = data
        a = split_minibatches(features, labels, batch_size=30, seed=5)
        b = split_minibatches(features, labels, batch_size=30, seed=5)
        for (ax, _), (bx, _) in zip(a, b):
            assert np.array_equal(ax, bx)

    def test_no_shuffle_preserves_order(self, data):
        features, labels = data
        batches = split_minibatches(features, labels, batch_size=50, shuffle=False)
        assert np.array_equal(batches[0][0], features[:50])

    def test_unlabeled_split(self, data):
        features, _ = data
        batches = split_minibatches(features, None, batch_size=40)
        assert all(by is None for _, by in batches)

    def test_invalid_batch_size_rejected(self, data):
        features, labels = data
        with pytest.raises(ValueError):
            split_minibatches(features, labels, batch_size=0)

    def test_mismatched_labels_rejected(self, data):
        features, labels = data
        with pytest.raises(ValueError):
            split_minibatches(features, labels[:-1], batch_size=10)

    def test_1d_features_rejected(self):
        with pytest.raises(ValueError):
            split_minibatches(np.ones(10), None, batch_size=2)


class TestMiniBatchIterator:
    def test_iteration_and_indexing(self, data):
        features, labels = data
        batches = split_minibatches(features, labels, batch_size=25)
        iterator = MiniBatchIterator(batches)
        assert len(iterator) == len(batches)
        assert np.array_equal(iterator[0][0], batches[0][0])
        assert sum(1 for _ in iterator) == len(batches)

    def test_replay_is_identical_across_epochs(self, data):
        features, labels = data
        iterator = MiniBatchIterator(split_minibatches(features, labels, batch_size=25))
        first_epoch = [bx.copy() for bx, _ in iterator]
        second_epoch = [bx.copy() for bx, _ in iterator]
        for a, b in zip(first_epoch, second_epoch):
            assert np.array_equal(a, b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MiniBatchIterator([])


class TestIterMinibatchSlices:
    def test_slices_partition_all_rows(self):
        from repro.data.minibatch import iter_minibatch_slices

        slices = list(iter_minibatch_slices(103, 25, seed=4))
        assert [len(s) for s in slices] == [25, 25, 25, 25, 3]
        assert sorted(np.concatenate(slices)) == list(range(103))

    def test_matches_split_minibatches(self):
        from repro.data.minibatch import iter_minibatch_slices

        features = np.arange(120, dtype=np.float64).reshape(60, 2)
        batches = split_minibatches(features, batch_size=16, seed=9)
        slices = list(iter_minibatch_slices(60, 16, seed=9))
        assert len(batches) == len(slices)
        for (bx, _), idx in zip(batches, slices):
            assert np.array_equal(bx, features[idx])

    def test_drop_last_and_validation(self):
        from repro.data.minibatch import iter_minibatch_slices

        assert [len(s) for s in iter_minibatch_slices(10, 4, drop_last=True)] == [4, 4]
        with pytest.raises(ValueError):
            list(iter_minibatch_slices(0, 4))
        with pytest.raises(ValueError):
            list(iter_minibatch_slices(10, 0))

    def test_split_minibatches_keeps_empty_input_behaviour(self):
        # Zero rows returns an empty list (as before the slice refactor),
        # even though iter_minibatch_slices itself rejects n_rows == 0.
        assert split_minibatches(np.empty((0, 5))) == []
