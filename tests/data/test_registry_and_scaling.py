"""Tests for the dataset profiles (Table 5 stand-ins) and dataset scaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import DATASET_PROFILES, generate_dataset
from repro.data.scaling import scale_labeled, scale_rows
from repro.data.synthetic import measured_sparsity


class TestDatasetProfiles:
    def test_all_six_paper_datasets_present(self):
        assert set(DATASET_PROFILES) == {"census", "imagenet", "mnist", "kdd99", "rcv1", "deep1b"}

    @pytest.mark.parametrize(
        ("name", "n_cols"),
        [("census", 68), ("imagenet", 900), ("mnist", 784), ("kdd99", 42), ("deep1b", 96)],
    )
    def test_column_counts_match_table5(self, name, n_cols):
        assert DATASET_PROFILES[name].config.n_cols == n_cols

    @pytest.mark.parametrize(
        ("name", "sparsity"),
        [("census", 0.43), ("imagenet", 0.31), ("mnist", 0.25), ("kdd99", 0.39), ("deep1b", 1.0)],
    )
    def test_sparsity_matches_table5(self, name, sparsity):
        matrix = DATASET_PROFILES[name].matrix(400, seed=0)
        assert measured_sparsity(matrix) == pytest.approx(sparsity, abs=0.07)

    def test_rcv1_is_extremely_sparse(self):
        matrix = DATASET_PROFILES["rcv1"].matrix(200, seed=0)
        assert measured_sparsity(matrix) < 0.01

    def test_mnist_profile_is_multiclass(self):
        assert DATASET_PROFILES["mnist"].n_classes == 10

    def test_generate_dataset_by_name(self):
        matrix = generate_dataset("census", 30, seed=1)
        assert matrix.shape == (30, 68)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            generate_dataset("criteo", 10)

    def test_classification_returns_aligned_labels(self):
        features, labels = DATASET_PROFILES["kdd99"].classification(50, seed=0)
        assert features.shape[0] == labels.shape[0] == 50


class TestScaling:
    def test_upscaling_keeps_original_prefix(self):
        matrix = np.arange(20, dtype=np.float64).reshape(5, 4)
        scaled = scale_rows(matrix, 12, seed=0)
        assert scaled.shape == (12, 4)
        assert np.array_equal(scaled[:5], matrix)

    def test_new_rows_are_resampled_from_original(self):
        matrix = np.arange(20, dtype=np.float64).reshape(5, 4)
        scaled = scale_rows(matrix, 50, seed=0)
        original_rows = {tuple(row) for row in matrix}
        assert all(tuple(row) in original_rows for row in scaled[5:])

    def test_downscaling_truncates(self):
        matrix = np.arange(20, dtype=np.float64).reshape(5, 4)
        assert np.array_equal(scale_rows(matrix, 3), matrix[:3])

    def test_scaling_preserves_compressibility(self):
        """Row resampling must not destroy the repeated-sequence structure."""
        from repro.core.toc import TOCMatrix

        base = DATASET_PROFILES["census"].matrix(100, seed=0)
        scaled = scale_rows(base, 400, seed=0)
        base_ratio = TOCMatrix.encode(base).compression_ratio()
        scaled_ratio = TOCMatrix.encode(scaled).compression_ratio()
        assert scaled_ratio > 0.8 * base_ratio

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            scale_rows(np.ones((2, 2)), 0)

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            scale_rows(np.ones(4), 8)

    def test_scale_labeled_keeps_alignment(self):
        features = np.arange(20, dtype=np.float64).reshape(5, 4)
        labels = np.arange(5, dtype=np.float64)
        # Encode the label into the row so alignment is verifiable.
        features[:, 0] = labels
        scaled_x, scaled_y = scale_labeled(features, labels, 18, seed=1)
        assert scaled_x.shape == (18, 4)
        assert np.array_equal(scaled_x[:, 0], scaled_y)

    def test_scale_labeled_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scale_labeled(np.ones((3, 2)), np.ones(2), 5)
