"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    SyntheticConfig,
    make_classification,
    make_regression,
    make_synthetic_matrix,
    measured_sparsity,
)


def _config(**overrides) -> SyntheticConfig:
    defaults = dict(
        n_cols=40, sparsity=0.4, n_distinct_values=10, template_fraction=0.8, n_templates=4
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestSyntheticConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sparsity": -0.1},
            {"sparsity": 1.1},
            {"template_fraction": -0.5},
            {"template_fraction": 2.0},
            {"n_cols": 0},
            {"n_distinct_values": 0},
            {"n_templates": 0},
            {"segment_length": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            _config(**kwargs)


class TestMakeSyntheticMatrix:
    def test_shape(self):
        matrix = make_synthetic_matrix(25, _config(), seed=0)
        assert matrix.shape == (25, 40)

    def test_deterministic_with_seed(self):
        a = make_synthetic_matrix(10, _config(), seed=7)
        b = make_synthetic_matrix(10, _config(), seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_synthetic_matrix(10, _config(), seed=1)
        b = make_synthetic_matrix(10, _config(), seed=2)
        assert not np.array_equal(a, b)

    def test_sparsity_close_to_target(self):
        matrix = make_synthetic_matrix(500, _config(sparsity=0.3), seed=0)
        assert measured_sparsity(matrix) == pytest.approx(0.3, abs=0.08)

    def test_fully_dense_config(self):
        matrix = make_synthetic_matrix(50, _config(sparsity=1.0), seed=0)
        assert measured_sparsity(matrix) == 1.0

    def test_all_zero_config(self):
        matrix = make_synthetic_matrix(50, _config(sparsity=0.0), seed=0)
        assert measured_sparsity(matrix) == 0.0

    def test_value_domain_respected(self):
        matrix = make_synthetic_matrix(300, _config(n_distinct_values=5), seed=0)
        nonzero = matrix[matrix != 0]
        assert np.unique(nonzero).size <= 5

    def test_repetition_creates_compressible_structure(self):
        """High template_fraction must make TOC compress much better than
        template_fraction zero with otherwise identical knobs."""
        from repro.core.toc import TOCMatrix

        repetitive = make_synthetic_matrix(200, _config(template_fraction=1.0), seed=0)
        independent = make_synthetic_matrix(200, _config(template_fraction=0.0), seed=0)
        assert (
            TOCMatrix.encode(repetitive).compression_ratio()
            > 1.5 * TOCMatrix.encode(independent).compression_ratio()
        )

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(ValueError):
            make_synthetic_matrix(0, _config())


class TestLabeledGenerators:
    def test_binary_classification_labels(self):
        features, labels = make_classification(100, _config(), seed=0)
        assert features.shape == (100, 40)
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_binary_labels_are_roughly_balanced(self):
        _, labels = make_classification(400, _config(), seed=0)
        assert 0.3 < labels.mean() < 0.7

    def test_multiclass_labels_in_range(self):
        _, labels = make_classification(200, _config(), n_classes=7, seed=0)
        assert labels.min() >= 0
        assert labels.max() < 7

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            make_classification(10, _config(), n_classes=1)

    def test_labels_are_learnable(self):
        """A linear model must beat chance on the generated labels."""
        from repro.ml.models import LogisticRegressionModel

        features, labels = make_classification(300, _config(), seed=0)
        model = LogisticRegressionModel(features.shape[1], seed=0)
        for _ in range(50):
            model.gradient_step(features, labels, 0.5)
        assert np.mean(model.predict(features) == labels) > 0.7

    def test_regression_targets_follow_teacher(self):
        features, targets = make_regression(200, _config(), noise=0.0, seed=0)
        # Noise-free targets must be an exact linear function of the features.
        solution, *_ = np.linalg.lstsq(features, targets, rcond=None)
        np.testing.assert_allclose(features @ solution, targets, atol=1e-8)


class TestSyntheticProperties:
    @given(
        sparsity=st.floats(0.05, 0.95),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sparsity_tracks_parameter(self, sparsity, seed):
        config = _config(sparsity=sparsity, template_fraction=0.5)
        matrix = make_synthetic_matrix(300, config, seed=seed)
        assert measured_sparsity(matrix) == pytest.approx(sparsity, abs=0.12)
