"""Tests for the physical encoding layer (bit packing + value indexing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.logical import prefix_tree_encode
from repro.core.physical import (
    PhysicalEncoding,
    logical_nbytes,
    physical_decode,
    physical_decode_varint,
    physical_encode,
    physical_encode_varint,
)
from repro.core.sparse import sparse_encode
from tests.conftest import random_sparse_matrix


def _logical(dense: np.ndarray):
    encoding, _ = prefix_tree_encode(sparse_encode(dense))
    return encoding


def _assert_logical_equal(a, b) -> None:
    assert a.shape == b.shape
    assert np.array_equal(a.first_layer_columns, b.first_layer_columns)
    assert np.array_equal(a.first_layer_values, b.first_layer_values)
    assert np.array_equal(a.codes, b.codes)
    assert np.array_equal(a.row_offsets, b.row_offsets)


class TestPhysicalEncoding:
    def test_roundtrip(self, census_batch):
        logical = _logical(census_batch)
        _assert_logical_equal(physical_decode(physical_encode(logical)), logical)

    def test_roundtrip_zero_matrix(self):
        logical = _logical(np.zeros((3, 4)))
        _assert_logical_equal(physical_decode(physical_encode(logical)), logical)

    def test_bytes_roundtrip(self, census_batch):
        logical = _logical(census_batch)
        physical = physical_encode(logical)
        restored = PhysicalEncoding.from_bytes(physical.to_bytes())
        _assert_logical_equal(physical_decode(restored), logical)

    def test_bad_magic_rejected(self, census_batch):
        raw = physical_encode(_logical(census_batch)).to_bytes()
        with pytest.raises(ValueError):
            PhysicalEncoding.from_bytes(b"XXXX" + raw[4:])

    def test_physical_smaller_than_logical(self, census_batch):
        logical = _logical(census_batch)
        assert physical_encode(logical).nbytes < logical_nbytes(logical)

    def test_nbytes_matches_serialised_length(self, census_batch):
        physical = physical_encode(_logical(census_batch))
        assert physical.nbytes == len(physical.to_bytes())

    def test_compressed_smaller_than_dense_on_compressible_data(self, census_batch):
        physical = physical_encode(_logical(census_batch))
        assert physical.nbytes < census_batch.size * 8


class TestVarintLayout:
    def test_roundtrip(self, census_batch):
        logical = _logical(census_batch)
        _assert_logical_equal(
            physical_decode_varint(physical_encode_varint(logical)), logical
        )

    def test_roundtrip_zero_matrix(self):
        logical = _logical(np.zeros((2, 3)))
        _assert_logical_equal(
            physical_decode_varint(physical_encode_varint(logical)), logical
        )

    def test_roundtrip_random(self, rng):
        dense = random_sparse_matrix(rng, 14, 11)
        logical = _logical(dense)
        _assert_logical_equal(
            physical_decode_varint(physical_encode_varint(logical)), logical
        )


class TestPhysicalProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=14),
            elements=st.sampled_from([0.0, 0.0, 1.0, 2.5, -1.25]),
        )
    )
    @settings(max_examples=75, deadline=None)
    def test_roundtrip_property(self, dense):
        logical = _logical(dense)
        _assert_logical_equal(physical_decode(physical_encode(logical)), logical)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
            elements=st.sampled_from([0.0, 1.0, 3.5]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_varint_roundtrip_property(self, dense):
        logical = _logical(dense)
        _assert_logical_equal(
            physical_decode_varint(physical_encode_varint(logical)), logical
        )
