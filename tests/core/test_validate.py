"""Tests for structural validation and failure injection on encoded artefacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.logical import LogicalEncoding, prefix_tree_encode
from repro.core.sparse import SparseEncodedTable, sparse_encode
from repro.core.validate import (
    EncodingError,
    validate_logical,
    validate_roundtrip,
    validate_sparse,
)
from tests.conftest import random_sparse_matrix


class TestValidateSparse:
    def test_valid_encoding_passes(self, census_batch):
        validate_sparse(sparse_encode(census_batch))

    def test_zero_value_rejected(self):
        table = SparseEncodedTable(
            columns=np.array([0]),
            values=np.array([0.0]),
            row_offsets=np.array([0, 1]),
            shape=(1, 2),
        )
        with pytest.raises(EncodingError):
            validate_sparse(table)

    def test_unsorted_columns_rejected(self):
        table = SparseEncodedTable(
            columns=np.array([1, 0]),
            values=np.array([1.0, 2.0]),
            row_offsets=np.array([0, 2]),
            shape=(1, 2),
        )
        with pytest.raises(EncodingError):
            validate_sparse(table)


class TestValidateLogical:
    def test_valid_encoding_passes(self, census_batch):
        encoding, _ = prefix_tree_encode(sparse_encode(census_batch))
        validate_logical(encoding)

    def test_duplicate_first_layer_rejected(self):
        encoding = LogicalEncoding(
            first_layer_columns=np.array([0, 0]),
            first_layer_values=np.array([1.0, 1.0]),
            codes=np.array([1, 2]),
            row_offsets=np.array([0, 2]),
            shape=(1, 2),
        )
        with pytest.raises(EncodingError):
            validate_logical(encoding)

    def test_zero_value_in_first_layer_rejected(self):
        encoding = LogicalEncoding(
            first_layer_columns=np.array([0]),
            first_layer_values=np.array([0.0]),
            codes=np.array([1]),
            row_offsets=np.array([0, 1]),
            shape=(1, 1),
        )
        with pytest.raises(EncodingError):
            validate_logical(encoding)

    def test_out_of_range_first_layer_column_rejected(self):
        encoding = LogicalEncoding(
            first_layer_columns=np.array([5]),
            first_layer_values=np.array([1.0]),
            codes=np.array([1]),
            row_offsets=np.array([0, 1]),
            shape=(1, 2),
        )
        with pytest.raises(EncodingError):
            validate_logical(encoding)

    def test_corrupted_code_rejected(self, census_batch):
        encoding, _ = prefix_tree_encode(sparse_encode(census_batch))
        corrupted = LogicalEncoding(
            first_layer_columns=encoding.first_layer_columns,
            first_layer_values=encoding.first_layer_values,
            codes=np.where(
                np.arange(encoding.codes.size) == 0,
                encoding.n_tree_nodes + 50,
                encoding.codes,
            ),
            row_offsets=encoding.row_offsets,
            shape=encoding.shape,
        )
        with pytest.raises(EncodingError):
            validate_logical(corrupted)


class TestValidateRoundtrip:
    def test_roundtrip_on_random_matrices(self, rng):
        for _ in range(5):
            validate_roundtrip(random_sparse_matrix(rng, 10, 8))

    def test_roundtrip_on_paper_example(self, paper_matrix):
        validate_roundtrip(paper_matrix)
