"""Tests for the encoding prefix tree (Section 3.1.1 APIs)."""

from __future__ import annotations

import pytest

from repro.core.prefix_tree import NOT_FOUND, ROOT_INDEX, PrefixTree


class TestPrefixTreeBasics:
    def test_new_tree_has_only_root(self):
        tree = PrefixTree()
        assert len(tree) == 1

    def test_add_node_returns_sequential_indexes(self):
        tree = PrefixTree()
        assert tree.add_node(ROOT_INDEX, (0, 1.0)) == 1
        assert tree.add_node(ROOT_INDEX, (1, 2.0)) == 2
        assert tree.add_node(1, (1, 2.0)) == 3

    def test_get_index_finds_children(self):
        tree = PrefixTree()
        idx = tree.add_node(ROOT_INDEX, (0, 1.0))
        assert tree.get_index(ROOT_INDEX, (0, 1.0)) == idx

    def test_get_index_missing_returns_not_found(self):
        tree = PrefixTree()
        assert tree.get_index(ROOT_INDEX, (0, 1.0)) == NOT_FOUND

    def test_get_index_scoped_to_parent(self):
        tree = PrefixTree()
        a = tree.add_node(ROOT_INDEX, (0, 1.0))
        tree.add_node(a, (1, 2.0))
        # (1, 2.0) exists under node a but not under the root.
        assert tree.get_index(ROOT_INDEX, (1, 2.0)) == NOT_FOUND
        assert tree.get_index(a, (1, 2.0)) == 2

    def test_key_of_root_raises(self):
        tree = PrefixTree()
        with pytest.raises(ValueError):
            tree.key(ROOT_INDEX)

    def test_key_and_parent(self):
        tree = PrefixTree()
        a = tree.add_node(ROOT_INDEX, (3, 1.5))
        b = tree.add_node(a, (4, 2.5))
        assert tree.key(b) == (4, 2.5)
        assert tree.parent(b) == a
        assert tree.parent(a) == ROOT_INDEX


class TestPrefixTreeSequences:
    def test_sequence_concatenates_keys_from_root(self):
        tree = PrefixTree()
        a = tree.add_node(ROOT_INDEX, (0, 1.0))
        b = tree.add_node(a, (1, 2.0))
        c = tree.add_node(b, (2, 3.0))
        assert tree.sequence(c) == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_depth(self):
        tree = PrefixTree()
        a = tree.add_node(ROOT_INDEX, (0, 1.0))
        b = tree.add_node(a, (1, 2.0))
        assert tree.depth(ROOT_INDEX) == 0
        assert tree.depth(a) == 1
        assert tree.depth(b) == 2

    def test_first_layer_returns_root_children_in_index_order(self):
        tree = PrefixTree()
        tree.add_node(ROOT_INDEX, (0, 1.0))
        tree.add_node(ROOT_INDEX, (1, 2.0))
        tree.add_node(1, (1, 2.0))  # deeper node must not appear
        assert tree.first_layer() == [(0, 1.0), (1, 2.0)]

    def test_integer_float_key_normalisation(self):
        tree = PrefixTree()
        idx = tree.add_node(ROOT_INDEX, (0, 2))
        # Looking up with an equal float value must find the same node.
        assert tree.get_index(ROOT_INDEX, (0, 2.0)) == idx
