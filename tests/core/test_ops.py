"""Correctness of the compressed matrix operations (Theorems 1-4, Algorithms 3-8).

Every compressed kernel is compared against the plain NumPy computation on
the decoded dense matrix, on hand-picked edge cases and on hypothesis-drawn
matrices — this is the executable version of the paper's correctness proofs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import ops
from repro.core.decode_tree import build_decode_tree
from repro.core.logical import prefix_tree_encode
from repro.core.sparse import sparse_encode
from tests.conftest import random_sparse_matrix


def _encode(dense: np.ndarray):
    encoding, _ = prefix_tree_encode(sparse_encode(dense))
    return encoding


_SPARSE_ELEMENTS = st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.5, -1.5, 4.0])
_MATRICES = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=14),
    elements=_SPARSE_ELEMENTS,
)


class TestSparseSafeOps:
    def test_scale(self, census_batch):
        encoding = _encode(census_batch)
        scaled = ops.matrix_times_scalar(encoding, 3.5)
        assert np.allclose(ops.decode_to_dense(scaled), census_batch * 3.5)

    def test_scale_by_zero_keeps_structure(self, census_batch):
        encoding = _encode(census_batch)
        scaled = ops.matrix_times_scalar(encoding, 0.0)
        assert np.allclose(ops.decode_to_dense(scaled), np.zeros_like(census_batch))

    def test_power(self, census_batch):
        encoding = _encode(census_batch)
        squared = ops.matrix_elementwise_power(encoding, 2.0)
        assert np.allclose(ops.decode_to_dense(squared), census_batch**2)

    def test_power_rejects_nonpositive_exponent(self, census_batch):
        encoding = _encode(census_batch)
        with pytest.raises(ValueError):
            ops.matrix_elementwise_power(encoding, 0.0)

    def test_apply_sparse_safe(self, census_batch):
        encoding = _encode(census_batch)
        result = ops.matrix_apply_sparse_safe(encoding, np.abs)
        assert np.allclose(ops.decode_to_dense(result), np.abs(census_batch))


class TestRightMultiplication:
    def test_matvec_matches_dense(self, census_batch, rng):
        encoding = _encode(census_batch)
        v = rng.normal(size=census_batch.shape[1])
        np.testing.assert_allclose(
            ops.matrix_times_vector(encoding, v), census_batch @ v, rtol=1e-10
        )

    def test_matvec_zero_matrix(self):
        dense = np.zeros((3, 4))
        encoding = _encode(dense)
        assert np.array_equal(ops.matrix_times_vector(encoding, np.ones(4)), np.zeros(3))

    def test_matvec_with_empty_rows(self):
        dense = np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 0.0]])
        encoding = _encode(dense)
        v = np.array([2.0, -1.0])
        np.testing.assert_allclose(ops.matrix_times_vector(encoding, v), dense @ v)

    def test_matvec_wrong_length_rejected(self, census_batch):
        encoding = _encode(census_batch)
        with pytest.raises(ValueError):
            ops.matrix_times_vector(encoding, np.ones(3))

    def test_matmat_matches_dense(self, census_batch, rng):
        encoding = _encode(census_batch)
        m = rng.normal(size=(census_batch.shape[1], 7))
        np.testing.assert_allclose(
            ops.matrix_times_matrix(encoding, m), census_batch @ m, rtol=1e-10
        )

    def test_matmat_single_column(self, census_batch, rng):
        encoding = _encode(census_batch)
        m = rng.normal(size=(census_batch.shape[1], 1))
        np.testing.assert_allclose(
            ops.matrix_times_matrix(encoding, m), census_batch @ m, rtol=1e-10
        )

    def test_matmat_wrong_shape_rejected(self, census_batch):
        encoding = _encode(census_batch)
        with pytest.raises(ValueError):
            ops.matrix_times_matrix(encoding, np.ones((3, 2)))

    def test_reusing_prebuilt_tree(self, census_batch, rng):
        encoding = _encode(census_batch)
        tree = build_decode_tree(encoding)
        v = rng.normal(size=census_batch.shape[1])
        np.testing.assert_allclose(
            ops.matrix_times_vector(encoding, v, tree), census_batch @ v, rtol=1e-10
        )


class TestLeftMultiplication:
    def test_rmatvec_matches_dense(self, census_batch, rng):
        encoding = _encode(census_batch)
        v = rng.normal(size=census_batch.shape[0])
        np.testing.assert_allclose(
            ops.vector_times_matrix(encoding, v), v @ census_batch, rtol=1e-10
        )

    def test_rmatvec_zero_matrix(self):
        dense = np.zeros((3, 4))
        encoding = _encode(dense)
        assert np.array_equal(ops.vector_times_matrix(encoding, np.ones(3)), np.zeros(4))

    def test_rmatvec_with_empty_rows(self):
        dense = np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 0.0]])
        encoding = _encode(dense)
        v = np.array([1.0, 5.0, -2.0])
        np.testing.assert_allclose(ops.vector_times_matrix(encoding, v), v @ dense)

    def test_rmatvec_wrong_length_rejected(self, census_batch):
        encoding = _encode(census_batch)
        with pytest.raises(ValueError):
            ops.vector_times_matrix(encoding, np.ones(3))

    def test_rmatmat_matches_dense(self, census_batch, rng):
        encoding = _encode(census_batch)
        m = rng.normal(size=(5, census_batch.shape[0]))
        np.testing.assert_allclose(
            ops.uncompressed_matrix_times_matrix(encoding, m), m @ census_batch, rtol=1e-10
        )

    def test_rmatmat_single_row(self, census_batch, rng):
        encoding = _encode(census_batch)
        m = rng.normal(size=(1, census_batch.shape[0]))
        np.testing.assert_allclose(
            ops.uncompressed_matrix_times_matrix(encoding, m), m @ census_batch, rtol=1e-10
        )

    def test_rmatmat_wrong_shape_rejected(self, census_batch):
        encoding = _encode(census_batch)
        with pytest.raises(ValueError):
            ops.uncompressed_matrix_times_matrix(encoding, np.ones((2, 3)))


class TestSparseUnsafeOps:
    def test_add_scalar(self, census_batch):
        encoding = _encode(census_batch)
        np.testing.assert_allclose(
            ops.matrix_plus_scalar(encoding, 2.5), census_batch + 2.5
        )

    def test_add_matrix(self, census_batch, rng):
        encoding = _encode(census_batch)
        other = rng.normal(size=census_batch.shape)
        np.testing.assert_allclose(
            ops.matrix_plus_matrix(encoding, other), census_batch + other
        )

    def test_add_matrix_shape_mismatch_rejected(self, census_batch):
        encoding = _encode(census_batch)
        with pytest.raises(ValueError):
            ops.matrix_plus_matrix(encoding, np.ones((2, 2)))

    def test_decode_to_sparse_roundtrip(self, rng):
        dense = random_sparse_matrix(rng, 12, 9)
        encoding = _encode(dense)
        sparse = ops.decode_to_sparse(encoding)
        assert np.array_equal(
            ops.decode_to_dense(encoding), dense
        )
        assert sparse.nnz == np.count_nonzero(dense)


class TestOpsProperties:
    """Hypothesis equivalence tests — the executable Theorems 1-4."""

    @given(dense=_MATRICES, seed=st.integers(0, 2**16))
    @settings(max_examples=75, deadline=None)
    def test_theorem1_matvec(self, dense, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=dense.shape[1])
        encoding = _encode(dense)
        np.testing.assert_allclose(
            ops.matrix_times_vector(encoding, v), dense @ v, rtol=1e-9, atol=1e-9
        )

    @given(dense=_MATRICES, seed=st.integers(0, 2**16))
    @settings(max_examples=75, deadline=None)
    def test_theorem2_rmatvec(self, dense, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=dense.shape[0])
        encoding = _encode(dense)
        np.testing.assert_allclose(
            ops.vector_times_matrix(encoding, v), v @ dense, rtol=1e-9, atol=1e-9
        )

    @given(dense=_MATRICES, seed=st.integers(0, 2**16), width=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_theorem3_matmat(self, dense, seed, width):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(dense.shape[1], width))
        encoding = _encode(dense)
        np.testing.assert_allclose(
            ops.matrix_times_matrix(encoding, m), dense @ m, rtol=1e-9, atol=1e-9
        )

    @given(dense=_MATRICES, seed=st.integers(0, 2**16), height=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_theorem4_rmatmat(self, dense, seed, height):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(height, dense.shape[0]))
        encoding = _encode(dense)
        np.testing.assert_allclose(
            ops.uncompressed_matrix_times_matrix(encoding, m), m @ dense, rtol=1e-9, atol=1e-9
        )

    @given(dense=_MATRICES, scalar=st.floats(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_scale_property(self, dense, scalar):
        encoding = _encode(dense)
        scaled = ops.matrix_times_scalar(encoding, scalar)
        np.testing.assert_allclose(
            ops.decode_to_dense(scaled), dense * scalar, rtol=1e-9, atol=1e-9
        )

    @given(dense=_MATRICES)
    @settings(max_examples=75, deadline=None)
    def test_decode_roundtrip_property(self, dense):
        encoding = _encode(dense)
        assert np.array_equal(ops.decode_to_dense(encoding), dense)
