"""Tests for the decoding prefix tree C' (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.decode_tree import DecodeTree, build_decode_tree
from repro.core.logical import prefix_tree_encode
from repro.core.sparse import sparse_encode
from tests.conftest import random_sparse_matrix


def _encode(dense: np.ndarray):
    return prefix_tree_encode(sparse_encode(dense))


class TestBuildDecodeTree:
    def test_matches_encoding_tree_sequences(self, rng):
        dense = random_sparse_matrix(rng, 20, 10)
        encoding, enc_tree = _encode(dense)
        ctree = build_decode_tree(encoding)
        assert len(ctree) == len(enc_tree)
        for node in range(1, len(enc_tree)):
            cols, vals = ctree.sequence(node)
            assert list(zip(cols, vals)) == enc_tree.sequence(node)

    def test_depths_match_sequence_lengths(self, rng):
        dense = random_sparse_matrix(rng, 15, 8)
        encoding, enc_tree = _encode(dense)
        ctree = build_decode_tree(encoding)
        for node in range(1, len(ctree)):
            assert ctree.depths[node] == len(enc_tree.sequence(node))

    def test_first_pair_array_matches_sequences(self, rng):
        dense = random_sparse_matrix(rng, 15, 8)
        encoding, enc_tree = _encode(dense)
        ctree = build_decode_tree(encoding)
        for node in range(1, len(ctree)):
            first_col, first_val = enc_tree.sequence(node)[0]
            assert ctree.first_columns[node] == first_col
            assert ctree.first_values[node] == first_val

    def test_zero_matrix(self):
        encoding, _ = _encode(np.zeros((3, 3)))
        ctree = build_decode_tree(encoding)
        assert len(ctree) == 1  # only the root

    def test_lzw_corner_case_immediate_reference(self):
        # The classic LZW corner case: a node is referenced by the code right
        # after the one that created it.  With pairs, this happens when a row
        # repeats the same pair many times, e.g. [a, a, a, a]: encoding emits
        # [a], creates [a,a], then emits [a,a] (the node just created), ...
        dense = np.array([[2.0, 2.0, 2.0, 2.0, 2.0, 2.0]])
        # Same value in all columns is NOT the corner case (different column
        # indexes make different pairs); build it with repeated batches of an
        # identical row prefix instead.
        encoding, _ = _encode(np.tile(dense, (4, 1)))
        ctree = build_decode_tree(encoding)
        ctree.validate()
        from repro.core.ops import decode_to_dense

        assert np.array_equal(decode_to_dense(encoding), np.tile(dense, (4, 1)))

    def test_validate_rejects_forward_parent(self):
        tree = DecodeTree(
            key_columns=np.array([0, 0, 1]),
            key_values=np.array([0.0, 1.0, 2.0]),
            parents=np.array([0, 2, 0]),
            first_columns=np.array([0, 0, 1]),
            first_values=np.array([0.0, 1.0, 2.0]),
            depths=np.array([0, 1, 1]),
        )
        with pytest.raises(ValueError):
            tree.validate()

    def test_validate_rejects_bad_root(self):
        tree = DecodeTree(
            key_columns=np.array([0, 0]),
            key_values=np.array([0.0, 1.0]),
            parents=np.array([1, 0]),
            first_columns=np.array([0, 0]),
            first_values=np.array([0.0, 1.0]),
            depths=np.array([0, 1]),
        )
        with pytest.raises(ValueError):
            tree.validate()


class TestDecodeTreeProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
            elements=st.sampled_from([0.0, 0.0, 1.0, 2.0, 3.5]),
        )
    )
    @settings(max_examples=75, deadline=None)
    def test_rebuilt_tree_always_matches_encoder_tree(self, dense):
        encoding, enc_tree = _encode(dense)
        ctree = build_decode_tree(encoding)
        assert len(ctree) == len(enc_tree)
        for node in range(1, len(ctree)):
            cols, vals = ctree.sequence(node)
            assert list(zip(cols, vals)) == enc_tree.sequence(node)
