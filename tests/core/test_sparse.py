"""Tests for sparse encoding (TOC step 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.sparse import SparseEncodedTable, sparse_decode, sparse_encode
from tests.conftest import random_sparse_matrix


class TestSparseEncode:
    def test_zero_matrix(self):
        table = sparse_encode(np.zeros((3, 4)))
        assert table.nnz == 0
        assert np.array_equal(sparse_decode(table), np.zeros((3, 4)))

    def test_full_matrix(self):
        dense = np.arange(1, 13, dtype=np.float64).reshape(3, 4)
        table = sparse_encode(dense)
        assert table.nnz == 12
        assert np.array_equal(sparse_decode(table), dense)

    def test_single_row(self):
        dense = np.array([[0.0, 2.0, 0.0, 3.0]])
        table = sparse_encode(dense)
        cols, vals = table.row_pairs(0)
        assert cols.tolist() == [1, 3]
        assert vals.tolist() == [2.0, 3.0]

    def test_single_column(self):
        dense = np.array([[1.0], [0.0], [2.0]])
        table = sparse_encode(dense)
        assert table.nnz == 2
        assert np.array_equal(sparse_decode(table), dense)

    def test_negative_values_are_kept(self):
        dense = np.array([[-1.5, 0.0], [0.0, -2.0]])
        table = sparse_encode(dense)
        assert table.nnz == 2
        assert np.array_equal(sparse_decode(table), dense)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            sparse_encode(np.array([1.0, 2.0]))

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            sparse_encode(np.zeros((2, 2, 2)))

    def test_row_offsets_are_cumulative_counts(self, rng):
        dense = random_sparse_matrix(rng, 10, 8)
        table = sparse_encode(dense)
        counts = np.count_nonzero(dense, axis=1)
        assert np.array_equal(np.diff(table.row_offsets), counts)

    def test_iter_rows_covers_all_pairs(self, rng):
        dense = random_sparse_matrix(rng, 6, 5)
        table = sparse_encode(dense)
        total = sum(cols.size for cols, _ in table.iter_rows())
        assert total == table.nnz

    def test_nbytes_layout(self, rng):
        dense = random_sparse_matrix(rng, 5, 5)
        table = sparse_encode(dense)
        expected = table.nnz * 4 + table.nnz * 8 + (table.n_rows + 1) * 4
        assert table.nbytes == expected


class TestSparseTableValidation:
    def test_mismatched_offsets_rejected(self):
        with pytest.raises(ValueError):
            SparseEncodedTable(
                columns=np.array([0]),
                values=np.array([1.0]),
                row_offsets=np.array([0, 1]),
                shape=(2, 2),
            )

    def test_mismatched_columns_values_rejected(self):
        with pytest.raises(ValueError):
            SparseEncodedTable(
                columns=np.array([0, 1]),
                values=np.array([1.0]),
                row_offsets=np.array([0, 2]),
                shape=(1, 2),
            )

    def test_column_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparseEncodedTable(
                columns=np.array([5]),
                values=np.array([1.0]),
                row_offsets=np.array([0, 1]),
                shape=(1, 2),
            )

    def test_bad_final_offset_rejected(self):
        with pytest.raises(ValueError):
            SparseEncodedTable(
                columns=np.array([0]),
                values=np.array([1.0]),
                row_offsets=np.array([0, 2]),
                shape=(1, 2),
            )


class TestSparseProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=20),
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.5, -2.0, 3.25]),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, dense):
        assert np.array_equal(sparse_decode(sparse_encode(dense)), dense)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=15),
            elements=st.sampled_from([0.0, 1.0, 2.0]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_nnz_matches_nonzero_count(self, dense):
        assert sparse_encode(dense).nnz == np.count_nonzero(dense)
