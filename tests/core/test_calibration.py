"""Tests for the measured-kernel calibration behind workload-aware advice."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.core.advisor import recommend_scheme
from repro.core.calibration import (
    CALIBRATION_NAME,
    CALIBRATION_OPS,
    CALIBRATION_VERSION,
    WORKLOAD_MIXES,
    WORKLOADS,
    Calibration,
    calibrate,
    calibration_path,
    ensure_calibration,
    invalidate_cache,
    platform_fingerprint,
    synthetic_batch,
)

#: A tiny-but-real pass: two schemes, two levels, one repeat keeps it fast.
FAST = dict(rows=24, cols=8, sparsity_levels=(0.0, 0.9), repeats=1)


@pytest.fixture(autouse=True)
def isolated_cache():
    """Each test starts and ends without a process-wide cached calibration."""
    invalidate_cache()
    yield
    invalidate_cache()


@pytest.fixture(scope="module")
def small_calibration():
    return calibrate(["DEN", "TOC"], **FAST)


class TestSyntheticBatch:
    def test_sparsity_level_is_hit(self):
        batch = synthetic_batch(200, 40, 0.9, seed=3)
        assert np.mean(batch == 0.0) == pytest.approx(0.9, abs=0.05)

    def test_deterministic_per_seed(self):
        assert np.array_equal(synthetic_batch(50, 8, 0.5), synthetic_batch(50, 8, 0.5))


class TestCalibrate:
    def test_covers_every_requested_scheme_and_op(self, small_calibration):
        cal = small_calibration
        assert cal.schemes() == ["DEN", "TOC"]
        assert cal.covers(["DEN", "TOC"])
        for per_level in cal.timings.values():
            assert len(per_level) == 2
            for per_op in per_level.values():
                assert set(per_op) == set(CALIBRATION_OPS)
                assert all(seconds >= 0 for seconds in per_op.values())

    def test_stamped_with_platform_and_version(self, small_calibration):
        cal = small_calibration
        assert cal.version == CALIBRATION_VERSION
        fingerprint = platform_fingerprint()
        assert {k: cal.platform[k] for k in fingerprint} == fingerprint
        assert "cpu_count" in cal.platform

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            calibrate([])
        with pytest.raises(ValueError):
            calibrate(["DEN"], sparsity_levels=())

    def test_pickles_for_process_pool_workers(self, small_calibration):
        clone = pickle.loads(pickle.dumps(small_calibration))
        assert clone == small_calibration


class TestPersistence:
    def test_round_trip_preserves_everything(self, small_calibration, tmp_path):
        path = small_calibration.save(tmp_path / "sub" / CALIBRATION_NAME)
        loaded = Calibration.load(path)
        assert loaded == small_calibration

    def test_round_trip_preserves_recommendation(self, small_calibration, tmp_path):
        """The acceptance gate: persist -> reload -> identical advice."""
        path = small_calibration.save(tmp_path / CALIBRATION_NAME)
        loaded = Calibration.load(path)
        batch = synthetic_batch(120, 16, 0.6, seed=7)
        for workload in WORKLOADS:
            fresh = recommend_scheme(
                batch, schemes=["DEN", "TOC"], workload=workload,
                calibration=small_calibration,
            )
            reloaded = recommend_scheme(
                batch, schemes=["DEN", "TOC"], workload=workload, calibration=loaded
            )
            assert fresh.ranked_names() == reloaded.ranked_names()
            assert [r.measured_cost for r in fresh.reports] == [
                r.measured_cost for r in reloaded.reports
            ]

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert Calibration.load(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert Calibration.load(bad) is None
        bad.write_text(json.dumps({"version": 1}))  # valid JSON, wrong shape
        assert Calibration.load(bad) is None


class TestStaleness:
    def test_fresh_calibration_is_not_stale(self, small_calibration):
        assert not small_calibration.is_stale(["DEN", "TOC"])

    def test_version_bump_makes_it_stale(self, small_calibration):
        payload = small_calibration.to_dict()
        payload["version"] = CALIBRATION_VERSION + 1
        assert Calibration.from_dict(payload).is_stale()

    def test_platform_mismatch_makes_it_stale(self, small_calibration):
        payload = small_calibration.to_dict()
        payload["platform"] = {**payload["platform"], "machine": "vax780"}
        assert Calibration.from_dict(payload).is_stale()

    def test_uncovered_scheme_makes_it_stale(self, small_calibration):
        assert small_calibration.is_stale(["DEN", "TOC", "CSR"])
        assert not small_calibration.is_stale(["DEN"])

    def test_commit_mismatch_does_not_make_it_stale(self, small_calibration):
        payload = small_calibration.to_dict()
        payload["git_commit"] = "0" * 40
        assert not Calibration.from_dict(payload).is_stale(["DEN", "TOC"])


class TestCostModel:
    def test_nearest_level_match(self, small_calibration):
        assert small_calibration.nearest_level(0.1) == "0.0"
        assert small_calibration.nearest_level(0.97) == "0.9"

    def test_expected_cost_weighs_the_op_mix(self, small_calibration):
        cal = small_calibration
        for workload, mix in WORKLOAD_MIXES.items():
            compute = sum(
                weight * cal.op_seconds("TOC", op, 0.0) for op, weight in mix.items()
            )
            cost = cal.expected_cost(
                "TOC", workload=workload, sparsity=0.0, bytes_per_element=1.5
            )
            assert cost == pytest.approx(compute + 1.5 / 150e6)

    def test_expected_cost_rejects_unknown_workload(self, small_calibration):
        with pytest.raises(ValueError, match="unknown workload"):
            small_calibration.expected_cost(
                "TOC", workload="nope", sparsity=0.0, bytes_per_element=1.0
            )

    def test_op_seconds_missing_scheme_raises(self, small_calibration):
        with pytest.raises(KeyError, match="recalibrate"):
            small_calibration.op_seconds("CSR", "matmat", 0.0)


class TestEnsureCalibration:
    def test_persists_next_to_the_directory(self, tmp_path):
        cal = ensure_calibration(tmp_path, ["DEN"], **FAST)
        path = calibration_path(tmp_path)
        assert path.exists()
        assert Calibration.load(path) == cal

    def test_reuses_the_process_cache(self, tmp_path, monkeypatch):
        ensure_calibration(None, ["DEN"], **FAST)
        import repro.core.calibration as mod

        def boom(*args, **kwargs):
            raise AssertionError("calibrate must not re-run for a cached request")

        monkeypatch.setattr(mod, "calibrate", boom)
        # Second call is served from the cache — and copies the file down
        # into a directory that lacks one.
        cal = ensure_calibration(tmp_path, ["DEN"], **FAST)
        assert calibration_path(tmp_path).exists()
        assert cal.covers(["DEN"])

    def test_prefers_the_on_disk_file(self, tmp_path, monkeypatch):
        first = ensure_calibration(tmp_path, ["DEN"], **FAST)
        invalidate_cache()
        import repro.core.calibration as mod

        def boom(*args, **kwargs):
            raise AssertionError("a valid on-disk file must short-circuit calibrate")

        monkeypatch.setattr(mod, "calibrate", boom)
        assert ensure_calibration(tmp_path, ["DEN"], **FAST) == first

    def test_stale_file_is_recomputed_and_overwritten(self, tmp_path):
        stale = ensure_calibration(tmp_path, ["DEN"], **FAST).to_dict()
        stale["version"] = CALIBRATION_VERSION + 1
        calibration_path(tmp_path).write_text(json.dumps(stale))
        invalidate_cache()
        fresh = ensure_calibration(tmp_path, ["DEN"], **FAST)
        assert fresh.version == CALIBRATION_VERSION
        assert Calibration.load(calibration_path(tmp_path)).version == CALIBRATION_VERSION

    def test_refresh_forces_a_new_pass(self, tmp_path):
        first = ensure_calibration(tmp_path, ["DEN"], **FAST)
        second = ensure_calibration(tmp_path, ["DEN"], refresh=True, **FAST)
        assert second.created_unix >= first.created_unix
