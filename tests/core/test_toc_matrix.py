"""Tests for the user-facing TOCMatrix and its variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.toc import TOCMatrix, TOCVariant
from tests.conftest import random_sparse_matrix


class TestTOCMatrixBasics:
    def test_shape_properties(self, census_batch):
        toc = TOCMatrix.encode(census_batch)
        assert toc.shape == census_batch.shape
        assert toc.n_rows == census_batch.shape[0]
        assert toc.n_cols == census_batch.shape[1]

    def test_roundtrip_random(self, rng):
        dense = random_sparse_matrix(rng, 30, 20)
        assert np.array_equal(TOCMatrix.encode(dense).to_dense(), dense)

    def test_roundtrip_extreme_shapes(self):
        for dense in (np.zeros((1, 1)), np.ones((1, 10)), np.ones((10, 1)), np.zeros((5, 3))):
            assert np.array_equal(TOCMatrix.encode(dense).to_dense(), dense)

    def test_serialisation_roundtrip(self, census_batch):
        toc = TOCMatrix.encode(census_batch)
        restored = TOCMatrix.from_bytes(toc.to_bytes())
        assert np.array_equal(restored.to_dense(), census_batch)
        assert restored.nbytes == toc.nbytes

    def test_compression_ratio_above_one_on_compressible_data(self, census_batch):
        assert TOCMatrix.encode(census_batch).compression_ratio() > 1.0

    def test_stats_keys(self, census_batch):
        stats = TOCMatrix.encode(census_batch).stats()
        assert {"rows", "cols", "nnz", "first_layer", "codes", "tree_nodes",
                "compressed_bytes", "compression_ratio"} <= set(stats)

    def test_decode_tree_is_cached(self, census_batch):
        toc = TOCMatrix.encode(census_batch)
        assert toc.decode_tree is toc.decode_tree


class TestTOCMatrixOps:
    def test_all_ops_match_dense(self, census_batch, rng):
        toc = TOCMatrix.encode(census_batch)
        n_rows, n_cols = census_batch.shape
        v = rng.normal(size=n_cols)
        u = rng.normal(size=n_rows)
        m_right = rng.normal(size=(n_cols, 6))
        m_left = rng.normal(size=(6, n_rows))
        np.testing.assert_allclose(toc.matvec(v), census_batch @ v, rtol=1e-10)
        np.testing.assert_allclose(toc.rmatvec(u), u @ census_batch, rtol=1e-10)
        np.testing.assert_allclose(toc.matmat(m_right), census_batch @ m_right, rtol=1e-10)
        np.testing.assert_allclose(toc.rmatmat(m_left), m_left @ census_batch, rtol=1e-10)

    def test_scale_returns_new_matrix(self, census_batch):
        toc = TOCMatrix.encode(census_batch)
        scaled = toc.scale(2.0)
        assert scaled is not toc
        np.testing.assert_allclose(scaled.to_dense(), census_batch * 2.0)
        # The original must be untouched.
        np.testing.assert_allclose(toc.to_dense(), census_batch)

    def test_power(self, census_batch):
        toc = TOCMatrix.encode(census_batch)
        np.testing.assert_allclose(toc.power(2).to_dense(), census_batch**2)

    def test_add_scalar_returns_dense(self, census_batch):
        toc = TOCMatrix.encode(census_batch)
        result = toc.add_scalar(1.5)
        assert isinstance(result, np.ndarray)
        np.testing.assert_allclose(result, census_batch + 1.5)


class TestTOCVariants:
    def test_variant_sizes_are_ordered(self, census_batch):
        """More encoding layers must never increase the size on compressible data."""
        sparse_size = TOCMatrix.encode(census_batch, TOCVariant.SPARSE).nbytes
        logical_size = TOCMatrix.encode(census_batch, TOCVariant.SPARSE_AND_LOGICAL).nbytes
        full_size = TOCMatrix.encode(census_batch, TOCVariant.FULL).nbytes
        assert full_size < logical_size < sparse_size

    def test_all_variants_lossless(self, census_batch):
        for variant in TOCVariant:
            toc = TOCMatrix.encode(census_batch, variant)
            assert np.array_equal(toc.to_dense(), census_batch)

    def test_all_variants_support_ops(self, census_batch, rng):
        v = rng.normal(size=census_batch.shape[1])
        for variant in TOCVariant:
            toc = TOCMatrix.encode(census_batch, variant)
            np.testing.assert_allclose(toc.matvec(v), census_batch @ v, rtol=1e-10)


class TestTOCMatrixOnExtremeData:
    def test_very_sparse_batch(self, rcv1_batch, rng):
        toc = TOCMatrix.encode(rcv1_batch)
        assert np.array_equal(toc.to_dense(), rcv1_batch)
        v = rng.normal(size=rcv1_batch.shape[1])
        np.testing.assert_allclose(toc.matvec(v), rcv1_batch @ v, rtol=1e-9)

    def test_fully_dense_batch(self, dense_batch, rng):
        toc = TOCMatrix.encode(dense_batch)
        assert np.array_equal(toc.to_dense(), dense_batch)
        u = rng.normal(size=dense_batch.shape[0])
        np.testing.assert_allclose(toc.rmatvec(u), u @ dense_batch, rtol=1e-9)

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError):
            TOCMatrix.encode(np.ones(5))


class TestEncodeToBytes:
    def test_round_trips_through_from_bytes(self, census_batch):
        raw = TOCMatrix.encode_to_bytes(census_batch)
        assert isinstance(raw, bytes)
        restored = TOCMatrix.from_bytes(raw)
        np.testing.assert_allclose(restored.to_dense(), census_batch)
        assert restored.to_bytes() == raw
