"""Tests for the scheme advisor (Section 5.1's 'test on a sample' advice)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import recommend_scheme


class TestRecommendScheme:
    def test_reports_cover_all_default_schemes(self, census_batch):
        recommendation = recommend_scheme(census_batch)
        assert len(recommendation.reports) == 8
        assert recommendation.sample_shape == census_batch.shape

    def test_reports_sorted_best_first(self, census_batch):
        recommendation = recommend_scheme(census_batch)
        scores = [report.score for report in recommendation.reports]
        assert scores == sorted(scores, reverse=True)

    def test_moderate_sparsity_prefers_toc(self, census_batch):
        """On the repetitive moderately-sparse profile the advisor picks TOC:
        it compresses far better than the LMC schemes and, unlike Gzip, its
        matrix operations do not pay a decompression."""
        assert recommend_scheme(census_batch).best.name == "TOC"

    def test_very_sparse_data_ranks_csr_family_high(self, rcv1_batch):
        recommendation = recommend_scheme(rcv1_batch)
        assert recommendation.best.name in {"CSR", "CVI", "TOC"}

    def test_dense_noise_does_not_recommend_sparse_schemes(self, dense_batch):
        best = recommend_scheme(dense_batch).best
        assert best.compression_ratio <= 1.5

    def test_subset_of_schemes(self, census_batch):
        recommendation = recommend_scheme(census_batch, schemes=["DEN", "CSR"])
        assert recommendation.ranked_names() == ["CSR", "DEN"] or recommendation.ranked_names() == ["DEN", "CSR"]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            recommend_scheme(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            recommend_scheme(np.ones(5))
