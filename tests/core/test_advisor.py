"""Tests for the scheme advisor (Section 5.1's 'test on a sample' advice)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import (
    SchemeReport,
    _calibrated_rank_key,
    _fallback_rank_key,
    recommend_scheme,
)
from repro.core.calibration import (
    CALIBRATION_OPS,
    CALIBRATION_VERSION,
    Calibration,
    platform_fingerprint,
)


def fake_calibration(costs: dict[str, float], level: float = 0.0) -> Calibration:
    """A hand-built calibration: every op of a scheme costs ``costs[name]``."""
    return Calibration(
        version=CALIBRATION_VERSION,
        created_unix=0.0,
        git_commit=None,
        platform=platform_fingerprint(),
        rows=96,
        cols=32,
        sparsity_levels=(level,),
        timings={
            name: {repr(float(level)): {op: seconds for op in CALIBRATION_OPS}}
            for name, seconds in costs.items()
        },
    )


class TestRecommendScheme:
    def test_reports_cover_all_default_schemes(self, census_batch):
        recommendation = recommend_scheme(census_batch)
        assert len(recommendation.reports) == 8
        assert recommendation.sample_shape == census_batch.shape

    def test_reports_sorted_best_first(self, census_batch):
        recommendation = recommend_scheme(census_batch)
        scores = [report.score for report in recommendation.reports]
        assert scores == sorted(scores, reverse=True)

    def test_moderate_sparsity_prefers_toc(self, census_batch):
        """On the repetitive moderately-sparse profile the advisor picks TOC:
        it compresses far better than the LMC schemes and, unlike Gzip, its
        matrix operations do not pay a decompression."""
        assert recommend_scheme(census_batch).best.name == "TOC"

    def test_very_sparse_data_ranks_csr_family_high(self, rcv1_batch):
        recommendation = recommend_scheme(rcv1_batch)
        assert recommendation.best.name in {"CSR", "CVI", "TOC"}

    def test_dense_noise_does_not_recommend_sparse_schemes(self, dense_batch):
        best = recommend_scheme(dense_batch).best
        assert best.compression_ratio <= 1.5

    def test_subset_of_schemes(self, census_batch):
        recommendation = recommend_scheme(census_batch, schemes=["DEN", "CSR"])
        assert recommendation.ranked_names() == ["CSR", "DEN"] or recommendation.ranked_names() == ["DEN", "CSR"]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            recommend_scheme(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            recommend_scheme(np.ones(5))

    def test_rejects_unknown_workload(self, census_batch):
        with pytest.raises(ValueError, match="unknown workload"):
            recommend_scheme(census_batch, workload="batch-oltp")

    def test_fallback_score_is_ratio_times_flat_penalty(self, census_batch):
        """The no-calibration ranking is exactly the historical formula."""
        recommendation = recommend_scheme(census_batch)
        assert not recommendation.calibrated
        for report in recommendation.reports:
            penalty = 1.0 if report.supports_direct_ops else 0.25
            assert report.score == pytest.approx(report.compression_ratio * penalty)
            assert report.measured_cost is None
        by_name = {r.name: r for r in recommendation.reports}
        names = recommendation.ranked_names()
        assert names == sorted(names, key=lambda n: (-by_name[n].score, n))


class TestDeterministicTieBreak:
    def test_fallback_ties_break_on_name(self):
        tied = [
            SchemeReport(name=n, compression_ratio=2.0, supports_direct_ops=True)
            for n in ("Zeta", "Alpha", "Mid")
        ]
        assert [r.name for r in sorted(tied, key=_fallback_rank_key)] == [
            "Alpha", "Mid", "Zeta",
        ]

    def test_calibrated_ties_break_on_name(self):
        tied = [
            SchemeReport(n, 2.0, True, measured_cost=1e-9)
            for n in ("Zeta", "Alpha", "Mid")
        ]
        assert [r.name for r in sorted(tied, key=_calibrated_rank_key)] == [
            "Alpha", "Mid", "Zeta",
        ]

    def test_ranking_invariant_to_scheme_input_order(self, census_batch):
        forward = recommend_scheme(census_batch, schemes=["DEN", "CSR", "Gzip", "Snappy"])
        reverse = recommend_scheme(census_batch, schemes=["Snappy", "Gzip", "CSR", "DEN"])
        assert forward.ranked_names() == reverse.ranked_names()
        assert forward.best.name == reverse.best.name


class TestSourceDtypeBaseline:
    def test_float32_ratio_uses_4_byte_baseline(self, census_batch):
        """Schemes upcast to float64 internally; the ratio baseline must not.

        The old float64 baseline credited float32 datasets with 2x the
        compression they actually achieve against their own footprint.
        """
        as32 = census_batch.astype(np.float32)
        as64 = as32.astype(np.float64)  # identical values, 8-byte dtype
        r64 = {r.name: r for r in recommend_scheme(as64).reports}
        r32 = {r.name: r for r in recommend_scheme(as32).reports}
        for name, report in r32.items():
            assert report.compression_ratio == pytest.approx(
                r64[name].compression_ratio / 2.0, rel=1e-9
            )

    def test_object_dtype_falls_back_to_8_byte_baseline(self):
        batch64 = np.array([[0.0, 1.5], [1.5, 0.0]])
        as_object = batch64.astype(object)
        ratio64 = recommend_scheme(batch64, schemes=["DEN"]).best.compression_ratio
        ratio_obj = recommend_scheme(as_object, schemes=["DEN"]).best.compression_ratio
        assert ratio_obj == pytest.approx(ratio64)


class TestCalibratedRanking:
    def test_calibrated_pick_follows_measured_cost(self, census_batch):
        # TOC's ratio wins the fallback on this batch, but a calibration
        # saying its kernels are 1000x slower must flip the serve pick.
        names = ["DEN", "TOC"]
        cal = fake_calibration({"DEN": 1e-9, "TOC": 1e-6})
        flat = recommend_scheme(census_batch, schemes=names)
        measured = recommend_scheme(
            census_batch, schemes=names, workload="serve", calibration=cal
        )
        assert flat.best.name == "TOC"
        assert measured.best.name == "DEN"
        assert measured.calibrated
        assert all(r.measured_cost is not None for r in measured.reports)

    def test_calibration_defaults_workload_to_train(self, census_batch):
        cal = fake_calibration({"DEN": 1e-9, "TOC": 1e-6})
        measured = recommend_scheme(census_batch, schemes=["DEN", "TOC"], calibration=cal)
        assert measured.workload == "train"

    def test_workload_without_calibration_keeps_fallback_ranking(self, census_batch):
        plain = recommend_scheme(census_batch)
        with_workload = recommend_scheme(census_batch, workload="serve")
        assert not with_workload.calibrated
        assert with_workload.ranked_names() == plain.ranked_names()
