"""Tests for the prefix-tree encoding algorithm (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.logical import LogicalEncoding, logical_decode, prefix_tree_encode
from repro.core.sparse import sparse_decode, sparse_encode
from tests.conftest import random_sparse_matrix


def _roundtrip(dense: np.ndarray) -> np.ndarray:
    encoding, _ = prefix_tree_encode(sparse_encode(dense))
    return sparse_decode(logical_decode(encoding))


class TestPrefixTreeEncode:
    def test_roundtrip_random(self, rng):
        dense = random_sparse_matrix(rng, 20, 12)
        assert np.array_equal(_roundtrip(dense), dense)

    def test_roundtrip_zero_matrix(self):
        dense = np.zeros((4, 5))
        assert np.array_equal(_roundtrip(dense), dense)

    def test_roundtrip_single_row(self):
        dense = np.array([[1.0, 0.0, 2.0, 2.0]])
        assert np.array_equal(_roundtrip(dense), dense)

    def test_roundtrip_single_cell(self):
        dense = np.array([[7.0]])
        assert np.array_equal(_roundtrip(dense), dense)

    def test_identical_rows_compress_to_single_codes(self):
        # After the tree warms up, a row identical to a previous one is
        # encoded with very few codes (eventually one).
        row = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        dense = np.tile(row, (10, 1))
        encoding, _ = prefix_tree_encode(sparse_encode(dense))
        last_row_codes = encoding.row_codes(encoding.n_rows - 1)
        assert last_row_codes.size <= 2

    def test_codes_never_reference_root(self, rng):
        dense = random_sparse_matrix(rng, 15, 10)
        encoding, _ = prefix_tree_encode(sparse_encode(dense))
        assert encoding.codes.size == 0 or encoding.codes.min() >= 1

    def test_first_layer_holds_all_unique_pairs(self, rng):
        dense = random_sparse_matrix(rng, 12, 6)
        table = sparse_encode(dense)
        encoding, _ = prefix_tree_encode(table)
        expected = {
            (int(c), float(v)) for c, v in zip(table.columns.tolist(), table.values.tolist())
        }
        got = set(
            zip(encoding.first_layer_columns.tolist(), encoding.first_layer_values.tolist())
        )
        assert got == expected

    def test_number_of_codes_never_exceeds_pairs(self, rng):
        dense = random_sparse_matrix(rng, 25, 10)
        table = sparse_encode(dense)
        encoding, _ = prefix_tree_encode(table)
        assert encoding.n_codes <= table.nnz

    def test_encoding_is_deterministic(self, census_batch):
        first, _ = prefix_tree_encode(sparse_encode(census_batch))
        second, _ = prefix_tree_encode(sparse_encode(census_batch))
        assert np.array_equal(first.codes, second.codes)
        assert np.array_equal(first.first_layer_values, second.first_layer_values)

    def test_tree_node_count_matches_formula(self, rng):
        # |C'| (non-root) = |I| + |D| - number of non-empty rows.
        dense = random_sparse_matrix(rng, 18, 9)
        encoding, tree = prefix_tree_encode(sparse_encode(dense))
        non_empty = sum(1 for codes in encoding.iter_rows() if codes.size)
        assert len(tree) - 1 == encoding.n_first_layer + encoding.n_codes - non_empty
        assert encoding.n_tree_nodes == len(tree) - 1


class TestLogicalEncodingValidation:
    def test_row_offsets_must_match_rows(self):
        with pytest.raises(ValueError):
            LogicalEncoding(
                first_layer_columns=np.array([0]),
                first_layer_values=np.array([1.0]),
                codes=np.array([1]),
                row_offsets=np.array([0, 1]),
                shape=(2, 2),
            )

    def test_codes_must_not_reference_root(self):
        with pytest.raises(ValueError):
            LogicalEncoding(
                first_layer_columns=np.array([0]),
                first_layer_values=np.array([1.0]),
                codes=np.array([0]),
                row_offsets=np.array([0, 1]),
                shape=(1, 2),
            )

    def test_first_layer_alignment_enforced(self):
        with pytest.raises(ValueError):
            LogicalEncoding(
                first_layer_columns=np.array([0, 1]),
                first_layer_values=np.array([1.0]),
                codes=np.array([1]),
                row_offsets=np.array([0, 1]),
                shape=(1, 2),
            )


class TestLogicalProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=16),
            elements=st.sampled_from([0.0, 0.0, 1.0, 2.5, -3.0]),
        )
    )
    @settings(max_examples=75, deadline=None)
    def test_roundtrip_property(self, dense):
        assert np.array_equal(_roundtrip(dense), dense)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=12),
            elements=st.sampled_from([0.0, 1.0, 2.0]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_compression_never_expands_code_count(self, dense):
        table = sparse_encode(dense)
        encoding, _ = prefix_tree_encode(table)
        assert encoding.n_codes <= max(table.nnz, 0)
