"""Tests pinned to the running example of Figure 3 and Tables 2/4 of the paper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decode_tree import build_decode_tree
from repro.core.logical import prefix_tree_encode
from repro.core.sparse import sparse_decode, sparse_encode
from repro.core.toc import TOCMatrix


@pytest.fixture()
def paper_matrix() -> np.ndarray:
    """The 4x4 original table A of Figure 3."""
    return np.array(
        [
            [1.1, 2.0, 3.0, 1.4],
            [1.1, 2.0, 3.0, 0.0],
            [0.0, 1.1, 3.0, 1.4],
            [1.1, 2.0, 0.0, 0.0],
        ]
    )


class TestSparseEncoding:
    def test_pairs_match_figure_3(self, paper_matrix):
        table = sparse_encode(paper_matrix)
        # R1 -> [1:1.1, 2:2, 3:3, 4:1.4] using 1-based columns in the paper;
        # we use 0-based columns internally.
        cols, vals = table.row_pairs(0)
        assert cols.tolist() == [0, 1, 2, 3]
        assert vals.tolist() == [1.1, 2.0, 3.0, 1.4]
        cols, vals = table.row_pairs(3)
        assert cols.tolist() == [0, 1]
        assert vals.tolist() == [1.1, 2.0]

    def test_roundtrip(self, paper_matrix):
        table = sparse_encode(paper_matrix)
        assert np.array_equal(sparse_decode(table), paper_matrix)

    def test_nnz(self, paper_matrix):
        assert sparse_encode(paper_matrix).nnz == 12


class TestLogicalEncoding:
    def test_encoded_table_matches_figure_3(self, paper_matrix):
        """The encoded table D should be [[1,2,3,4],[6,3],[5,8],[6]]."""
        table = sparse_encode(paper_matrix)
        encoding, _ = prefix_tree_encode(table)
        rows = [codes.tolist() for codes in encoding.iter_rows()]
        assert rows == [[1, 2, 3, 4], [6, 3], [5, 8], [6]]

    def test_first_layer_matches_figure_3(self, paper_matrix):
        """I should hold the five unique pairs 1:1.1, 2:2, 3:3, 4:1.4, 2:1.1."""
        table = sparse_encode(paper_matrix)
        encoding, _ = prefix_tree_encode(table)
        pairs = list(
            zip(encoding.first_layer_columns.tolist(), encoding.first_layer_values.tolist())
        )
        assert pairs == [(0, 1.1), (1, 2.0), (2, 3.0), (3, 1.4), (1, 1.1)]

    def test_tree_sequences_match_table_2(self, paper_matrix):
        """Nodes 6..10 represent the sequences listed in Table 2."""
        table = sparse_encode(paper_matrix)
        _, tree = prefix_tree_encode(table)
        assert tree.sequence(6) == [(0, 1.1), (1, 2.0)]
        assert tree.sequence(7) == [(1, 2.0), (2, 3.0)]
        assert tree.sequence(8) == [(2, 3.0), (3, 1.4)]
        assert tree.sequence(9) == [(0, 1.1), (1, 2.0), (2, 3.0)]
        assert tree.sequence(10) == [(1, 1.1), (2, 3.0)]
        assert len(tree) == 11  # root + 10 nodes


class TestDecodeTree:
    def test_parent_indexes_match_table_4(self, paper_matrix):
        table = sparse_encode(paper_matrix)
        encoding, _ = prefix_tree_encode(table)
        ctree = build_decode_tree(encoding)
        assert ctree.parents.tolist() == [0, 0, 0, 0, 0, 0, 1, 2, 3, 6, 5]

    def test_keys_match_table_4(self, paper_matrix):
        table = sparse_encode(paper_matrix)
        encoding, _ = prefix_tree_encode(table)
        ctree = build_decode_tree(encoding)
        keys = list(zip(ctree.key_columns.tolist()[1:], ctree.key_values.tolist()[1:]))
        assert keys == [
            (0, 1.1),
            (1, 2.0),
            (2, 3.0),
            (3, 1.4),
            (1, 1.1),
            (1, 2.0),
            (2, 3.0),
            (3, 1.4),
            (2, 3.0),
            (2, 3.0),
        ]

    def test_sequences_match_encoding_tree(self, paper_matrix):
        table = sparse_encode(paper_matrix)
        encoding, enc_tree = prefix_tree_encode(table)
        ctree = build_decode_tree(encoding)
        for node in range(1, len(enc_tree)):
            cols, vals = ctree.sequence(node)
            assert list(zip(cols, vals)) == enc_tree.sequence(node)


class TestTOCMatrixOnPaperExample:
    def test_lossless_roundtrip(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        assert np.array_equal(toc.to_dense(), paper_matrix)

    def test_serialisation_roundtrip(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        restored = TOCMatrix.from_bytes(toc.to_bytes())
        assert np.array_equal(restored.to_dense(), paper_matrix)

    def test_matvec(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        v = np.array([1.0, -2.0, 0.5, 3.0])
        np.testing.assert_allclose(toc.matvec(v), paper_matrix @ v)

    def test_rmatvec(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        v = np.array([0.5, -1.0, 2.0, 4.0])
        np.testing.assert_allclose(toc.rmatvec(v), v @ paper_matrix)

    def test_matmat(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        m = np.arange(8, dtype=np.float64).reshape(4, 2)
        np.testing.assert_allclose(toc.matmat(m), paper_matrix @ m)

    def test_rmatmat(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        m = np.arange(12, dtype=np.float64).reshape(3, 4)
        np.testing.assert_allclose(toc.rmatmat(m), m @ paper_matrix)

    def test_scale(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        np.testing.assert_allclose(toc.scale(2.5).to_dense(), paper_matrix * 2.5)

    def test_add_scalar(self, paper_matrix):
        toc = TOCMatrix.encode(paper_matrix)
        np.testing.assert_allclose(toc.add_scalar(3.0), paper_matrix + 3.0)
