"""Tests for the serving half of the facade: ``open_service``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset, Estimator, open_service
from repro.data.registry import DATASET_PROFILES


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    """One trained + saved estimator over a persisted shard directory."""
    features, labels = DATASET_PROFILES["census"].classification(300, seed=3)
    shard_dir = tmp_path_factory.mktemp("api-shards")
    registry = tmp_path_factory.mktemp("api-registry")
    dataset = Dataset.create(
        shard_dir, features, labels, scheme="auto", batch_size=75, executor="serial"
    )
    estimator = Estimator("logreg", epochs=2, learning_rate=0.3)
    estimator.fit(dataset)
    estimator.save(registry)
    return registry, dataset, estimator


class TestOpenService:
    def test_round_trip_against_estimator(self, published):
        registry, dataset, estimator = published
        service, checkpoint = open_service(registry)
        with service:
            assert checkpoint.version == 1
            assert service.store.n_rows == dataset.n_examples
            ids = [0, 7, 131, 299]
            served = service.predict_ids(ids)
            direct = estimator.predict(service.store.get_rows(ids))
            np.testing.assert_array_equal(served, direct)

    def test_micro_batching_and_cache_wired(self, published):
        registry, _, _ = published
        service, _ = open_service(registry, max_batch_size=16, cache_size=64)
        with service:
            first = service.predict_id(5)
            second = service.predict_id(5)
            assert first == second
            assert service.stats.cache_hits == 1

    def test_missing_registry_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_service(tmp_path / "none")

    def test_shard_dir_override(self, published, tmp_path):
        registry, dataset, _ = published
        service, _ = open_service(registry, shard_dir=dataset.path)
        with service:
            assert service.store.n_rows == dataset.n_examples
