"""``Dataset.scan`` / ``take`` / ``__getitem__`` / ``fsck`` — the query surface.

The core property test lives here: random predicates x every scheme x
mixed-scheme manifests, always compared bit-for-bit against the dense NumPy
reference, with push-down on and off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset, FsckReport, ScanResult
from repro.compression.registry import available_schemes
from repro.exec.predicates import COMPARE_OPS, Compare

ALL_SCHEMES = available_schemes()


def quantised(rng, rows, cols=6):
    return rng.choice([0.0, 0.5, 1.0, 2.5], size=(rows, cols), p=(0.5, 0.2, 0.2, 0.1))


def random_predicate(rng, cols):
    ops = list(COMPARE_OPS)
    values = (0.0, 0.5, 1.0, 2.5)

    def leaf():
        return Compare(int(rng.integers(cols)), ops[rng.integers(len(ops))],
                       values[rng.integers(len(values))])

    predicate = leaf()
    for _ in range(int(rng.integers(0, 3))):
        other = leaf()
        predicate = (predicate & other) if rng.integers(2) else (predicate | ~other)
    return predicate


class _EvalDense:
    def __init__(self, dense):
        self.dense = dense

    def compare(self, col, op, value):
        return COMPARE_OPS[op](self.dense[:, col], value)


@pytest.fixture(scope="module")
def quantised_features():
    rng = np.random.default_rng(17)
    features = quantised(rng, rows=160)
    labels = rng.integers(0, 2, size=160).astype(np.float64)
    return features, labels


def _make(tmp_path, features, labels, scheme, batch=40):
    return Dataset.create(
        tmp_path / "ds", features, labels, scheme=scheme, batch_size=batch,
        shuffle=False, executor="serial",
    )


class TestScanProperty:
    """Random predicates x schemes x push-down modes == dense reference."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_per_scheme_matches_dense(self, tmp_path, quantised_features, scheme):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, scheme)
        rng = np.random.default_rng(hash(scheme) % 2**32)
        for _ in range(4):
            predicate = random_predicate(rng, features.shape[1])
            expected = predicate.evaluate(_EvalDense(features))
            for pushdown in (True, False):
                result = dataset.scan(where=predicate, pushdown=pushdown)
                np.testing.assert_array_equal(result.rows, features[expected])
                np.testing.assert_array_equal(result.row_ids, np.flatnonzero(expected))

    def test_mixed_scheme_manifest(self, tmp_path, quantised_features):
        features, labels = quantised_features
        schemes = [ALL_SCHEMES[i % len(ALL_SCHEMES)] for i in range(8)]
        dataset = Dataset.create(
            tmp_path / "mixed", features, labels, scheme=schemes, batch_size=20,
            shuffle=False, executor="serial",
        )
        assert dataset.is_mixed if hasattr(dataset, "is_mixed") else True
        rng = np.random.default_rng(99)
        for _ in range(6):
            predicate = random_predicate(rng, features.shape[1])
            expected = predicate.evaluate(_EvalDense(features))
            result = dataset.scan(where=predicate)
            np.testing.assert_array_equal(result.rows, features[expected])
        assert len(result.schemes) > 1
        assert result.pushdown_shards + result.fallback_shards == 8

    def test_textual_where_and_projection(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "DVI")
        result = dataset.scan(where="c0 == 0.5 or c2 > 1", columns=[4, 1])
        mask = (features[:, 0] == 0.5) | (features[:, 2] > 1)
        np.testing.assert_array_equal(result.rows, features[mask][:, [4, 1]])
        assert result.columns == [4, 1]

    def test_limit_and_counters(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "CVI")
        result = dataset.scan(where="c1 >= 0.5", limit=7)
        mask = features[:, 1] >= 0.5
        np.testing.assert_array_equal(result.rows, features[mask][:7])
        assert result.n_rows_matched == 7
        assert isinstance(result, ScanResult)

    def test_aggregates_match_numpy(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "auto")
        mask = features[:, 0] >= 0.5
        kept = features[mask]
        result = dataset.scan(where="c0 >= 0.5", agg="count,sum:c3,mean:c3,min:c1,max:c1")
        assert result.aggregates["count"] == int(mask.sum())
        assert np.isclose(result.aggregates["sum(c3)"], kept[:, 3].sum())
        assert np.isclose(result.aggregates["mean(c3)"], kept[:, 3].mean())
        assert result.aggregates["min(c1)"] == kept[:, 1].min()
        assert result.aggregates["max(c1)"] == kept[:, 1].max()


class TestTake:
    def test_take_matches_source_rows(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "auto")
        ids = [0, 159, 40, 39, 7, 7]  # shard boundaries, duplicates, disorder
        np.testing.assert_array_equal(dataset.take(ids), features[ids])

    def test_take_empty_and_ndarray_input(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "CVI")
        assert dataset.take([]).shape == (0, features.shape[1])
        ids = np.array([10, 90])
        np.testing.assert_array_equal(dataset.take(ids), features[ids])

    def test_take_out_of_range(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "DEN")
        with pytest.raises(IndexError):
            dataset.take([features.shape[0]])
        with pytest.raises(IndexError):
            dataset.take([-1])

    def test_getitem_int_slice_list(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "auto")
        np.testing.assert_array_equal(dataset[5], features[5])
        np.testing.assert_array_equal(dataset[-1], features[-1])
        np.testing.assert_array_equal(dataset[10:70:7], features[10:70:7])
        np.testing.assert_array_equal(dataset[[3, 80]], features[[3, 80]])


class TestFsck:
    def test_clean_directory(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "TOC")
        report = dataset.fsck()
        assert isinstance(report, FsckReport)
        assert report.clean
        assert report.orphans == () and report.missing == ()

    def test_orphans_swept_but_foreign_files_kept(self, tmp_path, quantised_features):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "TOC")
        stale = dataset.path / "shard-00001.g4.bin"
        stale.write_bytes(b"interrupted compact")
        tmp_manifest = dataset.path / ".manifest.json.tmp42"
        tmp_manifest.write_bytes(b"{}")
        foreign = dataset.path / "README.txt"
        foreign.write_text("not ours")

        dry = dataset.fsck(remove=False)
        assert set(dry.orphans) == {"shard-00001.g4.bin", ".manifest.json.tmp42"}
        assert dry.removed == ()
        assert dry.bytes_reclaimable > 0
        assert stale.exists()

        swept = dataset.fsck()
        assert set(swept.removed) == set(dry.orphans)
        assert not stale.exists() and not tmp_manifest.exists()
        assert foreign.exists()  # unknown files are never touched
        assert dataset.fsck().clean
        # The dataset still reads fine afterwards.
        assert dataset.scan(agg="count").aggregates["count"] == features.shape[0]

    def test_missing_referenced_shard_reported_not_repaired(
        self, tmp_path, quantised_features
    ):
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "DEN")
        victim = dataset.sharded.shards[1].filename
        (dataset.path / victim).unlink()
        report = dataset.fsck()
        assert report.missing == (victim,)
        assert not report.clean

    def test_interrupted_compact_leftovers(self, tmp_path, quantised_features):
        """A staged-but-unpublished generation is exactly what fsck removes."""
        features, labels = quantised_features
        dataset = _make(tmp_path, features, labels, "DEN")
        # Stage a re-encode without rewriting the manifest — a mid-compact crash.
        sharded = dataset.sharded
        old_name = sharded.shards[0].filename
        payload = (dataset.path / old_name).read_bytes()
        sharded.stage_shard(0, payload, "DEN")
        staged_name = sharded.shards[0].filename
        assert staged_name != old_name
        # A reopened handle (the manifest still names the old file) sees the
        # staged generation as the orphan.
        reopened = Dataset.open(dataset.path)
        report = reopened.fsck()
        assert staged_name in report.removed
        assert reopened.scan(agg="count").aggregates["count"] == features.shape[0]
