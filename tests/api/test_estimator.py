"""Tests for the :class:`repro.api.Estimator` facade."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Dataset, Estimator
from repro.data.registry import DATASET_PROFILES
from repro.ml.models import FeedForwardNetwork, LogisticRegressionModel


@pytest.fixture(scope="module")
def census():
    return DATASET_PROFILES["census"].classification(400, seed=3)


@pytest.fixture()
def dataset(tmp_path, census):
    features, labels = census
    return Dataset.create(
        tmp_path / "shards", features, labels, scheme="auto", batch_size=100,
        executor="serial",
    )


class TestConstruction:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            Estimator("decision_tree")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown compression scheme"):
            Estimator("logreg", scheme="LZ77")

    def test_bad_hyperparameters_fail_fast(self):
        with pytest.raises(ValueError):
            Estimator("logreg", epochs=0)

    def test_model_instance_is_trained_in_place(self, census):
        features, labels = census
        model = LogisticRegressionModel(features.shape[1], seed=0)
        estimator = Estimator(model, scheme="TOC", epochs=1, learning_rate=0.3)
        estimator.fit(features, labels)
        assert estimator.model is model  # not silently rebuilt

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            Estimator("logreg", workload="oltp")

    def test_workload_defaults_to_train_and_round_trips(self):
        estimator = Estimator("logreg")
        assert estimator.workload == "train"
        assert estimator.get_params()["workload"] == "train"
        assert Estimator("logreg", workload=None).get_params()["workload"] is None

    def test_auto_scheme_with_workload_trains_in_memory(self, census):
        features, labels = census
        report = Estimator(
            "logreg", scheme="auto", workload="train", epochs=1, learning_rate=0.3
        ).fit(features, labels)
        assert report.backend == "in-memory"
        assert np.isfinite(report.final_loss)


class TestRouting:
    def test_arrays_train_in_memory(self, census):
        features, labels = census
        report = Estimator("logreg", scheme="TOC", epochs=2, learning_rate=0.3).fit(
            features, labels
        )
        assert report.backend == "in-memory"
        assert report.ooc is None
        assert report.n_examples == features.shape[0]
        assert np.isfinite(report.final_loss)

    def test_dataset_trains_out_of_core(self, dataset):
        report = Estimator("logreg", epochs=2, learning_rate=0.3).fit(dataset)
        assert report.backend == "out-of-core"
        assert report.ooc is not None
        assert report.dataset is dataset

    def test_shard_dir_routes_arrays_out_of_core(self, tmp_path, census):
        features, labels = census
        report = Estimator(
            "logreg", scheme="TOC", epochs=1, learning_rate=0.3, executor="serial"
        ).fit(features, labels, shard_dir=tmp_path / "spill")
        assert report.backend == "out-of-core"
        assert (tmp_path / "spill" / "manifest.json").exists()
        assert report.dataset.stats().scheme_counts == {"TOC": 2}

    def test_path_input_opens_the_dataset(self, dataset):
        report = Estimator("logreg", epochs=1, learning_rate=0.3).fit(str(dataset.path))
        assert report.backend == "out-of-core"

    def test_missing_path_fails_cleanly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            Estimator("logreg").fit(tmp_path / "nope")

    def test_dataset_with_labels_rejected(self, dataset):
        with pytest.raises(ValueError, match="inside a Dataset"):
            Estimator("logreg").fit(dataset, np.zeros(400))

    def test_scipy_sparse_trains_in_memory(self, census):
        features, labels = census
        report = Estimator("logreg", epochs=1, learning_rate=0.3).fit(
            sp.csr_matrix(features), labels
        )
        assert report.backend == "in-memory"
        assert np.isfinite(report.final_loss)

    def test_array_without_labels_rejected(self, census):
        with pytest.raises(ValueError, match="labels"):
            Estimator("logreg").fit(census[0])

    def test_shard_dir_without_labels_rejected(self, tmp_path, census):
        with pytest.raises(ValueError, match="labels"):
            Estimator("logreg").fit(census[0], shard_dir=tmp_path / "spill")


class TestTrainingBehaviour:
    def test_compressed_training_matches_dense(self, census):
        """The paper's core claim through the facade: TOC training is exact."""
        features, labels = census
        kwargs = dict(epochs=2, learning_rate=0.3, batch_size=100, seed=0)
        toc = Estimator("logreg", scheme="TOC", **kwargs)
        raw = Estimator("logreg", scheme=None, **kwargs)
        toc.fit(features, labels)
        raw.fit(features, labels)
        np.testing.assert_allclose(
            toc.model.get_parameters(), raw.model.get_parameters()
        )

    def test_fit_resets_spec_built_model(self, census):
        features, labels = census
        estimator = Estimator("logreg", scheme="TOC", epochs=1, learning_rate=0.3)
        estimator.fit(features, labels)
        first = estimator.model.get_parameters().copy()
        estimator.fit(features, labels)
        np.testing.assert_allclose(estimator.model.get_parameters(), first)

    def test_partial_fit_continues(self, census):
        features, labels = census
        estimator = Estimator("logreg", scheme="TOC", epochs=1, learning_rate=0.3)
        report = estimator.partial_fit(features, labels)
        assert report.epochs == 1
        before = estimator.model.get_parameters().copy()
        estimator.partial_fit(features, labels, epochs=2)
        assert not np.allclose(before, estimator.model.get_parameters())

    def test_partial_fit_over_dataset(self, dataset):
        estimator = Estimator("logreg", learning_rate=0.3)
        first = estimator.partial_fit(dataset)
        second = estimator.partial_fit(dataset)
        assert first.backend == second.backend == "out-of-core"

    def test_ffnn_spec(self, census):
        features, labels = census
        estimator = Estimator(
            "ffnn", scheme="TOC", hidden_sizes=(16,), n_classes=2,
            epochs=1, learning_rate=0.5, batch_size=100,
        )
        estimator.fit(features, labels.astype(int))
        assert isinstance(estimator.model, FeedForwardNetwork)
        assert set(np.unique(estimator.predict(features))) <= {0.0, 1.0}

    def test_eval_fn_recorded(self, census):
        features, labels = census
        report = Estimator("logreg", scheme="TOC", epochs=2, learning_rate=0.3).fit(
            features, labels, eval_fn=lambda model: 0.5
        )
        assert report.history.epoch_metrics == [0.5, 0.5]


class TestPrediction:
    def test_predict_before_fit_rejected(self, census):
        with pytest.raises(RuntimeError, match="fit"):
            Estimator("logreg").predict(census[0])

    def test_predict_dataset_matches_array_predictions(self, census, dataset):
        estimator = Estimator("logreg", epochs=2, learning_rate=0.3)
        estimator.fit(dataset)
        from_shards = estimator.predict(dataset)
        assert from_shards.shape == (dataset.n_examples,)
        # Same rows through the dense path agree exactly.
        dense = np.concatenate([m.to_dense() for m, _ in dataset.batches()])
        np.testing.assert_array_equal(from_shards, estimator.predict(dense))

    def test_predict_proba_routes_or_raises(self, census):
        features, labels = census
        logreg = Estimator("logreg", scheme="TOC", epochs=1, learning_rate=0.3)
        logreg.fit(features, labels)
        proba = logreg.predict_proba(features)
        assert np.all((proba >= 0) & (proba <= 1))
        svm = Estimator("svm", scheme="TOC", epochs=1, learning_rate=0.3)
        svm.fit(features, labels)
        with pytest.raises(AttributeError):
            svm.predict_proba(features)


class TestPersistence:
    def test_save_before_fit_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            Estimator("logreg").save(tmp_path)

    def test_save_load_round_trip_with_api_meta(self, tmp_path, census, dataset):
        features, _ = census
        estimator = Estimator("logreg", epochs=2, learning_rate=0.3, batch_size=100)
        estimator.fit(dataset)
        version, path = estimator.save(tmp_path / "registry")
        assert version == 1
        assert path.exists()

        loaded = Estimator.load(tmp_path / "registry")
        assert loaded.checkpoint.format_version == 2
        assert loaded.checkpoint.api_meta["estimator"]["model"] == "logistic_regression"
        assert loaded.checkpoint.api_meta["fit"]["backend"] == "out-of-core"
        assert loaded.checkpoint.dataset_meta["shard_dir"] == str(dataset.path.resolve())
        assert loaded.epochs == 2
        assert loaded.batch_size == 100
        np.testing.assert_array_equal(
            loaded.predict(features), estimator.predict(features)
        )

    def test_loaded_estimator_continues_training(self, tmp_path, census):
        features, labels = census
        estimator = Estimator("logreg", scheme="TOC", epochs=1, learning_rate=0.3)
        estimator.fit(features, labels)
        estimator.save(tmp_path / "registry")

        loaded = Estimator.load(tmp_path / "registry")
        before = loaded.model.get_parameters().copy()
        loaded.partial_fit(features, labels)
        assert not np.allclose(before, loaded.model.get_parameters())

    def test_loaded_estimator_fit_trains_from_scratch(self, tmp_path, census):
        """fit() means "from scratch" even after load(); no silent warm start."""
        features, labels = census
        estimator = Estimator("logreg", scheme="TOC", epochs=2, learning_rate=0.3)
        estimator.fit(features, labels)
        estimator.save(tmp_path / "registry")

        loaded = Estimator.load(tmp_path / "registry")
        loaded.fit(features, labels)
        fresh = Estimator("logreg", scheme="TOC", epochs=2, learning_rate=0.3)
        fresh.fit(features, labels)
        np.testing.assert_allclose(
            loaded.model.get_parameters(), fresh.model.get_parameters()
        )

    def test_loaded_ffnn_refits_with_checkpointed_shape(self, tmp_path, census):
        features, labels = census
        estimator = Estimator(
            "ffnn", scheme="TOC", hidden_sizes=(16,), n_classes=2,
            epochs=1, learning_rate=0.5, batch_size=100,
        )
        estimator.fit(features, labels.astype(int))
        estimator.save(tmp_path / "registry")

        loaded = Estimator.load(tmp_path / "registry")
        loaded.fit(features, labels.astype(int))
        assert [w.shape for w in loaded.model.weights] == [
            w.shape for w in estimator.model.weights
        ]


class TestMulticlassSpec:
    """``"ovr:<base>"`` routes one-vs-rest through the facade end to end."""

    def _data(self, k=3, n=240, d=8, seed=4):
        rng = np.random.default_rng(seed)
        centers = rng.normal(scale=2.0, size=(k, d))
        labels = rng.integers(0, k, size=n)
        features = centers[labels] + rng.normal(scale=0.4, size=(n, d))
        return features, labels.astype(np.float64)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="one-vs-rest base"):
            Estimator("ovr:linreg")
        with pytest.raises(ValueError, match="'ovr:<base>'"):
            Estimator("ovrlogreg")

    def test_in_memory_multiclass_fit_predict(self):
        features, labels = self._data()
        estimator = Estimator(
            "ovr:logreg", n_classes=3, epochs=12, learning_rate=0.2, scheme=None
        )
        report = estimator.fit(features, labels)
        assert report.backend == "in-memory"
        assert (estimator.predict(features) == labels).mean() > 0.8
        proba = estimator.predict_proba(features)
        assert proba.shape == (features.shape[0], 3)

    def test_out_of_core_multiclass(self, tmp_path):
        features, labels = self._data()
        dataset = Dataset.create(
            tmp_path / "shards", features, labels, batch_size=60, executor="serial"
        )
        estimator = Estimator("ovr:svm", n_classes=3, epochs=12, learning_rate=0.1)
        report = estimator.fit(dataset)
        assert report.backend == "out-of-core"
        assert (estimator.predict(dataset) == dataset.labels()).mean() > 0.8

    def test_save_load_round_trips_spec(self, tmp_path):
        features, labels = self._data()
        estimator = Estimator(
            "ovr:logreg", n_classes=3, epochs=8, learning_rate=0.2, scheme=None
        )
        estimator.fit(features, labels)
        assert estimator.get_params()["model"] == "ovr:logistic_regression"
        estimator.save(tmp_path / "registry")
        loaded = Estimator.load(tmp_path / "registry")
        assert loaded.get_params()["model"] == "ovr:logistic_regression"
        assert loaded.n_classes == 3
        np.testing.assert_array_equal(
            loaded.predict(features), estimator.predict(features)
        )
        # fit() after load still means "from scratch" with the same spec.
        refit = loaded.fit(features, labels)
        assert refit.backend == "in-memory"
        assert (loaded.predict(features) == labels).mean() > 0.8
