"""Tests for the :class:`repro.api.Dataset` lifecycle handle."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Dataset
from repro.core.calibration import CALIBRATION_NAME, Calibration
from repro.data.registry import DATASET_PROFILES
from repro.engine.shards import MANIFEST_NAME, ShardedDataset
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig
from repro.serve.feature_store import FeatureStore


@pytest.fixture(scope="module")
def census():
    return DATASET_PROFILES["census"].classification(400, seed=3)


@pytest.fixture()
def dataset(tmp_path, census):
    features, labels = census
    return Dataset.create(
        tmp_path / "shards", features, labels, scheme="TOC", batch_size=100,
        executor="serial",
    )


class TestLifecycle:
    def test_create_open_round_trip(self, tmp_path, census, dataset):
        features, _ = census
        reopened = Dataset.open(dataset.path)
        assert len(reopened) == len(dataset) == 4
        assert reopened.n_examples == features.shape[0]
        assert reopened.scheme == "TOC"
        assert Dataset.exists(dataset.path)
        assert not Dataset.exists(tmp_path / "elsewhere")

    def test_create_unknown_scheme_rejected(self, tmp_path, census):
        features, labels = census
        with pytest.raises(KeyError):
            Dataset.create(tmp_path / "bad", features, labels, scheme="LZ77",
                           executor="serial")

    def test_batches_decode_losslessly(self, census, dataset):
        features, labels = census
        decoded_rows = sum(m.to_dense().shape[0] for m, _ in dataset.batches())
        assert decoded_rows == features.shape[0]
        all_labels = dataset.labels()
        assert all_labels.shape == labels.shape
        assert set(np.unique(all_labels)) <= set(np.unique(labels))

    def test_append_arrays_and_batches(self, census, dataset):
        features, labels = census
        n_before = len(dataset)
        added = dataset.append(features[:150], labels[:150], executor="serial")
        assert [a.batch_id for a in added] == [n_before, n_before + 1]

        added = dataset.append([(features[:40], labels[:40])], executor="serial")
        assert added[0].batch_id == n_before + 2
        reopened = Dataset.open(dataset.path)
        assert reopened.n_examples == features.shape[0] + 150 + 40

    def test_stats_reports_mix_and_ratio(self, census, dataset):
        stats = dataset.stats()
        assert stats.n_shards == 4
        assert stats.scheme_counts == {"TOC": 4}
        assert stats.n_cols == census[0].shape[1]
        assert stats.compression_ratio > 1.0
        assert not stats.is_mixed
        as_dict = stats.as_dict()
        assert as_dict["scheme_counts"] == {"TOC": 4}
        assert as_dict["compression_ratio"] == stats.compression_ratio
        json.dumps(as_dict)  # bench provenance must be JSON-serialisable


class TestCompact:
    def test_reencodes_drifted_shards(self, tmp_path, census):
        features, labels = census
        # Force a drifted directory: DEN on sparse census data is exactly the
        # scheme the advisor would never pick.
        dataset = Dataset.create(
            tmp_path / "den", features, labels, scheme="DEN", batch_size=100,
            executor="serial",
        )
        before = dataset.stats().payload_bytes
        report = dataset.compact(readvise=True)

        assert report.examined == 4
        assert report.n_reencoded == 4
        assert {c.scheme_before for c in report.changes} == {"DEN"}
        assert all(c.scheme_after != "DEN" for c in report.changes)
        assert report.payload_bytes_after < before
        assert report.bytes_saved > 0

    def test_compacted_directory_trains_and_serves(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "den", features, labels, scheme="DEN", batch_size=100,
            executor="serial",
        )
        dataset.compact()

        # The manifest on disk is format v2 and names the new schemes.
        manifest = json.loads((dataset.path / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == 2
        assert all(row["scheme"] != "DEN" for row in manifest["shards"])

        # The trainer streams the compacted directory...
        reopened = ShardedDataset.open(dataset.path)
        trainer = OutOfCoreTrainer(
            "auto", GradientDescentConfig(batch_size=100, epochs=1, learning_rate=0.3)
        )
        trainer.attach(reopened)
        model = LogisticRegressionModel(features.shape[1], seed=0)
        report = trainer.train(model)
        assert np.isfinite(report.final_loss)

        # ...and the feature store row-slices it, returning the original rows.
        store = FeatureStore.open(dataset.path)
        row = store.get_row(0)
        decoded = reopened.decode(0).to_dense()
        np.testing.assert_allclose(row, decoded[0])

    def test_second_compact_is_a_no_op(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "den", features, labels, scheme="DEN", batch_size=100,
            executor="serial",
        )
        first = dataset.compact()
        assert first.changed

        manifest_before = (dataset.path / MANIFEST_NAME).read_text()
        payloads_before = [dataset.sharded.read_payload(i) for i in range(len(dataset))]
        second = dataset.compact()
        assert not second.changed
        assert second.n_reencoded == 0
        assert second.payload_bytes_after == first.payload_bytes_after
        assert [dataset.sharded.read_payload(i) for i in range(len(dataset))] == payloads_before
        # The manifest rewrite is byte-identical modulo nothing: same content.
        assert json.loads((dataset.path / MANIFEST_NAME).read_text()) == json.loads(
            manifest_before
        )

    def test_compact_removes_superseded_shard_files(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "den", features, labels, scheme="DEN", batch_size=100,
            executor="serial",
        )
        old_files = [s.filename for s in dataset.sharded.shards]
        dataset.compact()
        new_files = [s.filename for s in dataset.sharded.shards]
        assert set(old_files).isdisjoint(new_files)  # staged under new names
        for filename in old_files:
            assert not (dataset.path / filename).exists()  # cleaned after swap
        for filename in new_files:
            assert (dataset.path / filename).exists()

    def test_already_optimal_dataset_is_untouched(self, dataset):
        # "auto"-advised TOC shards on census data re-advise to TOC.
        report = dataset.compact()
        assert not report.changed

    def test_no_readvise_only_rewrites_manifest(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "den", features, labels, scheme="DEN", batch_size=100,
            executor="serial",
        )
        report = dataset.compact(readvise=False)
        assert not report.readvised
        assert not report.changed
        assert dataset.stats().scheme_counts == {"DEN": 4}

    def test_upgrades_v1_manifest_in_place(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "v1", features, labels, scheme="TOC", batch_size=100,
            executor="serial",
        )
        # Downgrade the on-disk manifest to the PR 1 format.
        manifest = json.loads((dataset.path / MANIFEST_NAME).read_text())
        v1 = {
            "format_version": 1,
            "scheme": "TOC",
            "encode_seconds": manifest["encode_seconds"],
            "shards": [
                {k: v for k, v in row.items() if k != "scheme"}
                for row in manifest["shards"]
            ],
        }
        (dataset.path / MANIFEST_NAME).write_text(json.dumps(v1))

        reopened = Dataset.open(dataset.path)
        reopened.compact(readvise=False)
        upgraded = json.loads((dataset.path / MANIFEST_NAME).read_text())
        assert upgraded["format_version"] == 2
        assert all(row["scheme"] == "TOC" for row in upgraded["shards"])

    def test_bad_sample_rows_rejected(self, dataset):
        with pytest.raises(ValueError, match="sample_rows"):
            dataset.compact(sample_rows=0)


class TestWorkloadCalibration:
    def test_create_with_workload_persists_calibration(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "serve", features, labels, scheme="auto", batch_size=100,
            executor="serial", workload="serve",
        )
        cal_file = dataset.path / CALIBRATION_NAME
        assert cal_file.exists()
        assert Calibration.load(cal_file) is not None
        assert len(dataset) == 4

    def test_compact_with_workload_persists_calibration(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "shards", features, labels, scheme="TOC", batch_size=100,
            executor="serial",
        )
        report = dataset.compact(workload="serve")
        assert report.examined == 4
        assert (dataset.path / CALIBRATION_NAME).exists()
        # The measured serve model never keeps TOC's slow row_slice around.
        assert "TOC" not in dataset.stats().scheme_counts

    def test_workload_compact_is_idempotent(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "shards", features, labels, scheme="auto", batch_size=100,
            executor="serial", workload="train",
        )
        report = dataset.compact(workload="train")
        assert not report.changed  # encode and compact share one advisor

    def test_fsck_never_sweeps_the_calibration_file(self, tmp_path, census):
        features, labels = census
        dataset = Dataset.create(
            tmp_path / "shards", features, labels, scheme="auto", batch_size=100,
            executor="serial", workload="scan",
        )
        report = dataset.fsck()
        assert report.clean
        assert (dataset.path / CALIBRATION_NAME).exists()

    def test_unknown_workload_rejected(self, tmp_path, census):
        features, labels = census
        with pytest.raises(ValueError, match="unknown workload"):
            Dataset.create(
                tmp_path / "bad", features, labels, scheme="auto",
                executor="serial", workload="oltp",
            )
