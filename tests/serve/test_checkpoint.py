"""Tests for model checkpoints and the version registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.models import (
    FeedForwardNetwork,
    LinearSVMModel,
    LogisticRegressionModel,
)
from repro.ml.multiclass import OneVsRestClassifier
from repro.serve.checkpoint import (
    ModelRegistry,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture()
def trained_model():
    model = LogisticRegressionModel(12, seed=3)
    model.weights += 0.5  # make the state distinguishable from a fresh init
    model.bias = -0.25
    return model


class TestSaveLoad:
    def test_round_trip_restores_predictions(self, tmp_path, trained_model):
        save_checkpoint(trained_model, tmp_path, scheme_name="TOC")
        restored = load_checkpoint(tmp_path)
        assert restored.model_name == "logistic_regression"
        assert restored.scheme_name == "TOC"
        batch = np.random.default_rng(0).normal(size=(8, 12))
        np.testing.assert_allclose(restored.model.predict(batch), trained_model.predict(batch))
        np.testing.assert_allclose(
            restored.model.get_parameters(), trained_model.get_parameters()
        )

    def test_round_trips_every_model_class(self, tmp_path):
        models = [
            LogisticRegressionModel(6, seed=1),
            LinearSVMModel(6, seed=1),
            FeedForwardNetwork(6, hidden_sizes=(5, 3), n_classes=4, seed=1),
        ]
        for i, model in enumerate(models):
            directory = tmp_path / f"m{i}"
            save_checkpoint(model, directory)
            restored = load_checkpoint(directory).model
            np.testing.assert_allclose(restored.get_parameters(), model.get_parameters())
            assert type(restored) is type(model)

    def test_ffn_shape_survives(self, tmp_path):
        model = FeedForwardNetwork(10, hidden_sizes=(7,), n_classes=3, seed=0)
        save_checkpoint(model, tmp_path)
        restored = load_checkpoint(tmp_path).model
        assert [w.shape for w in restored.weights] == [w.shape for w in model.weights]
        assert restored.n_classes == 3

    def test_dataset_meta_round_trips(self, tmp_path, trained_model):
        meta = {"shard_dir": str(tmp_path / "shards"), "n_examples": 400}
        save_checkpoint(trained_model, tmp_path, dataset_meta=meta)
        restored = load_checkpoint(tmp_path)
        assert restored.dataset_meta == meta
        assert restored.shard_dir == tmp_path / "shards"

    def test_unsupported_model_rejected(self, tmp_path):
        ovr = OneVsRestClassifier(lambda: LogisticRegressionModel(4), n_classes=3)
        with pytest.raises(ValueError, match="cannot checkpoint"):
            save_checkpoint(ovr, tmp_path)

    def test_missing_checkpoint_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope")


class TestModelRegistry:
    def test_versions_increment(self, tmp_path, trained_model):
        registry = ModelRegistry(tmp_path)
        assert registry.versions() == []
        assert registry.save(trained_model) == 1
        assert registry.save(trained_model) == 2
        assert registry.versions() == [1, 2]
        assert registry.latest_version() == 2

    def test_latest_resolves_newest(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = LogisticRegressionModel(5, seed=0)
        second = LogisticRegressionModel(5, seed=0)
        second.bias = 9.0
        registry.save(first)
        registry.save(second)
        loaded = registry.load("latest")
        assert loaded.version == 2
        assert loaded.model.bias == 9.0

    def test_pinned_version_loads(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = LogisticRegressionModel(5, seed=0)
        first.bias = 1.0
        registry.save(first, scheme_name="CSR")
        registry.save(LogisticRegressionModel(5, seed=0))
        pinned = registry.load(1)
        assert pinned.version == 1
        assert pinned.model.bias == 1.0
        assert pinned.scheme_name == "CSR"

    def test_unknown_version_fails(self, tmp_path, trained_model):
        registry = ModelRegistry(tmp_path)
        registry.save(trained_model)
        with pytest.raises(FileNotFoundError):
            registry.load(7)

    def test_empty_registry_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelRegistry(tmp_path / "empty").load()
