"""Tests for row lookups over a sharded dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import DATASET_PROFILES
from repro.engine.shards import ShardedDataset
from repro.serve.feature_store import FeatureStore
from repro.storage.buffer_pool import BufferPool


@pytest.fixture(scope="module")
def shard_fixture(tmp_path_factory):
    """A small sharded dataset plus the dense rows in shard order."""
    features, labels = DATASET_PROFILES["census"].classification(200, seed=11)
    split = np.array_split(np.arange(features.shape[0]), 5)
    batches = [(features[idx], labels[idx]) for idx in split]
    directory = tmp_path_factory.mktemp("store-shards")
    ShardedDataset.create(directory, batches, "TOC", executor="serial")
    dense = np.vstack([x for x, _ in batches])
    all_labels = np.concatenate([y for _, y in batches])
    return directory, dense, all_labels


class TestGeometry:
    def test_length_and_width(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        assert len(store) == dense.shape[0]
        assert store.n_cols == dense.shape[1]

    def test_locate_maps_boundaries(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        assert store.locate(0) == (0, 0)
        first_rows = store.dataset.shards[0].n_rows
        assert store.locate(first_rows - 1) == (0, first_rows - 1)
        assert store.locate(first_rows) == (1, 0)

    def test_out_of_range_rejected(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        with pytest.raises(IndexError):
            store.get_row(dense.shape[0])
        with pytest.raises(IndexError):
            store.get_row(-1)


class TestRowAccess:
    def test_every_row_matches_dense(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        for row_id in range(dense.shape[0]):
            np.testing.assert_allclose(store.get_row(row_id), dense[row_id])

    def test_get_rows_preserves_order_and_duplicates(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        ids = [170, 3, 3, 99, 0, 170]
        np.testing.assert_allclose(store.get_rows(ids), dense[ids])

    def test_get_range_crosses_shards(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        boundary = store.dataset.shards[0].n_rows
        got = store.get_range(boundary - 5, boundary + 5)
        np.testing.assert_allclose(got, dense[boundary - 5 : boundary + 5])

    def test_invalid_range_rejected(self, shard_fixture):
        directory, _, _ = shard_fixture
        with pytest.raises(ValueError):
            FeatureStore.open(directory).get_range(10, 5)

    def test_labels_match(self, shard_fixture):
        directory, _, labels = shard_fixture
        store = FeatureStore.open(directory)
        ids = [0, 57, 123, 199]
        np.testing.assert_array_equal(store.get_labels(ids), labels[ids])

    def test_returned_rows_are_copies(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        row = store.get_row(5)
        row[:] = -1234.0
        np.testing.assert_allclose(store.get_row(5), dense[5])


class TestCaching:
    def test_row_lru_hits_on_repeat_access(self, shard_fixture):
        directory, _, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_rows=8)
        store.get_row(0)
        store.get_row(0)  # same row: served from the row LRU
        assert store.stats.row_misses == 1
        assert store.stats.row_hits == 1
        assert store.stats.shard_decodes == 1

    def test_distinct_rows_of_one_shard_decode_once_per_lookup(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_rows=8)
        np.testing.assert_allclose(store.get_rows([0, 1, 2]), dense[[0, 1, 2]])
        # One shard touched, all three rows missing: one row_slice decode.
        assert store.stats.shard_decodes == 1
        assert store.stats.row_misses == 3

    def test_row_lru_evicts_oldest_row(self, shard_fixture):
        directory, _, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_rows=1)
        store.get_row(0)
        store.get_row(1)  # evicts row 0 from the single-slot LRU
        store.get_row(0)  # must decode again
        assert store.stats.row_misses == 3
        assert store.stats.row_hits == 0

    def test_group_lookup_decodes_each_shard_once(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_rows=4)
        store.get_rows(range(dense.shape[0]))  # every row, all shards
        assert store.stats.shard_decodes == len(store.dataset.shards)

    def test_cached_rows_skip_the_pool(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_rows=dense.shape[0])
        store.get_rows(range(dense.shape[0]))
        decodes_after_warm = store.stats.shard_decodes
        store.get_rows(range(dense.shape[0]))  # fully cached
        assert store.stats.shard_decodes == decodes_after_warm
        assert store.stats.row_hits == dense.shape[0]

    def test_compressed_bytes_flow_through_pool(self, shard_fixture):
        directory, _, _ = shard_fixture
        dataset = ShardedDataset.open(directory)
        pool = BufferPool(budget_bytes=dataset.total_payload_bytes())
        store = FeatureStore(dataset, pool=pool, decoded_cache_rows=1)
        for row_id in (0, 50, 100, 150, 199):
            store.get_row(row_id)
        assert pool.stats.accesses > 0
        assert pool.stats.bytes_read_from_disk > 0

    def test_parsed_cache_skips_payload_reparse(self, shard_fixture):
        directory, _, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_rows=1, parsed_cache_shards=5)
        store.get_row(0)
        store.get_row(1)  # row LRU too small to hit, but the shard is parsed
        store.get_row(2)
        assert store.stats.shard_decodes == 3  # three row_slice calls...
        assert store.stats.payload_parses == 1  # ...one payload parse

    def test_byte_block_shards_inflate_once_per_residency(self, tmp_path, rng):
        """Gzip shards cache the inflated block: misses must not re-inflate."""
        features = np.round(rng.normal(size=(60, 10)), 1)
        ShardedDataset.create(tmp_path, [(features, np.zeros(60))], "Gzip", executor="serial")
        store = FeatureStore.open(tmp_path, decoded_cache_rows=1, parsed_cache_shards=2)
        for row_id in (0, 10, 20, 30):
            np.testing.assert_allclose(store.get_row(row_id), features[row_id])
        assert store.stats.payload_parses == 1  # one inflate for four misses

    def test_rejects_zero_cache_rows(self, shard_fixture):
        directory, _, _ = shard_fixture
        with pytest.raises(ValueError):
            FeatureStore.open(directory, decoded_cache_rows=0)

    def test_rejects_zero_parsed_cache(self, shard_fixture):
        directory, _, _ = shard_fixture
        with pytest.raises(ValueError):
            FeatureStore.open(directory, parsed_cache_shards=0)


class TestMixedSchemeStore:
    def test_rows_served_across_heterogeneous_shards(self, tmp_path, rng):
        """A scheme="auto"-style directory serves rows shard by shard."""
        sparse = rng.normal(size=(40, 12)) * (rng.random((40, 12)) < 0.1)
        dense = rng.normal(size=(40, 12))
        batches = [
            (sparse, np.zeros(40)),
            (dense, np.ones(40)),
        ]
        ShardedDataset.create(tmp_path, batches, ["TOC", "DEN"], executor="serial")
        store = FeatureStore.open(tmp_path)
        expected = np.vstack([sparse, dense])
        np.testing.assert_allclose(store.get_rows([0, 39, 40, 79]), expected[[0, 39, 40, 79]])
        np.testing.assert_allclose(store.get_range(30, 50), expected[30:50])
