"""Tests for row lookups over a sharded dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import DATASET_PROFILES
from repro.engine.shards import ShardedDataset
from repro.serve.feature_store import FeatureStore
from repro.storage.buffer_pool import BufferPool


@pytest.fixture(scope="module")
def shard_fixture(tmp_path_factory):
    """A small sharded dataset plus the dense rows in shard order."""
    features, labels = DATASET_PROFILES["census"].classification(200, seed=11)
    split = np.array_split(np.arange(features.shape[0]), 5)
    batches = [(features[idx], labels[idx]) for idx in split]
    directory = tmp_path_factory.mktemp("store-shards")
    ShardedDataset.create(directory, batches, "TOC", executor="serial")
    dense = np.vstack([x for x, _ in batches])
    all_labels = np.concatenate([y for _, y in batches])
    return directory, dense, all_labels


class TestGeometry:
    def test_length_and_width(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        assert len(store) == dense.shape[0]
        assert store.n_cols == dense.shape[1]

    def test_locate_maps_boundaries(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        assert store.locate(0) == (0, 0)
        first_rows = store.dataset.shards[0].n_rows
        assert store.locate(first_rows - 1) == (0, first_rows - 1)
        assert store.locate(first_rows) == (1, 0)

    def test_out_of_range_rejected(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        with pytest.raises(IndexError):
            store.get_row(dense.shape[0])
        with pytest.raises(IndexError):
            store.get_row(-1)


class TestRowAccess:
    def test_every_row_matches_dense(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        for row_id in range(dense.shape[0]):
            np.testing.assert_allclose(store.get_row(row_id), dense[row_id])

    def test_get_rows_preserves_order_and_duplicates(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        ids = [170, 3, 3, 99, 0, 170]
        np.testing.assert_allclose(store.get_rows(ids), dense[ids])

    def test_get_range_crosses_shards(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        boundary = store.dataset.shards[0].n_rows
        got = store.get_range(boundary - 5, boundary + 5)
        np.testing.assert_allclose(got, dense[boundary - 5 : boundary + 5])

    def test_invalid_range_rejected(self, shard_fixture):
        directory, _, _ = shard_fixture
        with pytest.raises(ValueError):
            FeatureStore.open(directory).get_range(10, 5)

    def test_labels_match(self, shard_fixture):
        directory, _, labels = shard_fixture
        store = FeatureStore.open(directory)
        ids = [0, 57, 123, 199]
        np.testing.assert_array_equal(store.get_labels(ids), labels[ids])

    def test_returned_rows_are_copies(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory)
        row = store.get_row(5)
        row[:] = -1234.0
        np.testing.assert_allclose(store.get_row(5), dense[5])


class TestCaching:
    def test_decoded_lru_hits_on_repeat_access(self, shard_fixture):
        directory, _, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_blocks=2)
        store.get_row(0)
        store.get_row(1)  # same shard: block already decoded
        assert store.stats.block_misses == 1
        assert store.stats.block_hits == 1

    def test_decoded_lru_evicts_oldest_block(self, shard_fixture):
        directory, _, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_blocks=1)
        shard0_rows = store.dataset.shards[0].n_rows
        store.get_row(0)
        store.get_row(shard0_rows)  # decodes shard 1, evicting shard 0
        store.get_row(0)  # must decode again
        assert store.stats.block_misses == 3
        assert store.stats.block_hits == 0

    def test_group_lookup_decodes_each_shard_once(self, shard_fixture):
        directory, dense, _ = shard_fixture
        store = FeatureStore.open(directory, decoded_cache_blocks=5)
        store.get_rows(range(dense.shape[0]))  # every row, all shards
        assert store.stats.block_misses == len(store.dataset.shards)

    def test_compressed_bytes_flow_through_pool(self, shard_fixture):
        directory, _, _ = shard_fixture
        dataset = ShardedDataset.open(directory)
        pool = BufferPool(budget_bytes=dataset.total_payload_bytes())
        store = FeatureStore(dataset, pool=pool, decoded_cache_blocks=1)
        for row_id in (0, 50, 100, 150, 199):
            store.get_row(row_id)
        assert pool.stats.accesses > 0
        assert pool.stats.bytes_read_from_disk > 0

    def test_rejects_zero_cache_blocks(self, shard_fixture):
        directory, _, _ = shard_fixture
        with pytest.raises(ValueError):
            FeatureStore.open(directory, decoded_cache_blocks=0)
