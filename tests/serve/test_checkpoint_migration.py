"""Checkpoint format migration: v1 checkpoints keep loading under v2.

Format v2 adds the ``"api"`` block written by ``Estimator.save``.  v1
checkpoints (written before the facade existed) must rebuild the same model
with an empty block, because registries outlive the code that wrote them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ml.models import LogisticRegressionModel
from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_NAME,
    ModelRegistry,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture()
def model():
    model = LogisticRegressionModel(6, seed=0)
    model.set_parameters(np.arange(7, dtype=np.float64))
    return model


def downgrade_to_v1(directory) -> None:
    manifest = json.loads((directory / CHECKPOINT_NAME).read_text())
    manifest["format_version"] = 1
    manifest.pop("api", None)
    (directory / CHECKPOINT_NAME).write_text(json.dumps(manifest))


def test_v2_is_the_current_format(tmp_path, model):
    save_checkpoint(model, tmp_path, api_meta={"estimator": {"model": "logreg"}})
    manifest = json.loads((tmp_path / CHECKPOINT_NAME).read_text())
    assert CHECKPOINT_FORMAT_VERSION == 2
    assert manifest["format_version"] == 2
    assert manifest["api"] == {"estimator": {"model": "logreg"}}

    checkpoint = load_checkpoint(tmp_path)
    assert checkpoint.format_version == 2
    assert checkpoint.api_meta["estimator"]["model"] == "logreg"


def test_v1_checkpoint_still_loads(tmp_path, model):
    save_checkpoint(model, tmp_path, scheme_name="TOC", dataset_meta={"n_examples": 9})
    downgrade_to_v1(tmp_path)

    checkpoint = load_checkpoint(tmp_path)
    assert checkpoint.format_version == 1
    assert checkpoint.api_meta == {}  # the block simply did not exist yet
    assert checkpoint.scheme_name == "TOC"
    assert checkpoint.dataset_meta == {"n_examples": 9}
    np.testing.assert_array_equal(
        checkpoint.model.get_parameters(), model.get_parameters()
    )


def test_v1_checkpoint_loads_through_registry_and_estimator(tmp_path, model):
    registry = ModelRegistry(tmp_path)
    version = registry.save(model, scheme_name="TOC")
    downgrade_to_v1(registry.path_for(version))

    from repro.api import Estimator

    estimator = Estimator.load(tmp_path)
    assert estimator.checkpoint.format_version == 1
    np.testing.assert_array_equal(
        estimator.model.get_parameters(), model.get_parameters()
    )
    # v1 predates the api block: the estimator falls back to defaults.
    assert estimator.scheme == "auto"


def test_unknown_format_rejected(tmp_path, model):
    save_checkpoint(model, tmp_path)
    manifest = json.loads((tmp_path / CHECKPOINT_NAME).read_text())
    manifest["format_version"] = 99
    (tmp_path / CHECKPOINT_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="unsupported checkpoint format"):
        load_checkpoint(tmp_path)
