"""Tests for the shared thread-safe LRU cache."""

from __future__ import annotations

import threading

import pytest

from repro.serve.lru import LRUCache


class TestLRUCache:
    def test_round_trip_and_miss_default(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("b", default=-1) == -1

    def test_capacity_bound_evicts_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # now b is oldest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_falsy_values_are_cached(self):
        cache = LRUCache(2)
        cache.put("zero", 0.0)
        assert cache.get("zero", default="miss") == 0.0

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not grow
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_concurrent_mixed_access_stays_bounded(self):
        cache = LRUCache(8)
        errors: list[Exception] = []

        def hammer(offset: int) -> None:
            try:
                for i in range(500):
                    cache.put((offset + i) % 20, i)
                    cache.get(i % 20)
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
