"""Tests for the end-to-end prediction service."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.data.registry import DATASET_PROFILES
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig
from repro.serve.checkpoint import ModelRegistry
from repro.serve.feature_store import FeatureStore
from repro.serve.service import PredictionService


@pytest.fixture(scope="module")
def trained_setup(tmp_path_factory):
    """Train out-of-core, checkpoint, and keep the shard dir around."""
    features, labels = DATASET_PROFILES["census"].classification(300, seed=5)
    config = GradientDescentConfig(batch_size=75, epochs=2, learning_rate=0.3)
    trainer = OutOfCoreTrainer("TOC", config, executor="serial", budget_ratio=2.0)
    model = LogisticRegressionModel(features.shape[1], seed=0)
    shard_dir = tmp_path_factory.mktemp("serve-shards")
    registry_dir = tmp_path_factory.mktemp("serve-registry")
    report = trainer.fit(model, features, labels, shard_dir, checkpoint_to=registry_dir)
    return model, shard_dir, registry_dir, report


class TestSingleRowPath:
    def test_predict_id_matches_bulk_model_predict(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store, max_batch_size=8) as service:
            singles = [service.predict_id(i) for i in range(20)]
        expected = model.predict(store.get_rows(range(20)))
        np.testing.assert_allclose(singles, expected)

    def test_predict_vector_matches_model(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        row = store.get_row(7)
        with PredictionService(model, store) as service:
            value = service.predict_vector(row)
        assert value == model.predict(row.reshape(1, -1))[0]

    def test_concurrent_clients_get_correct_answers(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        ids = list(range(60))
        expected = model.predict(store.get_rows(ids))
        with PredictionService(model, store, max_batch_size=16) as service:
            with ThreadPoolExecutor(max_workers=6) as clients:
                got = list(clients.map(service.predict_id, ids))
            assert service.batcher_stats.requests == len(ids)
        np.testing.assert_allclose(got, expected)

    def test_bulk_and_single_row_race_on_a_tiny_store_cache(self, trained_setup):
        # Regression: the bulk API (client thread) and the batcher worker
        # share the store; with a one-row decoded LRU their evictions race.
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir, decoded_cache_rows=1)
        ids = list(range(0, 300, 7))
        expected = model.predict(store.get_rows(ids))
        with PredictionService(model, store, max_batch_size=8) as service:
            with ThreadPoolExecutor(max_workers=4) as clients:
                bulk = [clients.submit(service.predict_ids, ids) for _ in range(3)]
                singles = [clients.submit(service.predict_id, i) for i in ids]
                for future in bulk:
                    np.testing.assert_allclose(future.result(timeout=10), expected)
                got = [future.result(timeout=10) for future in singles]
        np.testing.assert_allclose(got, expected)

    def test_row_id_without_store_rejected(self, trained_setup):
        model, _, _, _ = trained_setup
        with PredictionService(model) as service:
            with pytest.raises(RuntimeError, match="feature store"):
                service.predict_id(0)


class TestCache:
    def test_repeat_traffic_hits_cache(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store, cache_size=64) as service:
            for _ in range(3):
                for row_id in range(10):
                    service.predict_id(row_id)
            assert service.stats.cache_hits == 20
            assert service.stats.cache_misses == 10
            assert service.stats.cache_hit_rate == pytest.approx(2 / 3)
            # Only the misses reached the model.
            assert service.stats.rows_predicted == 10

    def test_cache_eviction_keeps_bound(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store, cache_size=4) as service:
            for row_id in range(12):
                service.predict_id(row_id)
            assert len(service._cache) <= 4

    def test_cached_value_matches_fresh_prediction(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store, cache_size=8) as service:
            first = service.predict_id(3)
            second = service.predict_id(3)
        assert first == second == model.predict(store.get_rows([3]))[0]


class TestBulkPath:
    def test_predict_ids_matches_model(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        ids = [5, 99, 200, 5]
        with PredictionService(model, store) as service:
            got = service.predict_ids(ids)
        np.testing.assert_allclose(got, model.predict(store.get_rows(ids)))

    def test_predict_matrix(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        matrix = store.get_rows(range(15))
        with PredictionService(model, store) as service:
            np.testing.assert_allclose(service.predict_matrix(matrix), model.predict(matrix))

    def test_stats_count_rows_and_time(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store) as service:
            service.predict_ids(range(25))
            assert service.stats.rows_predicted == 25
            assert service.stats.predict_seconds > 0
            assert service.stats.predicted_rows_per_second > 0


class TestFromRegistry:
    def test_checkpoint_hook_publishes_a_version(self, trained_setup):
        _, _, registry_dir, report = trained_setup
        assert report.checkpoint_version == 1
        assert ModelRegistry(registry_dir).versions() == [1]

    def test_from_registry_serves_like_the_live_model(self, trained_setup):
        model, shard_dir, registry_dir, _ = trained_setup
        service, checkpoint = PredictionService.from_registry(registry_dir, shard_dir=shard_dir)
        with service:
            got = service.predict_ids(range(30))
        store = FeatureStore.open(shard_dir)
        np.testing.assert_allclose(got, model.predict(store.get_rows(range(30))))
        assert checkpoint.version == 1
        assert checkpoint.scheme_name == "TOC"

    def test_from_registry_uses_recorded_shard_dir(self, trained_setup):
        _, shard_dir, registry_dir, _ = trained_setup
        service, checkpoint = PredictionService.from_registry(registry_dir)
        with service:
            assert service.store is not None
            assert checkpoint.shard_dir == shard_dir
            assert service.predict_id(0) in (0.0, 1.0)


class TestStatsSnapshot:
    def test_snapshot_matches_live_attributes_when_idle(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store, cache_size=8) as service:
            for row_id in (0, 1, 0, 2):
                service.predict_id(row_id)
            snap = service.stats.snapshot()
        assert snap.requests == service.stats.requests == 4
        assert snap.cache_hits == service.stats.cache_hits == 1
        assert snap.cache_misses == service.stats.cache_misses == 3
        assert snap.rows_predicted == service.stats.rows_predicted == 3
        assert snap.request_seconds == pytest.approx(service.stats.request_seconds)
        assert snap.cache_hit_rate == pytest.approx(0.25)
        assert snap.mean_request_seconds == pytest.approx(snap.request_seconds / 4)

    def test_snapshot_is_atomic_against_concurrent_writers(self, trained_setup):
        """A snapshot must never split a multi-metric update in half.

        Each synthetic request adds exactly 1.0 to ``request_seconds`` in the
        same locked section that bumps ``requests`` — so any snapshot where
        the two disagree caught a half-applied update (the race the locked
        ``snapshot()`` exists to close).
        """
        import threading

        model, *_ = trained_setup
        with PredictionService(model) as service:
            stop = threading.Event()

            def writer():
                while not stop.is_set():
                    with service._lock:
                        service.stats.record_request(1.0)

            thread = threading.Thread(target=writer)
            thread.start()
            try:
                for _ in range(300):
                    snap = service.stats.snapshot()
                    assert snap.request_seconds == pytest.approx(float(snap.requests))
            finally:
                stop.set()
                thread.join()

    def test_two_services_do_not_share_counters(self, trained_setup):
        model, shard_dir, _, _ = trained_setup
        store = FeatureStore.open(shard_dir)
        with PredictionService(model, store) as a, PredictionService(model, store) as b:
            a.predict_id(0)
            assert a.stats.requests == 1
            assert b.stats.requests == 0
            metrics_a, metrics_b = a.metrics(), b.metrics()
        assert metrics_a["counters"]["serve.requests"] == 1
        assert metrics_b["counters"]["serve.requests"] == 0
        assert metrics_a["histograms"]["serve.request.seconds"]["count"] == 1
