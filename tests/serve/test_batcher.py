"""Tests for the micro-batcher."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batcher import MicroBatcher, ServiceClosed


class TestBasics:
    def test_single_request_round_trips(self):
        with MicroBatcher(lambda xs: [x * 2 for x in xs]) as batcher:
            assert batcher(21) == 42

    def test_results_map_to_their_requests(self):
        with MicroBatcher(lambda xs: [x + 1 for x in xs], max_batch_size=4) as batcher:
            futures = [batcher.submit(i) for i in range(20)]
            assert [f.result() for f in futures] == [i + 1 for i in range(20)]

    def test_batch_size_one_is_unbatched(self):
        sizes = []

        def handler(xs):
            sizes.append(len(xs))
            return xs

        with MicroBatcher(handler, max_batch_size=1) as batcher:
            futures = [batcher.submit(i) for i in range(6)]
            [f.result() for f in futures]
        assert sizes == [1] * 6

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda xs: xs, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda xs: xs, max_wait_seconds=-1)


class TestCoalescing:
    def test_concurrent_requests_share_batches(self):
        release = threading.Event()

        def handler(xs):
            release.wait(timeout=5)
            return xs

        batcher = MicroBatcher(handler, max_batch_size=16, max_wait_seconds=0.05)
        try:
            # The first request occupies the worker (blocked on the event);
            # the rest pile up and must coalesce once it is released.
            futures = [batcher.submit(i) for i in range(9)]
            release.set()
            assert [f.result(timeout=5) for f in futures] == list(range(9))
            assert batcher.stats.requests == 9
            assert batcher.stats.batches < 9
            assert batcher.stats.largest_batch > 1
        finally:
            batcher.close()

    def test_max_batch_size_respected(self):
        sizes = []
        gate = threading.Event()

        def handler(xs):
            gate.wait(timeout=5)
            sizes.append(len(xs))
            return xs

        batcher = MicroBatcher(handler, max_batch_size=3, max_wait_seconds=0.05)
        try:
            futures = [batcher.submit(i) for i in range(10)]
            gate.set()
            [f.result(timeout=5) for f in futures]
            assert max(sizes) <= 3
        finally:
            batcher.close()

    def test_mean_batch_size_stat(self):
        with MicroBatcher(lambda xs: xs, max_batch_size=8) as batcher:
            [batcher.submit(i).result() for i in range(4)]
        assert batcher.stats.mean_batch_size >= 1.0


class TestFailureAndShutdown:
    def test_handler_exception_propagates_to_callers(self):
        def handler(xs):
            raise RuntimeError("model exploded")

        with MicroBatcher(handler) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=5)

    def test_wrong_output_arity_is_an_error(self):
        with MicroBatcher(lambda xs: [1, 2, 3]) as batcher:
            with pytest.raises(RuntimeError, match="outputs"):
                batcher.submit("x").result(timeout=5)

    def test_close_drains_queued_requests(self):
        slow_started = threading.Event()

        def handler(xs):
            slow_started.set()
            time.sleep(0.02)
            return xs

        batcher = MicroBatcher(handler, max_batch_size=2, max_wait_seconds=0)
        futures = [batcher.submit(i) for i in range(7)]
        slow_started.wait(timeout=5)
        batcher.close()
        assert [f.result(timeout=5) for f in futures] == list(range(7))

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda xs: xs)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_close_twice_is_safe(self):
        batcher = MicroBatcher(lambda xs: xs)
        batcher.close()
        batcher.close()

    def test_submit_after_close_raises_service_closed(self):
        batcher = MicroBatcher(lambda xs: xs)
        batcher.close()
        with pytest.raises(ServiceClosed):
            batcher.submit(1)

    def test_close_without_drain_fails_queued_requests(self):
        started = threading.Event()
        release = threading.Event()

        def handler(xs):
            started.set()
            release.wait(timeout=5)
            return xs

        batcher = MicroBatcher(handler, max_batch_size=1)
        first = batcher.submit(0)
        started.wait(timeout=5)
        queued = [batcher.submit(i) for i in range(1, 5)]
        # close() joins the worker, which is parked in the handler — run it
        # from a helper thread, then release the in-flight batch.
        closer = threading.Thread(target=batcher.close, kwargs={"drain": False})
        closer.start()
        release.set()
        closer.join(timeout=5)
        assert not closer.is_alive()
        # The in-flight request was served; everything queued behind it was
        # failed explicitly — no caller left hanging.
        assert first.result(timeout=5) == 0
        for future in queued:
            with pytest.raises(ServiceClosed):
                future.result(timeout=5)

    def test_cancelled_future_does_not_kill_the_worker(self):
        release = threading.Event()

        def handler(xs):
            release.wait(timeout=5)
            return xs

        with MicroBatcher(handler, max_batch_size=1) as batcher:
            blocker = batcher.submit(0)
            cancelled = batcher.submit(1)
            survivor = batcher.submit(2)
            assert cancelled.cancel()
            release.set()
            # The worker must skip the cancelled future and keep serving.
            assert blocker.result(timeout=5) == 0
            assert survivor.result(timeout=5) == 2
