"""Survey the compression behaviour of every scheme across dataset profiles.

Run with::

    python examples/compression_study.py

Prints a Figure 5-style table: compression ratios for the paper's six
dataset profiles, plus the TOC ablation (sparse encoding only, sparse +
logical, full) showing how much each encoding layer contributes.  Use it to
decide — as Section 5.1 of the paper recommends — whether TOC is a good fit
for your own data by testing it on a mini-batch sample.
"""

from __future__ import annotations

from repro.api import DATASET_PROFILES, available_schemes, get_scheme

BATCH_ROWS = 250


def main() -> None:
    scheme_names = available_schemes() + ["TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL"]
    rows: dict[str, dict[str, float]] = {}
    for dataset, profile in DATASET_PROFILES.items():
        batch = profile.matrix(BATCH_ROWS, seed=0)
        rows[dataset] = {
            name: get_scheme(name).compress(batch).compression_ratio() for name in scheme_names
        }

    print(f"Compression ratios on {BATCH_ROWS}-row mini-batches (higher is better)\n")
    width = max(len(name) for name in rows)
    header = " ".join(f"{name:>10}" for name in scheme_names)
    print(f"{'':<{width}} {header}")
    for dataset, ratios in rows.items():
        cells = " ".join(f"{ratios[name]:>10.1f}" for name in scheme_names)
        print(f"{dataset:<{width}} {cells}")

    print()
    print("Reading the table the way Section 5.1 of the paper does:")
    print(" * moderate-sparsity profiles (census/imagenet/mnist/kdd99): TOC beats the")
    print("   light-weight matrix schemes and is comparable to Gzip;")
    print(" * rcv1 (extremely sparse): CSR is enough, TOC tracks it closely;")
    print(" * deep1b (dense, continuous values): nothing compresses - use DEN.")


if __name__ == "__main__":
    main()
