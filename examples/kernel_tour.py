"""A tour of the kernel backends and zero-copy shard reads.

Run with::

    python examples/kernel_tour.py

The hot code-walk kernels — varint encode/decode, TOC ``row_slice``, and
value-index gathers — dispatch through the :mod:`repro.kernels` registry.
Three backends implement the same semantics:

* ``python`` — the per-element reference loops (slow, always correct);
* ``numpy``  — vectorized whole-array passes; the always-available default;
* ``numba``  — optional jitted loops; falls back to ``numpy`` when the
  ``numba`` package is not installed.

Select one with the ``REPRO_KERNELS`` environment variable or
:func:`repro.kernels.set_backend`.  Shard reads are zero-copy by default:
``ShardedDataset.read_payload`` returns a ``memoryview`` over a read-only
mmap of the shard file (disable with ``REPRO_MMAP=0``), and every scheme's
``from_bytes`` decodes straight out of the mapping.

This example:

1. encodes a dataset and row-slices it under each available backend,
   timing the same selective read;
2. shows the per-op/per-backend ``kernels.calls`` obs counters — the
   metrics snapshot says exactly which backend served each op;
3. demonstrates the ``REPRO_KERNELS`` fallback (requesting ``numba``
   without numba installed lands on ``numpy`` and counts the fallback);
4. compares a zero-copy mmap read against a copying read of the same shard.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.api import DATASET_PROFILES, Dataset
from repro.kernels import numba_backend
from repro.obs import metrics
from repro.storage import mmapio

ROWS = 4_000
SELECT = 200  # a 5% selective read: the regime the direct gather targets


def build_dataset(tmp: Path) -> Dataset:
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=5)
    return Dataset.create(
        tmp / "shards", features, labels,
        scheme="TOC", batch_size=1_000, executor="serial",
    )


def time_row_slice(dataset: Dataset, backend: str) -> float:
    """Median seconds for one selective row_slice under ``backend``."""
    rng = np.random.default_rng(0)
    rows = rng.choice(1_000, size=SELECT // 4, replace=False)
    samples = []
    with kernels.use_backend(backend):
        matrix = dataset.sharded.decode(0)
        matrix.row_slice(rows)  # warm-up (and correctness) pass
        for _ in range(5):
            start = time.perf_counter()
            matrix.row_slice(rows)
            samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def show_backends(dataset: Dataset) -> None:
    print(f"registered backends: {', '.join(kernels.BACKENDS)}")
    print(f"active backend:      {kernels.active_backend()} "
          f"(default {kernels.DEFAULT_BACKEND}; override with {kernels.ENV_VAR})")
    available = ["python", "numpy"] + (["numba"] if numba_backend.available() else [])
    print("\nselective row_slice, same rows, each backend:")
    reference = None
    for backend in available:
        seconds = time_row_slice(dataset, backend)
        reference = reference or seconds
        print(f"  {backend:<8} {seconds * 1e6:9.1f} µs  ({reference / seconds:5.1f}x vs python)")
    if not numba_backend.available():
        print(f"  numba    (not installed: {numba_backend.unavailable_reason()})")


def show_counters() -> None:
    print("\nkernels.calls counters — which backend served each op:")
    snapshot = metrics.snapshot()["counters"]
    for name in sorted(snapshot):
        if name.startswith("kernels."):
            print(f"  {name:<60} {snapshot[name]:,}")


def show_fallback() -> None:
    resolved = kernels.set_backend("numba")
    print(f"\nset_backend('numba') resolved to: {resolved!r}", end="")
    if resolved != "numba":
        print("  (numba missing; the feature flag never breaks a deployment)")
    else:
        print()
    kernels.set_backend(kernels.DEFAULT_BACKEND)


def show_zero_copy(dataset: Dataset) -> None:
    sharded = dataset.sharded
    payload = sharded.read_payload(0)
    print(f"\nread_payload(0) with mmap on:  {type(payload).__name__} "
          f"of {len(payload):,} bytes (zero-copy view of the shard file)")
    os.environ[mmapio.ENV_VAR] = "0"
    try:
        copied = sharded.read_payload(0)
        print(f"read_payload(0) with {mmapio.ENV_VAR}=0: {type(copied).__name__} "
              f"of {len(copied):,} bytes (heap copy)")
        assert bytes(payload) == copied
    finally:
        del os.environ[mmapio.ENV_VAR]
    decoded = sharded.decode(0, payload=payload).to_dense()
    print(f"decoding straight from the mapping works: shard 0 -> {decoded.shape}")
    maps = metrics.counter("storage.mmap.maps").value
    print(f"storage.mmap.maps counter: {maps} mappings this process")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-kernel-tour-") as tmp:
        dataset = build_dataset(Path(tmp))
        show_backends(dataset)
        show_counters()
        show_fallback()
        show_zero_copy(dataset)

    print(f"\nPin a backend for a whole run with `{kernels.ENV_VAR}=python|numpy|numba`,")
    print(f"and disable zero-copy reads with `{mmapio.ENV_VAR}=0` — everything else")
    print("is unchanged: the backends are bit-for-bit equivalent.")


if __name__ == "__main__":
    main()
