"""Out-of-core MGD through the facade: shard, spill, prefetch, train.

Run with::

    python examples/out_of_core_training.py

``Dataset.create`` shards the dataset into compressed blob files with the
multi-worker encode pipeline; ``Estimator.fit(dataset)`` streams them
through a byte-budgeted buffer pool with read-ahead prefetch.  The buffer
budget is fixed at twice the TOC footprint for every scheme, so the effect
behind the paper's end-to-end results (Tables 6-7, Figure 9) shows up
directly: TOC stays resident after the first epoch while the bulky formats
re-read every batch from disk on every epoch.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import DATASET_PROFILES, Dataset, Estimator

ROWS = 4000
EPOCHS = 5
BATCH_SIZE = 250
SIMULATED_DISK_BANDWIDTH = 20e6  # bytes / second


def main() -> None:
    features, labels = DATASET_PROFILES["kdd99"].classification(ROWS, seed=3)

    with tempfile.TemporaryDirectory(prefix="repro-ooc-") as tmp:
        # Size the "RAM" so that TOC fits comfortably but dense does not:
        # encode once with TOC and read the payload size off the stats.
        toc_bytes = (
            Dataset.create(
                Path(tmp) / "sizing", features, labels, scheme="TOC",
                batch_size=BATCH_SIZE, executor="serial",
            )
            .stats()
            .payload_bytes
        )
        budget = 2 * toc_bytes
        dense_mb = features.size * 8 / 1e6
        print(f"dataset: {features.shape[0]} rows x {features.shape[1]} cols, "
              f"dense {dense_mb:.1f} MB, TOC {toc_bytes / 1e6:.2f} MB, "
              f"memory budget {budget / 1e6:.2f} MB\n")

        print(f"{'scheme':<8} {'payload MB':>10} {'fits?':>6} {'hit rate':>9} "
              f"{'encode s':>9} {'sim. IO s':>10} {'final loss':>11}")
        for scheme_name in ("TOC", "CVI", "CSR", "DEN"):
            dataset = Dataset.create(
                Path(tmp) / scheme_name, features, labels, scheme=scheme_name,
                batch_size=BATCH_SIZE,
            )
            estimator = Estimator(
                "logreg",
                epochs=EPOCHS,
                learning_rate=0.3,
                batch_size=BATCH_SIZE,
                budget_bytes=budget,
                disk_bandwidth_bytes_per_sec=SIMULATED_DISK_BANDWIDTH,
            )
            report = estimator.fit(dataset)
            ooc, stats = report.ooc, dataset.stats()
            print(
                f"{scheme_name:<8} {ooc.total_payload_bytes / 1e6:>10.2f} "
                f"{str(ooc.fits_in_memory):>6} {ooc.pool_stats.hit_rate:>9.0%} "
                f"{stats.encode_seconds:>9.3f} {ooc.total_io_seconds:>10.4f} "
                f"{report.final_loss:>11.4f}"
            )

    print("\nWith the tight budget only the well-compressed formats stay resident, so")
    print("their later epochs cost no IO — the effect the paper's Tables 6-7 measure.")
    print("Try `python -m repro train-ooc --help` for the CLI version with knobs.")


if __name__ == "__main__":
    main()
