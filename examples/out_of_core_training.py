"""Out-of-core MGD: what happens when the dataset does not fit in memory.

Run with::

    python examples/out_of_core_training.py

Reproduces the mechanism behind the paper's headline end-to-end results
(Tables 6-7, Figure 9): compressed mini-batches are stored as blobs in a
Bismarck-style table and read through a byte-budgeted buffer pool.  With a
budget sized between the TOC footprint and the dense footprint, TOC trains
from memory after the first epoch while DEN and CSR re-read every batch from
(simulated) disk on every epoch.
"""

from __future__ import annotations

from repro import BufferPool, LinearSVMModel, get_scheme, split_minibatches
from repro.data.registry import DATASET_PROFILES
from repro.storage.bismarck import BismarckSession

EPOCHS = 5
BATCH_SIZE = 250
SIMULATED_DISK_BANDWIDTH = 20e6  # bytes / second


def main() -> None:
    features, labels = DATASET_PROFILES["kdd99"].classification(4000, seed=3)
    batches = split_minibatches(features, labels, batch_size=BATCH_SIZE, seed=0)

    # Size the "RAM" so that TOC fits comfortably but the dense format does not.
    toc_bytes = sum(get_scheme("TOC").compress(bx).nbytes for bx, _ in batches)
    dense_bytes = sum(bx.size * 8 for bx, _ in batches)
    budget = 2 * toc_bytes
    print(f"dataset: {features.shape[0]} rows, dense {dense_bytes / 1e6:.1f} MB, "
          f"TOC {toc_bytes / 1e6:.2f} MB, memory budget {budget / 1e6:.2f} MB\n")

    print(f"{'scheme':<8} {'stored MB':>10} {'fits?':>6} {'compute s':>10} "
          f"{'sim. IO s':>10} {'total s':>9}")
    for scheme_name in ("TOC", "CVI", "CSR", "DEN"):
        pool = BufferPool(
            budget_bytes=budget, disk_bandwidth_bytes_per_sec=SIMULATED_DISK_BANDWIDTH
        )
        session = BismarckSession(get_scheme(scheme_name), pool)
        session.load(batches)
        model = LinearSVMModel(features.shape[1], seed=0)
        report = session.train(model, epochs=EPOCHS, learning_rate=0.3)
        print(
            f"{scheme_name:<8} {pool.total_stored_bytes() / 1e6:>10.2f} "
            f"{str(pool.fits_entirely()):>6} {report.total_compute_seconds:>10.3f} "
            f"{report.total_io_seconds:>10.3f} {report.total_seconds:>9.3f}"
        )

    print("\nWith the tight budget only the well-compressed formats stay resident, so")
    print("their later epochs cost no IO - the effect the paper's Tables 6-7 measure.")


if __name__ == "__main__":
    main()
