"""Out-of-core MGD on the streaming engine: shard, spill, prefetch, train.

Run with::

    python examples/out_of_core_training.py

The engine (:mod:`repro.engine`) shards the dataset into compressed blob
files with the multi-worker encode pipeline, then streams them through a
byte-budgeted buffer pool with read-ahead prefetch while the MGD loop trains.
The buffer budget is fixed at twice the TOC footprint for every scheme, so
the effect behind the paper's end-to-end results (Tables 6-7, Figure 9) shows
up directly: TOC stays resident after the first epoch while the bulky formats
re-read every batch from disk on every epoch.
"""

from __future__ import annotations

import tempfile

from repro import GradientDescentConfig, LogisticRegressionModel, OutOfCoreTrainer
from repro.data.registry import DATASET_PROFILES
from repro.engine import encode_batches
from repro.data.minibatch import split_minibatches

ROWS = 4000
EPOCHS = 5
BATCH_SIZE = 250
SIMULATED_DISK_BANDWIDTH = 20e6  # bytes / second


def main() -> None:
    features, labels = DATASET_PROFILES["kdd99"].classification(ROWS, seed=3)
    config = GradientDescentConfig(batch_size=BATCH_SIZE, epochs=EPOCHS, learning_rate=0.3)

    # Size the "RAM" so that TOC fits comfortably but the dense format does not.
    batches = [x for x, _ in split_minibatches(features, labels, batch_size=BATCH_SIZE, seed=0)]
    # Serial is fine here: this sizing pass is small, and spinning up the
    # process pool twice would skew the per-scheme encode timings below.
    toc_bytes = sum(e.nbytes for e in encode_batches(batches, "TOC", executor="serial"))
    budget = 2 * toc_bytes
    dense_mb = features.size * 8 / 1e6
    print(f"dataset: {features.shape[0]} rows x {features.shape[1]} cols, "
          f"dense {dense_mb:.1f} MB, TOC {toc_bytes / 1e6:.2f} MB, "
          f"memory budget {budget / 1e6:.2f} MB\n")

    print(f"{'scheme':<8} {'payload MB':>10} {'fits?':>6} {'hit rate':>9} "
          f"{'encode s':>9} {'sim. IO s':>10} {'final loss':>11}")
    for scheme_name in ("TOC", "CVI", "CSR", "DEN"):
        trainer = OutOfCoreTrainer(
            scheme_name,
            config,
            budget_bytes=budget,
            disk_bandwidth_bytes_per_sec=SIMULATED_DISK_BANDWIDTH,
        )
        model = LogisticRegressionModel(features.shape[1], seed=0)
        with tempfile.TemporaryDirectory(prefix=f"repro-{scheme_name}-") as shard_dir:
            report = trainer.fit(model, features, labels, shard_dir)
        print(
            f"{scheme_name:<8} {report.total_payload_bytes / 1e6:>10.2f} "
            f"{str(report.fits_in_memory):>6} {report.pool_stats.hit_rate:>9.0%} "
            f"{report.encode_seconds:>9.3f} {report.total_io_seconds:>10.4f} "
            f"{report.final_loss:>11.4f}"
        )

    print("\nWith the tight budget only the well-compressed formats stay resident, so")
    print("their later epochs cost no IO — the effect the paper's Tables 6-7 measure.")
    print("Try `python -m repro train-ooc --help` for the CLI version with knobs.")


if __name__ == "__main__":
    main()
