"""Train out-of-core, checkpoint, then serve online traffic — end to end.

Run with::

    python examples/online_serving.py

The paper's trick — amortize decompression and linear algebra over a
mini-batch — pays twice.  Training exploits it in the MGD loop; this example
shows the serving side, entirely through the facade: ``Estimator.fit`` with
a ``shard_dir`` trains out-of-core, ``Estimator.save`` publishes the model
to a version registry, and ``open_service`` turns the registry into a live
service that coalesces concurrent single-row requests into mini-batches
over the same compressed shard files (a small prediction LRU absorbs the
hot keys).  The closing table compares the same traffic served unbatched
(batch size 1), micro-batched, and micro-batched with the cache on.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.api import DATASET_PROFILES, Estimator, PredictionService, open_service

ROWS = 2000
BATCH_SIZE = 250
REQUESTS = 1500
CLIENTS = 8


def drive(service: PredictionService, workload: np.ndarray) -> float:
    """Issue the workload from concurrent clients; return wall seconds."""
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENTS) as clients:
        list(clients.map(service.predict_id, workload))
    return time.perf_counter() - start


def main() -> None:
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=3)

    with tempfile.TemporaryDirectory(prefix="repro-serving-") as tmp:
        shard_dir = Path(tmp) / "shards"
        registry_dir = Path(tmp) / "checkpoints"

        # 1. Train out-of-core and publish the model to the registry.  The
        #    checkpoint records the shard directory, so serving finds the
        #    features again without being told.
        estimator = Estimator(
            "logreg", scheme="TOC", batch_size=BATCH_SIZE, epochs=3,
            learning_rate=0.3, budget_ratio=2.0,
        )
        report = estimator.fit(features, labels, shard_dir=shard_dir)
        version, _ = estimator.save(registry_dir)
        print(
            f"trained over {ROWS} rows (final loss {report.final_loss:.4f}), "
            f"published checkpoint v{version:05d}"
        )

        # 2. An 80/20 workload: most requests hit a small hot set.
        rng = np.random.default_rng(0)
        hot = rng.choice(ROWS, size=ROWS // 5, replace=False)
        workload = np.where(
            rng.random(REQUESTS) < 0.8,
            rng.choice(hot, size=REQUESTS),
            rng.integers(0, ROWS, size=REQUESTS),
        )

        # 3. Serve the same traffic through three backends.
        print(f"\n{REQUESTS} requests from {CLIENTS} clients:\n")
        print(f"{'backend':<14} {'req/s':>9} {'model calls':>12} "
              f"{'mean batch':>11} {'cache hits':>11}")
        # A hot serving tier keeps every decoded row resident (the shards
        # stay compressed on disk; the pool + row LRU bound what is in memory).
        store_kwargs = dict(decoded_cache_rows=ROWS)
        for label, kwargs in (
            ("unbatched", dict(max_batch_size=1, cache_size=0)),
            ("micro-batched", dict(max_batch_size=64, cache_size=0)),
            ("batched+cache", dict(max_batch_size=64, cache_size=512)),
        ):
            service, _ = open_service(registry_dir, store_kwargs=store_kwargs, **kwargs)
            with service:
                service.predict_ids(range(ROWS))  # warm the decoded blocks
                wall = drive(service, workload)
                print(
                    f"{label:<14} {REQUESTS / wall:>9,.0f} "
                    f"{service.batcher_stats.batches:>12} "
                    f"{service.batcher_stats.mean_batch_size:>11.1f} "
                    f"{service.stats.cache_hits:>11}"
                )

    print("\nCoalescing concurrent requests into mini-batches amortizes the decode")
    print("and matvec over many rows — the same effect the MGD training loop uses —")
    print("and the prediction cache removes the hot keys from the model entirely.")
    print("Try `python -m repro serve --help` for the CLI version with knobs.")


if __name__ == "__main__":
    main()
