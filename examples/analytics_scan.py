"""Analytics queries over compressed shards with ``Dataset.scan``.

Run with::

    python examples/analytics_scan.py

The scan executor answers predicates *inside* the compressed
representation where the scheme allows it: on value-indexed shards
(CVI, DVI) an equality or range comparison is evaluated against the
value dictionary — ``k`` comparisons instead of ``rows x cols`` decoded
cells — and the matching row mask is gathered straight through the
codes.  Aggregates go one step further and come off code frequencies,
so ``count``/``sum``/``min``/``max`` never materialise a single row.
Schemes without a fast path (DEN, CSR, CLA, the byte codecs) fall back
to decode-then-filter, so every query is answerable over any manifest.

This example:

1. builds a quantised dataset (small value domain — the regime where
   dictionary probing shines) and shards it with ``Dataset.create``;
2. runs a selective predicate with and without push-down and checks the
   answers are identical;
3. projects columns, limits results, and computes aggregates;
4. shows the same queries from the command line via ``python -m repro scan``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.api import Dataset


def main() -> None:
    rng = np.random.default_rng(7)
    # Quantised features: a handful of distinct values per column, the
    # shape real categorical / binned data takes after preprocessing.
    features = rng.choice(
        [0.0, 0.25, 0.5, 1.0], size=(8_000, 40), p=(0.55, 0.2, 0.15, 0.1)
    )
    labels = rng.integers(0, 2, size=8_000).astype(np.float64)

    with tempfile.TemporaryDirectory(prefix="repro-scan-") as tmp:
        # A mixed manifest on purpose: value-indexed shards (DVI, CVI) take
        # the dictionary-probe fast path, the rest take the dense fallback.
        schemes = ["DVI", "CVI", "TOC", "CSR"] * 2
        dataset = Dataset.create(
            Path(tmp) / "shards", features, labels, scheme=schemes, batch_size=1_000
        )
        stats = dataset.stats()
        mix = ", ".join(f"{k}x{v}" for k, v in sorted(stats.scheme_counts.items()))
        print(f"dataset: {stats.n_shards} shards ({mix})")

        # 1. A selective conjunction: answered on the value dictionaries of
        # value-indexed shards, decode-then-filter everywhere else.
        where = "c3 == 0.25 and c7 == 1.0"
        pushed = dataset.scan(where=where)
        print(
            f"\nscan where {where!r}: {pushed.n_rows_matched} of "
            f"{pushed.n_rows_scanned} rows ({pushed.selectivity:.1%}); "
            f"push-down on {pushed.pushdown_shards} shards, "
            f"dense fallback on {pushed.fallback_shards}"
        )

        # Push-down changes the execution strategy, never the answer.
        fallback = dataset.scan(where=where, pushdown=False)
        assert np.array_equal(pushed.rows, fallback.rows)
        assert np.array_equal(pushed.row_ids, fallback.row_ids)
        print("pushed-down and decode-then-filter answers are bit-identical")

        # 2. Projection + limit: only the requested cells are materialised.
        head = dataset.scan(columns=[3, 7, 11], where=where, limit=5)
        print(f"\nfirst {head.rows.shape[0]} matches, columns c3/c7/c11:")
        for row_id, row in zip(head.row_ids, head.rows):
            print(f"  row {row_id:>5}: {row}")

        # 3. Aggregates: on TOC / value-indexed shards these come off code
        # frequencies without materialising any rows at all.
        agg = dataset.scan(where=where, agg="count,sum:c5,mean:c5,min:c3,max:c7")
        print("\naggregates over the matching rows:")
        for key, value in agg.aggregates.items():
            print(f"  {key:<10} {value:g}")

        # Sanity-check against the dense NumPy reference.
        mask = (features[:, 3] == 0.25) & (features[:, 7] == 1.0)
        assert agg.aggregates["count"] == int(mask.sum())
        assert np.isclose(agg.aggregates["mean(c5)"], features[mask][:, 5].mean())

        # 4. The same queries from the shell:
        print(
            "\nCLI equivalents:\n"
            f"  python -m repro scan --shard-dir {dataset.path} "
            f"--where '{where}' --limit 5\n"
            f"  python -m repro scan --shard-dir {dataset.path} "
            "--where 'c0 >= 0.5' --agg count,mean:c5"
        )


if __name__ == "__main__":
    main()
