"""Train logistic regression with MGD over TOC-compressed mini-batches.

Run with::

    python examples/train_logistic_regression.py

This is the paper's core workload: mini-batch stochastic gradient descent
where every mini-batch is compressed once up front and every epoch's matrix
operations (``A @ w`` and ``g @ A``) execute directly on the compressed
representation.  The script trains the same model on the dense batches and
on the compressed batches and shows that the learned parameters are
identical while the compressed batches are several times smaller.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DATASET_PROFILES,
    GradientDescentConfig,
    LogisticRegressionModel,
    MiniBatchGradientDescent,
    get_scheme,
)
from repro.ml.metrics import accuracy


def main() -> None:
    # A labelled ImageNet-feature-like dataset (moderate sparsity).
    profile = DATASET_PROFILES["imagenet"]
    features, labels = profile.classification(2000, seed=7)
    train_x, train_y = features[:1600], labels[:1600]
    test_x, test_y = features[1600:], labels[1600:]

    config = GradientDescentConfig(batch_size=250, epochs=10, learning_rate=0.3)
    optimizer = MiniBatchGradientDescent(config)

    # Train on TOC-compressed mini-batches.
    toc_scheme = get_scheme("TOC")
    toc_batches = optimizer.prepare_batches(train_x, train_y, scheme=toc_scheme)
    compressed_bytes = sum(batch.nbytes for batch, _ in toc_batches)
    dense_bytes = train_x.size * 8
    print(f"{len(toc_batches)} mini-batches: dense {dense_bytes / 1e6:.1f} MB -> "
          f"TOC {compressed_bytes / 1e6:.2f} MB ({dense_bytes / compressed_bytes:.1f}x)")

    toc_model = LogisticRegressionModel(train_x.shape[1], seed=0)
    history = optimizer.train(toc_model, toc_batches)
    print(f"trained {config.epochs} epochs on compressed batches "
          f"in {history.total_time:.2f}s, final loss {history.final_loss:.4f}")

    # Train the identical model on the raw dense batches for comparison.
    dense_model = LogisticRegressionModel(train_x.shape[1], seed=0)
    optimizer.fit(dense_model, train_x, train_y)

    assert np.allclose(toc_model.get_parameters(), dense_model.get_parameters(), rtol=1e-8)
    print("compressed and dense training produced identical parameters")

    print(f"train accuracy: {accuracy(toc_model.predict(train_x), train_y):.3f}")
    print(f"test accuracy:  {accuracy(toc_model.predict(test_x), test_y):.3f}")


if __name__ == "__main__":
    main()
