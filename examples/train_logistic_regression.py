"""Train logistic regression over TOC-compressed mini-batches — via the facade.

Run with::

    python examples/train_logistic_regression.py

This is the paper's core workload: mini-batch stochastic gradient descent
where every mini-batch is compressed once up front and every epoch's matrix
operations (``A @ w`` and ``g @ A``) execute directly on the compressed
representation.  Two :class:`repro.api.Estimator` objects train the same
model on raw dense batches (``scheme=None``) and on TOC batches
(``scheme="TOC"``): the learned parameters are identical while the
compressed batches are several times smaller.
"""

from __future__ import annotations

import numpy as np

from repro.api import DATASET_PROFILES, Estimator, TOCMatrix, accuracy


def main() -> None:
    # A labelled ImageNet-feature-like dataset (moderate sparsity).
    profile = DATASET_PROFILES["imagenet"]
    features, labels = profile.classification(2000, seed=7)
    train_x, train_y = features[:1600], labels[:1600]
    test_x, test_y = features[1600:], labels[1600:]

    toc_bytes = TOCMatrix.encode(train_x[:250]).nbytes
    print(f"first mini-batch: dense {250 * train_x.shape[1] * 8 / 1e3:.0f} KB -> "
          f"TOC {toc_bytes / 1e3:.1f} KB")

    hyper = dict(batch_size=250, epochs=10, learning_rate=0.3, seed=0)

    # Train on TOC-compressed mini-batches...
    toc = Estimator("logreg", scheme="TOC", **hyper)
    report = toc.fit(train_x, train_y)
    print(f"trained {report.epochs} epochs on compressed batches "
          f"in {report.history.total_time:.2f}s, final loss {report.final_loss:.4f}")

    # ...and the identical model on the raw dense batches for comparison.
    dense = Estimator("logreg", scheme=None, **hyper)
    dense.fit(train_x, train_y)

    assert np.allclose(
        toc.model.get_parameters(), dense.model.get_parameters(), rtol=1e-8
    )
    print("compressed and dense training produced identical parameters")

    print(f"train accuracy: {accuracy(toc.predict(train_x), train_y):.3f}")
    print(f"test accuracy:  {accuracy(toc.predict(test_x), test_y):.3f}")


if __name__ == "__main__":
    main()
