"""Quickstart: the whole library through one import — ``repro.api``.

Run with::

    python examples/quickstart.py

Walks the facade end to end:

1. compress a mini-batch losslessly with TOC and compute on it directly
   (the paper's core trick);
2. turn a dataset into a compressed shard directory with ``Dataset.create``
   (the Section 5.1 advisor picks the scheme per shard);
3. train a model over it with ``Estimator.fit`` — the facade routes to the
   out-of-core engine because the input is a ``Dataset``;
4. repair drift with ``Dataset.compact`` and inspect ``Dataset.stats``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.api import DATASET_PROFILES, Dataset, Estimator, TOCMatrix, accuracy


def main() -> None:
    # 1. The core trick: compress one mini-batch, compute on it directly.
    batch = DATASET_PROFILES["census"].matrix(250, seed=0)
    toc = TOCMatrix.encode(batch)
    assert np.array_equal(toc.to_dense(), batch)  # lossless
    weights = np.random.default_rng(0).normal(size=batch.shape[1])
    assert np.allclose(toc.matvec(weights), batch @ weights)  # no decode
    print(
        f"mini-batch {batch.shape[0]} x {batch.shape[1]}: TOC {toc.nbytes} bytes "
        f"({toc.compression_ratio():.1f}x vs dense), compressed matvec exact"
    )

    # 2-4. The lifecycle: create -> fit -> stats -> compact.
    features, labels = DATASET_PROFILES["census"].classification(2000, seed=3)
    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as tmp:
        dataset = Dataset.create(Path(tmp) / "shards", features, labels, scheme="auto")
        stats = dataset.stats()
        mix = ", ".join(f"{k}x{v}" for k, v in sorted(stats.scheme_counts.items()))
        print(
            f"\ndataset: {stats.n_shards} shards ({mix}), "
            f"{stats.payload_bytes / 1e6:.2f} MB payload "
            f"({stats.compression_ratio:.1f}x vs dense)"
        )

        estimator = Estimator("logreg", epochs=5, learning_rate=0.3)
        report = estimator.fit(dataset)  # Dataset input -> out-of-core backend
        predictions = estimator.predict(dataset)
        print(
            f"trained {report.backend}: final loss {report.final_loss:.4f}, "
            f"training accuracy {accuracy(predictions, dataset.labels()):.1%}"
        )

        # Long-lived datasets drift; compact re-advises and re-encodes only
        # the shards whose winning scheme changed.  Freshly advised shards
        # are already optimal, so this is a no-op — and says so.
        compaction = dataset.compact(readvise=True)
        print(
            f"compact: {compaction.n_reencoded} of {compaction.examined} shards "
            f"re-encoded ({'drift repaired' if compaction.changed else 'already optimal'})"
        )

    print("\nEverything above used one import: repro.api.")
    print("Try `python -m repro --help` for the CLI over the same facade.")


if __name__ == "__main__":
    main()
