"""Quickstart: compress a mini-batch with TOC and compute on it directly.

Run with::

    python examples/quickstart.py

Walks through the three things the library does:

1. compress a mini-batch losslessly with tuple-oriented compression,
2. execute matrix operations directly on the compressed representation,
3. compare the compressed size against the other schemes the paper evaluates.
"""

from __future__ import annotations

import numpy as np

from repro import TOCMatrix, available_schemes, generate_dataset, get_scheme


def main() -> None:
    # 1. A 250-row mini-batch from the Census-like dataset profile
    #    (moderate sparsity, heavily repeated column-value sequences).
    batch = generate_dataset("census", 250, seed=0)
    print(f"mini-batch: {batch.shape[0]} rows x {batch.shape[1]} columns, "
          f"{np.count_nonzero(batch)} non-zero cells")

    # 2. Compress it with TOC.  Encoding is lossless: decoding gives back the
    #    exact same matrix.
    toc = TOCMatrix.encode(batch)
    assert np.array_equal(toc.to_dense(), batch)
    print(f"TOC compressed size: {toc.nbytes} bytes "
          f"(ratio {toc.compression_ratio():.1f}x vs dense)")
    stats = toc.stats()
    print(f"  prefix-tree first layer: {int(stats['first_layer'])} unique pairs, "
          f"encoded table: {int(stats['codes'])} codes for {int(stats['nnz'])} non-zeros")

    # 3. Matrix operations run directly on the compressed form - no decoding.
    weights = np.random.default_rng(0).normal(size=batch.shape[1])
    scores = toc.matvec(weights)                  # A @ w   (used by the forward pass)
    gradient = toc.rmatvec(scores)                # s @ A   (used by the backward pass)
    assert np.allclose(scores, batch @ weights)
    assert np.allclose(gradient, scores @ batch)
    print("compressed matvec / rmatvec match the dense computation")

    # 4. How do the other schemes from the paper compare on this batch?
    print("\ncompression ratios on this mini-batch:")
    for name in available_schemes():
        compressed = get_scheme(name).compress(batch)
        print(f"  {name:<8} {compressed.compression_ratio():6.1f}x  ({compressed.nbytes} bytes)")


if __name__ == "__main__":
    main()
