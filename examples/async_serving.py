"""Scale-out serving: the asyncio facade and the multi-process cluster tier.

Run with::

    python examples/async_serving.py

Two layers sit above the micro-batched ``PredictionService``:

* :class:`~repro.api.AsyncPredictionService` — ``await service.predict(i)``
  from an event loop.  Requests bridge into the batcher via futures, so the
  loop never blocks on a decode, and admission control (bounded in-flight,
  deadlines) turns overload into *explicit, immediate* errors instead of
  unbounded queueing;
* :class:`~repro.api.ClusterService` — N worker processes, each with its
  own buffer pool, feature store, and checkpoint, behind one dispatcher.
  Per-worker queues are bounded (``backlog``), crashed workers respawn,
  and after ``Dataset.compact`` swaps the shards workers hot-reopen
  without dropping in-flight requests.

The demo trains a small model, serves it through the asyncio facade, then
deliberately overloads a tiny one-worker cluster to show load shedding:
every refused request fails fast with ``ServiceOverloaded`` — no caller
ever hangs.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import (
    DATASET_PROFILES,
    AsyncPredictionService,
    ClusterService,
    DeadlineExceeded,
    Estimator,
    ServiceOverloaded,
    open_service,
)

ROWS = 1200
REQUESTS = 400


async def serve_async(registry_dir: Path) -> None:
    """The asyncio surface: concurrent awaits coalesce into mini-batches."""
    service, checkpoint = open_service(registry_dir, cache_size=256)
    async with AsyncPredictionService(service, max_inflight=64) as aps:
        rng = np.random.default_rng(0)
        ids = rng.integers(0, ROWS, size=REQUESTS)
        start = time.perf_counter()
        values = await asyncio.gather(*(aps.predict(int(i)) for i in ids))
        wall = time.perf_counter() - start
        stats = service.batcher_stats
        print(
            f"asyncio facade: {len(values)} awaited predictions in {wall:.3f}s "
            f"({len(values) / wall:,.0f} req/s) over model "
            f"v{checkpoint.version:05d}"
        )
        print(
            f"  micro-batching underneath: {stats.batches} model calls, "
            f"mean batch {stats.mean_batch_size:.1f}"
        )

        # Deadlines turn slow answers into explicit errors, not hangs.
        try:
            await aps.predict(0, deadline=1e-9)
        except DeadlineExceeded:
            print("  a 1ns deadline fails explicitly: DeadlineExceeded")


def shed_load(registry_dir: Path, shard_dir: Path) -> None:
    """Overload a deliberately tiny cluster and watch it shed, not queue."""
    with ClusterService(
        registry_dir,
        shard_dir=shard_dir,
        workers=1,
        backlog=2,
        admission="reject",
        cache_size=0,
    ) as cluster:
        cluster.predict_many(range(8))  # warm the worker
        from concurrent.futures import ThreadPoolExecutor

        def client(row_id: int) -> bool:
            try:
                cluster.predict(row_id)
            except ServiceOverloaded:
                return False
            return True

        with ThreadPoolExecutor(max_workers=16) as clients:
            outcomes = list(clients.map(client, range(REQUESTS)))
        answered = sum(outcomes)
        shed = len(outcomes) - answered
        print(
            f"\nload shedding: 16 clients against 1 worker x backlog 2 — "
            f"{answered} answered, {shed} shed"
        )
        print(
            "  every shed request failed fast with ServiceOverloaded; "
            "nothing queued unboundedly, nobody hung"
        )
        depth = cluster.metrics()["gauges"].get(
            "cluster.worker.queue_depth{worker=0}", 0
        )
        print(f"  final worker queue depth: {depth:.0f}")


def main() -> None:
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=3)
    with tempfile.TemporaryDirectory(prefix="repro-async-serving-") as tmp:
        shard_dir = Path(tmp) / "shards"
        registry_dir = Path(tmp) / "checkpoints"
        estimator = Estimator(
            "logreg", scheme="TOC", batch_size=200, epochs=2, learning_rate=0.3
        )
        estimator.fit(features, labels, shard_dir=shard_dir)
        estimator.save(registry_dir)

        asyncio.run(serve_async(registry_dir))
        shed_load(registry_dir, shard_dir)

    print("\nSee `python -m repro serve --workers N` for the CLI cluster tier")
    print("with graceful SIGINT/SIGTERM drain, and the 'Scale-out serving'")
    print("section of the README for the full picture.")


if __name__ == "__main__":
    # ClusterService spawns workers; the spawn start method re-imports this
    # module, so cluster code must stay behind the __main__ guard.
    main()
