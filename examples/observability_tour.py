"""A tour of the observability layer: metrics, spans, and bench history.

Run with::

    python examples/observability_tour.py

Every hot path in the pipeline feeds one process-global substrate —
counters/gauges/histograms in ``repro.obs.metrics``, wall-time spans in
``repro.obs.trace`` — so a single snapshot answers "what did this process
actually do": batches encoded, epochs trained, rows scanned with the
predicate pushed down, buffer-pool hits vs evictions, serving latency
percentiles.  The third piece is history: ``BENCH_*.json`` snapshots
ingested into a SQLite registry and diffed against the previous run on the
same machine class, which is what ``repro bench-report --check`` gates CI
on.

This example:

1. trains out-of-core, serves online traffic, and runs a push-down scan —
   the normal facade calls, nothing observability-specific;
2. prints the metrics those calls left behind (``Dataset.stats`` with
   ``metrics=True``, ``service.metrics()``, the engine histograms);
3. dumps the recorded spans as Chrome trace JSON (load the file in
   ``chrome://tracing`` or ui.perfetto.dev to see the nesting);
4. ingests two synthetic bench snapshots into a throwaway registry — the
   second with a 25% throughput drop — to show the delta table and the
   regression flag CI fails on.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.api import DATASET_PROFILES, Dataset, Estimator, open_service
from repro.obs import bench_report, default_tracer

ROWS = 800
REQUESTS = 300


def run_pipeline(tmp: Path) -> tuple[Dataset, dict]:
    """Train, serve, and scan — the instrumented hot paths do the rest."""
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=1)
    dataset = Dataset.create(
        tmp / "shards", features, labels,
        scheme="auto", batch_size=200, executor="serial", seed=0,
    )

    estimator = Estimator("logreg", epochs=3, executor="serial", learning_rate=0.3)
    estimator.fit(dataset)
    estimator.save(tmp / "checkpoints")

    service, _ = open_service(
        tmp / "checkpoints", max_batch_size=32, cache_size=128,
        store_kwargs=dict(decoded_cache_rows=ROWS),
    )
    rng = np.random.default_rng(0)
    with service:
        for row_id in rng.integers(0, ROWS, size=REQUESTS):
            service.predict_id(row_id)
        served = service.metrics()

    dataset.scan(where="c0 == 0", agg="count")
    return dataset, served


def show_metrics(dataset: Dataset, served: dict) -> None:
    stats = dataset.stats(metrics=True)
    counters = stats.metrics["counters"]
    print("process-wide counters (every instrumented subsystem):")
    for name in sorted(counters):
        print(f"  {name:<34} {counters[name]:,}")

    print("\nhistograms (timings in seconds, batch sizes in rows):")
    for name, summary in sorted(stats.metrics["histograms"].items()):
        print(
            f"  {name:<34} n={summary['count']:<4} "
            f"p50={summary['p50']:.2e} p99={summary['p99']:.2e}"
        )

    print("\nthis service instance (serve.* with the svc label stripped):")
    for name, value in sorted(served["counters"].items()):
        print(f"  {name:<34} {value:,}")
    request = served["histograms"]["serve.request.seconds"]
    print(
        f"  request latency: p50={request['p50'] * 1e6:.0f}µs "
        f"p99={request['p99'] * 1e6:.0f}µs over {request['count']} requests"
    )


def show_spans(tmp: Path) -> None:
    tracer = default_tracer()
    trace_path = tmp / "trace.json"
    trace_path.write_text(tracer.dump_chrome(indent=2))
    names = {}
    for record in tracer.spans():
        names[record["name"]] = names.get(record["name"], 0) + 1
    print(f"\n{len(tracer)} spans recorded ({dict(sorted(names.items()))})")
    print(f"chrome trace written to {trace_path} — load it in chrome://tracing")


def show_bench_history(tmp: Path) -> None:
    """Two synthetic runs, the second 25% slower: the gate CI runs."""
    print("\nbench history (synthetic 25% throughput regression):")
    db = tmp / "bench_registry.sqlite"
    for created, rps, wall in ((1000.0, 20_000.0, 1.00), (2000.0, 15_000.0, 1.33)):
        payload = {
            "version": 3,
            "name": "serving",
            "created_unix": created,
            "git_commit": f"demo{int(created)}",
            "platform": {"system": "demo", "machine": "demo", "python": "3.11"},
            "platform_key": "demo-demo-py3.11",
            "records": [
                {"bench": "serving", "backend": "microbatch",
                 "throughput_rps": rps, "wall_seconds": wall},
            ],
        }
        path = tmp / f"BENCH_serving_{int(created)}.json"
        path.write_text(json.dumps(payload))
        exit_code = bench_report([str(path)], db=db, check=True)
    print(f"\nexit code {exit_code} — exactly what CI's `bench-report --check` fails on")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-obs-tour-") as tmp:
        tmp = Path(tmp)
        dataset, served = run_pipeline(tmp)
        show_metrics(dataset, served)
        show_spans(tmp)
        show_bench_history(tmp)

    print("\nThe same data is one command away: `python -m repro obs metrics`,")
    print("`python -m repro obs dump --format chrome`, and `python -m repro")
    print("bench-report --check BENCH_*.json` over your own bench artifacts.")


if __name__ == "__main__":
    main()
