"""Train a feed-forward network on TOC-compressed multi-class data — via the facade.

Run with::

    python examples/neural_network_multiclass.py

The network mirrors the paper's architecture (feed-forward, sigmoid hidden
layers, softmax output, cross-entropy loss).  The first-layer forward pass
(``A @ W1``) and the first-layer backward pass (``delta^T @ A``) are the
``A @ M`` / ``M @ A`` compressed operations of Table 1; everything deeper in
the network is ordinary dense algebra.  ``Estimator(model="ffnn")`` builds
and trains it over TOC-compressed mini-batches.
"""

from __future__ import annotations

import numpy as np

from repro.api import DATASET_PROFILES, Estimator, TOCMatrix, accuracy, error_rate


def main() -> None:
    profile = DATASET_PROFILES["mnist"]          # 784 columns, 10 classes
    features, labels = profile.classification(1500, seed=5)
    # Rescale features to [0, 1]: a constant rescaling keeps the repeated
    # value sequences intact, so it does not change TOC's compression ratio.
    features = features / max(features.max(), 1.0)
    train_x, train_y = features[:1200], labels[:1200].astype(int)
    test_x, test_y = features[1200:], labels[1200:].astype(int)

    batch_bytes = 125 * train_x.shape[1] * 8
    ratio = batch_bytes / TOCMatrix.encode(train_x[:125]).nbytes
    print(f"TOC compresses the training mini-batches about {ratio:.1f}x")

    estimator = Estimator(
        "ffnn",
        scheme="TOC",
        hidden_sizes=(64,),
        n_classes=10,
        batch_size=125,
        epochs=30,
        learning_rate=2.0,
        seed=0,
    )
    report = estimator.fit(
        train_x, train_y,
        eval_fn=lambda model: error_rate(model.predict(test_x), test_y),
    )
    history = report.history

    print("epoch  loss     test error [%]")
    for epoch, (loss, err) in enumerate(zip(history.epoch_losses, history.epoch_metrics), 1):
        if epoch % 5 == 0 or epoch == 1:
            print(f"{epoch:>5}  {loss:.4f}  {err:8.1f}")

    print(f"\nfinal train accuracy: {accuracy(estimator.predict(train_x), train_y):.3f}")
    print(f"final test accuracy:  {accuracy(estimator.predict(test_x), test_y):.3f}")
    assert np.isfinite(report.final_loss)


if __name__ == "__main__":
    main()
