"""Train a feed-forward neural network on TOC-compressed multi-class data.

Run with::

    python examples/neural_network_multiclass.py

The network mirrors the paper's architecture (feed-forward, sigmoid hidden
layers, softmax output, cross-entropy loss).  The first-layer forward pass
(``A @ W1``) and the first-layer backward pass (``delta^T @ A``) are the
``A @ M`` / ``M @ A`` compressed operations of Table 1; everything deeper in
the network is ordinary dense algebra.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DATASET_PROFILES,
    FeedForwardNetwork,
    GradientDescentConfig,
    MiniBatchGradientDescent,
    get_scheme,
)
from repro.ml.metrics import accuracy, error_rate


def main() -> None:
    profile = DATASET_PROFILES["mnist"]          # 784 columns, 10 classes
    features, labels = profile.classification(1500, seed=5)
    # Rescale features to [0, 1]: a constant rescaling keeps the repeated
    # value sequences intact, so it does not change TOC's compression ratio.
    features = features / max(features.max(), 1.0)
    train_x, train_y = features[:1200], labels[:1200]
    test_x, test_y = features[1200:], labels[1200:]

    config = GradientDescentConfig(batch_size=125, epochs=30, learning_rate=2.0)
    optimizer = MiniBatchGradientDescent(config)
    batches = optimizer.prepare_batches(train_x, train_y.astype(int), scheme=get_scheme("TOC"))

    ratio = (train_x.size * 8) / sum(batch.nbytes for batch, _ in batches)
    print(f"TOC compressed the training mini-batches {ratio:.1f}x")

    model = FeedForwardNetwork(train_x.shape[1], hidden_sizes=(64,), n_classes=10, seed=0)
    history = optimizer.train(
        model,
        batches,
        eval_fn=lambda m: error_rate(m.predict(test_x), test_y),
    )

    print("epoch  loss     test error [%]")
    for epoch, (loss, err) in enumerate(zip(history.epoch_losses, history.epoch_metrics), 1):
        if epoch % 5 == 0 or epoch == 1:
            print(f"{epoch:>5}  {loss:.4f}  {err:8.1f}")

    print(f"\nfinal train accuracy: {accuracy(model.predict(train_x), train_y):.3f}")
    print(f"final test accuracy:  {accuracy(model.predict(test_x), test_y):.3f}")
    assert np.isfinite(history.final_loss)


if __name__ == "__main__":
    main()
