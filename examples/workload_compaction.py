"""Workload-aware compaction with a measured kernel calibration.

Run with::

    python examples/workload_compaction.py

The Section 5.1 advisor originally ranked schemes by compression ratio
with a flat 0.25 penalty for decode-only schemes — a guess that mis-picks
exactly where the paper's Figure 8 shows kernel costs diverging.  TOC's
ratio wins on moderately-sparse data, but its ``row_slice`` kernel runs
orders of magnitude slower than the value-indexed schemes', so a serving
replica encoded on ratio alone answers point lookups through the slowest
possible path.

The fix is measurement: a one-time calibration pass times every scheme's
kernels on this machine, persists next to the dataset as
``calibration.json``, and ``workload=`` scores schemes by
``bytes x expected op mix`` — ``"train"`` weighs the matmat epoch kernels,
``"serve"`` weighs row_slice lookups, ``"scan"`` weighs decode+gather.

This example:

1. shards a moderately-sparse dataset with the ratio-only advisor (the
   historical behaviour — no calibration involved);
2. compacts the same directory for a serving replica with
   ``compact(workload="serve")`` — the calibration is measured (or
   reloaded) automatically and only the shards whose winner changed are
   re-encoded;
3. times point lookups before and after to show the measured pick winning;
4. shows the train-replica pick can differ from the serve-replica pick.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import DATASET_PROFILES, Dataset


def time_lookups(dataset: Dataset, ids: list[int], repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        dataset.take(ids)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    features, labels = DATASET_PROFILES["census"].classification(4_000, seed=0)
    rng = np.random.default_rng(0)
    ids = sorted(rng.choice(features.shape[0], size=64, replace=False).tolist())

    with tempfile.TemporaryDirectory(prefix="repro-workload-") as tmp:
        # 1. The historical advisor: ratio with a flat decode penalty.
        dataset = Dataset.create(
            Path(tmp) / "shards", features, labels, scheme="auto", batch_size=500
        )
        mix = dataset.stats().scheme_counts
        before = time_lookups(dataset, ids)
        print(f"ratio-only advisor: {mix}, 64 lookups in {before * 1e3:.2f}ms")

        # 2. Re-advise the same directory for serving.  The first workload=
        # call runs the calibration pass (well under a second) and persists
        # calibration.json next to the manifest; later calls reload it.
        report = dataset.compact(workload="serve")
        print(
            f"compact(workload='serve'): {report.n_reencoded} of "
            f"{report.examined} shards re-encoded -> {dataset.stats().scheme_counts}"
        )
        assert (dataset.path / "calibration.json").exists()

        # 3. The serve-workload pick answers the same lookups faster.
        after = time_lookups(dataset, ids)
        print(f"serve-workload advisor: 64 lookups in {after * 1e3:.2f}ms")

        # 4. A training replica of the same data can legitimately choose a
        # different mix: the epoch kernels (matmat) have different relative
        # costs than point lookups.
        replica = Dataset.create(
            Path(tmp) / "train-replica", features, labels,
            scheme="auto", batch_size=500, workload="train",
        )
        print(f"train-workload replica: {replica.stats().scheme_counts}")


if __name__ == "__main__":
    main()
