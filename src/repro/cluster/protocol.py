"""Length-prefixed JSON frames over a stream socket.

The dispatcher and its workers live on the same machine and exchange small
control/request/response dicts; the wire format is deliberately boring — a
4-byte big-endian length header followed by that many bytes of UTF-8 JSON:

.. code-block:: text

    +----------------+----------------------------+
    | length (>I)    | json payload (length bytes)|
    +----------------+----------------------------+

JSON (rather than pickle) keeps the frames safe to parse from a
half-trusted peer and debuggable with ``socat``; a binary row payload never
crosses this boundary — workers read feature bytes straight from the shared
shard directory, so frames stay a few hundred bytes regardless of model or
dataset size.  :data:`MAX_FRAME_BYTES` bounds what a frame may claim so a
corrupt header cannot make the receiver allocate gigabytes.
"""

from __future__ import annotations

import json
import socket
import struct

#: 4-byte big-endian unsigned frame length header.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; larger claims are protocol errors.
#: Generous for bulk ``predict_many`` responses, tiny next to a shard.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """The peer sent bytes that do not parse as a sane frame."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise ``message`` and write one complete frame.

    Callers that share a socket between threads must hold their own send
    lock — ``sendall`` is atomic per call here, but interleaving two frames
    byte-wise would corrupt the stream.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one complete frame; ``None`` on clean EOF at a frame boundary.

    EOF in the *middle* of a frame means the peer died mid-send and raises
    :class:`ProtocolError` — callers treat it like a crashed peer, not like
    a graceful shutdown.
    """
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header claims {length} bytes (max {MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length, allow_eof=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, n: int, *, allow_eof: bool):
    """Read exactly ``n`` bytes, looping over short reads."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


__all__ = ["MAX_FRAME_BYTES", "ProtocolError", "recv_frame", "send_frame"]
