"""The multi-process serving tier: one dispatcher, N worker processes.

:class:`ClusterService` spawns ``workers`` independent processes (spawn
context — the parent runs threads, so fork is off the table), each running
:func:`repro.cluster.worker.worker_main` over the *same* checkpoint
registry and shard directory, and speaks length-prefixed JSON frames to
each over a private Unix socket.  Python's GIL serialises decode work
inside one process; N processes decode on N cores.

The dispatcher is deliberately thin — it holds no model and no shard
bytes.  Per request it does:

* **admission** — find the least-loaded live worker with queue room
  (in-flight per worker is bounded by ``backlog``).  When every worker is
  full the configured policy decides: ``"reject"`` raises
  :class:`~repro.cluster.errors.ServiceOverloaded` immediately, ``"block"``
  waits for a slot but never past the request's deadline
  (:class:`~repro.cluster.errors.DeadlineExceeded`);
* **routing** — one frame out, the reply routed back by request id to the
  caller's ``concurrent.futures.Future`` (so the sync ``predict`` and an
  ``asyncio.wrap_future`` caller share one code path);
* **supervision** — a worker that dies mid-request fails that worker's
  in-flight futures with :class:`~repro.cluster.errors.WorkerCrashed`
  (prediction is idempotent; callers may resubmit) and is respawned from
  the same config, so capacity heals without a restart.

Deadlines cross the process boundary as absolute wall-clock times (same
host), letting workers shed queued work whose caller has already given up.
"""

from __future__ import annotations

import itertools
import multiprocessing
import shutil
import socket
import tempfile
import threading
import time
from concurrent.futures import Future
from pathlib import Path

from repro.cluster.asyncio_service import ADMISSION_POLICIES
from repro.cluster.errors import (
    ClusterError,
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
    WorkerCrashed,
)
from repro.cluster.protocol import ProtocolError, recv_frame, send_frame
from repro.cluster.worker import ERR_CLOSED, ERR_DEADLINE, ERR_OVERLOADED, worker_main
from repro.obs import metrics as obs_metrics
from repro.serve.checkpoint import Checkpoint, ModelRegistry

#: Seconds the dispatcher waits for a fresh worker's socket to come up
#: (covers a cold python + numpy import on a loaded box).
SPAWN_CONNECT_TIMEOUT = 60.0

#: Extra seconds past a request's deadline before the dispatcher stops
#: waiting for the worker's (late) explicit answer and sheds client-side.
DEADLINE_GRACE_SECONDS = 2.0

_CLUSTER_IDS = itertools.count()

_ERROR_CLASSES = {
    ERR_DEADLINE: DeadlineExceeded,
    ERR_OVERLOADED: ServiceOverloaded,
    ERR_CLOSED: ServiceClosed,
}


class _WorkerHandle:
    """Parent-side state for one worker process."""

    __slots__ = ("index", "config", "process", "conn", "pending", "alive", "send_lock")

    def __init__(self, index: int, config: dict):
        self.index = index
        self.config = config
        self.process = None
        self.conn: socket.socket | None = None
        #: request id -> (future, reply kind); mutated under the cluster lock.
        self.pending: dict[int, tuple[Future, str]] = {}
        self.alive = False
        self.send_lock = threading.Lock()


class ClusterService:
    """N worker processes behind one admission-controlled front door.

    Parameters
    ----------
    registry:
        Checkpoint registry directory (or :class:`ModelRegistry`); every
        worker loads the same resolved version.
    version:
        Checkpoint version to serve (``"latest"`` by default).
    shard_dir:
        Shard directory workers read features from; defaults to the one
        recorded in the checkpoint.  Required (workers serve stored rows).
    workers:
        Number of worker processes (>= 1).
    backlog:
        Max in-flight requests *per worker*; the cluster's total capacity
        is ``workers * backlog``.
    admission:
        ``"block"`` (default) or ``"reject"`` — what happens when every
        worker is at its backlog.
    default_deadline:
        Seconds-from-submit deadline applied when a call passes none.
    max_batch_size / cache_size / store_kwargs:
        Forwarded to each worker's private service stack.
    poll_seconds:
        Worker manifest-generation poll interval (hot re-open after
        ``Dataset.compact``).
    """

    def __init__(
        self,
        registry,
        version: int | str = "latest",
        *,
        shard_dir: Path | str | None = None,
        workers: int = 2,
        backlog: int = 64,
        admission: str = "block",
        default_deadline: float | None = None,
        max_batch_size: int = 32,
        cache_size: int = 256,
        store_kwargs: dict | None = None,
        poll_seconds: float | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backlog < 1:
            raise ValueError("backlog must be at least 1")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, got {admission!r}"
            )
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.checkpoint: Checkpoint = registry.load(version)
        directory = Path(shard_dir) if shard_dir is not None else self.checkpoint.shard_dir
        if directory is None:
            raise ValueError(
                "cluster serving needs a shard directory (pass shard_dir= or "
                "train the checkpoint with one recorded)"
            )
        self.shard_dir = directory
        self.n_workers = workers
        self.backlog = backlog
        self.admission = admission
        self.default_deadline = default_deadline
        self._cluster_id = next(_CLUSTER_IDS)
        self._socket_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
        self._ctx = multiprocessing.get_context("spawn")
        self._req_ids = itertools.count()
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._closing = False

        labels = {"svc": self._cluster_id}
        self._m_requests = obs_metrics.counter("cluster.server.requests", **labels)
        self._m_rejected = obs_metrics.counter("cluster.server.rejected", **labels)
        self._m_shed = obs_metrics.counter("cluster.server.shed", **labels)
        self._m_crashed = obs_metrics.counter("cluster.server.crashed_requests", **labels)
        self._m_respawns = obs_metrics.counter("cluster.server.respawns", **labels)
        self._m_inflight = obs_metrics.gauge("cluster.server.inflight", **labels)

        self._handles = [
            _WorkerHandle(
                index,
                {
                    "worker_index": index,
                    "socket_path": str(self._socket_dir / f"worker-{index}.sock"),
                    "checkpoint_dir": str(registry.root),
                    "version": self.checkpoint.version,
                    "shard_dir": str(directory),
                    "backlog": backlog,
                    "max_batch_size": max_batch_size,
                    "cache_size": cache_size,
                    "store_kwargs": store_kwargs,
                    "poll_seconds": poll_seconds,
                },
            )
            for index in range(workers)
        ]
        try:
            for handle in self._handles:
                self._start_worker(handle)
        except BaseException:
            self.close(drain=False)
            raise

    # -- worker lifecycle ------------------------------------------------------

    def _start_worker(self, handle: _WorkerHandle) -> None:
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.config,),
            name=f"repro-cluster-{self._cluster_id}-worker-{handle.index}",
            daemon=True,
        )
        handle.process.start()
        handle.conn = self._connect(handle)
        handle.alive = True
        threading.Thread(
            target=self._reader_loop,
            args=(handle,),
            name=f"repro-cluster-{self._cluster_id}-reader-{handle.index}",
            daemon=True,
        ).start()

    def _connect(self, handle: _WorkerHandle) -> socket.socket:
        """Retry until the worker's listener is up (it binds before accept)."""
        deadline = time.monotonic() + SPAWN_CONNECT_TIMEOUT
        path = handle.config["socket_path"]
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(path)
                return sock
            except (FileNotFoundError, ConnectionRefusedError):
                sock.close()
                if not handle.process.is_alive():
                    raise WorkerCrashed(
                        f"worker {handle.index} exited during startup "
                        f"(exitcode {handle.process.exitcode})"
                    ) from None
                if time.monotonic() > deadline:
                    raise WorkerCrashed(
                        f"worker {handle.index} did not come up within "
                        f"{SPAWN_CONNECT_TIMEOUT:.0f}s"
                    ) from None
                time.sleep(0.02)

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        """Route every reply frame from one worker back to its future."""
        while True:
            try:
                frame = recv_frame(handle.conn)
            except (ProtocolError, OSError):
                frame = None
            if frame is None:
                break
            with self._lock:
                entry = handle.pending.pop(frame.get("id"), None)
                self._m_inflight.set(self._total_inflight())
                self._slot_free.notify_all()
            if entry is None:
                continue  # late reply for a request the caller gave up on
            self._resolve(entry, frame)
        self._on_worker_gone(handle)

    def _resolve(self, entry: tuple[Future, str], frame: dict) -> None:
        future, kind = entry
        if not future.set_running_or_notify_cancel():
            return
        if frame.get("ok"):
            if kind == "frame":
                future.set_result(frame)
            else:
                future.set_result(frame.get(kind))
        else:
            code = frame.get("error")
            exc_cls = _ERROR_CLASSES.get(code, ClusterError)
            message = frame.get("message", "")
            if exc_cls is ClusterError and code:
                message = f"worker error ({code}): {message}"
            future.set_exception(exc_cls(message))

    def _on_worker_gone(self, handle: _WorkerHandle) -> None:
        """EOF from a worker: fail its in-flight work, respawn unless closing."""
        with self._lock:
            was_alive = handle.alive
            handle.alive = False
            orphans = list(handle.pending.values())
            handle.pending.clear()
            self._m_inflight.set(self._total_inflight())
            self._slot_free.notify_all()
        for entry in orphans:
            self._m_crashed.inc()
            future, _ = entry
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    WorkerCrashed(f"worker {handle.index} died before answering")
                )
        if handle.conn is not None:
            handle.conn.close()
        if self._closing or not was_alive:
            return
        handle.process.join(timeout=5.0)
        self._m_respawns.inc()
        self._start_worker(handle)

    # -- admission + routing ---------------------------------------------------

    def _total_inflight(self) -> int:
        return sum(len(h.pending) for h in self._handles)

    def _pick_worker(self) -> _WorkerHandle | None:
        """Least-loaded live worker with queue room, or ``None`` if all full."""
        best = None
        for handle in self._handles:
            if not handle.alive or len(handle.pending) >= self.backlog:
                continue
            if best is None or len(handle.pending) < len(best.pending):
                best = handle
        return best

    def _admit(self, expires: float | None, kind: str) -> tuple[_WorkerHandle, int, Future]:
        """Reserve a slot on a worker; returns (handle, request id, future)."""
        self._m_requests.inc()
        with self._slot_free:
            while True:
                if self._closing:
                    raise ServiceClosed("cluster service is closed")
                handle = self._pick_worker()
                if handle is not None:
                    req_id = next(self._req_ids)
                    future: Future = Future()
                    handle.pending[req_id] = (future, kind)
                    self._m_inflight.set(self._total_inflight())
                    return handle, req_id, future
                if not any(h.alive for h in self._handles):
                    raise WorkerCrashed("no live workers")
                if self.admission == "reject":
                    self._m_rejected.inc()
                    raise ServiceOverloaded(
                        f"{self._total_inflight()} requests in flight "
                        f"({self.n_workers} workers x backlog {self.backlog})"
                    )
                timeout = None if expires is None else expires - time.time()
                if timeout is not None and timeout <= 0:
                    self._m_shed.inc()
                    raise DeadlineExceeded("deadline passed while waiting for admission")
                self._slot_free.wait(timeout)

    def _abandon(self, handle: _WorkerHandle, req_id: int) -> None:
        with self._lock:
            handle.pending.pop(req_id, None)
            self._m_inflight.set(self._total_inflight())
            self._slot_free.notify_all()

    def _send(self, handle: _WorkerHandle, req_id: int, message: dict) -> None:
        try:
            with handle.send_lock:
                send_frame(handle.conn, message)
        except (OSError, ProtocolError) as exc:
            self._abandon(handle, req_id)
            raise WorkerCrashed(
                f"could not reach worker {handle.index}: {exc}"
            ) from exc

    def submit(self, row_id: int, *, deadline: float | None = None) -> Future:
        """Route one row-id prediction; non-blocking, returns a future.

        ``asyncio`` callers can ``await asyncio.wrap_future(cluster.submit(r))``.
        Raises admission errors (:class:`ServiceOverloaded`,
        :class:`DeadlineExceeded`, :class:`ServiceClosed`) synchronously; the
        future fails with worker-side errors.
        """
        expires = self._expires(deadline)
        handle, req_id, future = self._admit(expires, "value")
        self._send(
            handle,
            req_id,
            {"op": "predict", "id": req_id, "row_id": int(row_id), "deadline": expires},
        )
        return future

    def predict(self, row_id: int, *, deadline: float | None = None) -> float:
        """Predict for one stored row on some worker; explicit errors, no hangs."""
        expires = self._expires(deadline)
        future = self.submit(row_id, deadline=deadline)
        return self._await(future, expires)

    def predict_many(self, row_ids, *, deadline: float | None = None) -> list[float]:
        """Bulk predict: one frame to one worker, one bulk store+model call."""
        expires = self._expires(deadline)
        handle, req_id, future = self._admit(expires, "values")
        self._send(
            handle,
            req_id,
            {
                "op": "predict_many",
                "id": req_id,
                "row_ids": [int(r) for r in row_ids],
                "deadline": expires,
            },
        )
        return self._await(future, expires)

    def _expires(self, deadline: float | None) -> float | None:
        if deadline is None:
            deadline = self.default_deadline
        return None if deadline is None else time.time() + deadline

    def _await(self, future: Future, expires: float | None):
        """Block for the answer, but never past deadline + grace.

        Workers shed past-deadline work with an explicit reply, so the
        timeout here only fires if a worker is wedged mid-computation; the
        request's slot frees when its (late) reply or crash arrives.
        """
        if expires is None:
            return future.result()
        try:
            return future.result(
                timeout=max(0.0, expires - time.time()) + DEADLINE_GRACE_SECONDS
            )
        except TimeoutError as exc:
            if isinstance(exc, DeadlineExceeded):
                raise
            self._m_shed.inc()
            raise DeadlineExceeded("deadline passed before the worker answered") from None

    # -- control plane ---------------------------------------------------------

    def _control(self, handle: _WorkerHandle, op: str, timeout: float = 10.0) -> dict:
        """Send a control frame and wait for its reply frame."""
        with self._lock:
            if self._closing:
                raise ServiceClosed("cluster service is closed")
            if not handle.alive:
                raise WorkerCrashed(f"worker {handle.index} is down")
            req_id = next(self._req_ids)
            future: Future = Future()
            handle.pending[req_id] = (future, "frame")
        self._send(handle, req_id, {"op": op, "id": req_id})
        try:
            return future.result(timeout=timeout)
        except TimeoutError:
            self._abandon(handle, req_id)
            raise WorkerCrashed(
                f"worker {handle.index} did not answer {op!r} within {timeout}s"
            ) from None

    def ping(self) -> list[dict]:
        """Health-check every live worker; one status dict per worker."""
        return [self._control(handle, "ping") for handle in self._handles if handle.alive]

    def generations(self) -> list[int | None]:
        """Each live worker's current manifest generation (via ping)."""
        return [status.get("generation") for status in self.ping()]

    def crash_worker(self, index: int) -> None:
        """Fault injection: make worker ``index`` exit hard (tests the respawn)."""
        handle = self._handles[index]
        with self._lock:
            if not handle.alive:
                raise WorkerCrashed(f"worker {index} is already down")
            req_id = next(self._req_ids)
        self._send(handle, req_id, {"op": "crash", "id": req_id})

    @property
    def alive_workers(self) -> int:
        return sum(1 for h in self._handles if h.alive)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._total_inflight()

    def metrics(self) -> dict:
        """Dispatcher counters plus every worker's metrics (``worker=i`` keys).

        Top-level ``counters``/``gauges``/``histograms`` hold the
        dispatcher's own ``cluster.server.*`` series and each worker's
        ``cluster.worker.*`` series (label-suffixed, e.g.
        ``cluster.worker.queue_depth{worker=1}``); ``workers`` maps worker
        index to its full per-process snapshot.
        """
        out = obs_metrics.snapshot(
            "cluster.server.", labels={"svc": self._cluster_id}, strip_labels=True
        )
        out["workers"] = {}
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                frame = self._control(handle, "metrics")
            except (WorkerCrashed, ServiceClosed):
                continue
            worker_metrics = frame.get("metrics", {})
            out["workers"][str(handle.index)] = worker_metrics
            for kind in ("counters", "gauges", "histograms"):
                for key, value in worker_metrics.get(kind, {}).items():
                    if key.startswith("cluster.worker."):
                        out[kind][key] = value
        return out

    # -- lifecycle -------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the cluster: no new work, drain (or fail) in-flight, reap workers.

        ``drain=True`` sends every worker a shutdown frame; workers finish
        everything already queued, ack, and exit — callers holding futures
        get real answers.  ``drain=False`` fails in-flight futures with
        :class:`ServiceClosed` and terminates the processes.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._slot_free.notify_all()
        acks = []
        for handle in self._handles:
            if not handle.alive or handle.conn is None:
                continue
            if drain:
                with self._lock:
                    req_id = next(self._req_ids)
                    future: Future = Future()
                    handle.pending[req_id] = (future, "frame")
                try:
                    with handle.send_lock:
                        send_frame(handle.conn, {"op": "shutdown", "id": req_id})
                    acks.append(future)
                except OSError:
                    self._abandon(handle, req_id)
            else:
                with self._lock:
                    orphans = list(handle.pending.values())
                    handle.pending.clear()
                for future, _ in orphans:
                    if future.set_running_or_notify_cancel():
                        future.set_exception(ServiceClosed("cluster service is closed"))
        for future in acks:
            try:
                future.result(timeout=timeout)
            except Exception:
                pass  # worker died while draining; reaped below either way
        for handle in self._handles:
            if handle.conn is not None:
                handle.conn.close()
            process = handle.process
            if process is not None and process.is_alive():
                process.join(timeout=5.0 if drain else 1.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            handle.alive = False
        shutil.rmtree(self._socket_dir, ignore_errors=True)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DEADLINE_GRACE_SECONDS",
    "SPAWN_CONNECT_TIMEOUT",
    "ClusterService",
    "worker_main",
]
