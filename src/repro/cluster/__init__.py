"""repro.cluster — the scale-out serving tier.

Two ways to serve predictions beyond one blocking thread:

* :class:`AsyncPredictionService` — an asyncio facade over one in-process
  :class:`~repro.serve.service.PredictionService`: ``await
  service.predict(row_id)`` with micro-batching underneath, bounded
  in-flight admission, deadlines, and load shedding;
* :class:`ClusterService` — N worker processes (each with its own buffer
  pool, feature store, and checkpoint) behind one dispatcher speaking
  length-prefixed JSON frames over Unix sockets, with per-worker
  backpressure, crash respawn, and manifest-generation hot re-open.

Both fail *explicitly* under pressure — :class:`ServiceOverloaded`,
:class:`DeadlineExceeded`, :class:`ServiceClosed`, :class:`WorkerCrashed` —
and never leave a caller hanging.
"""

from repro.cluster.asyncio_service import ADMISSION_POLICIES, AsyncPredictionService
from repro.cluster.errors import (
    ClusterError,
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
    WorkerCrashed,
)
from repro.cluster.protocol import MAX_FRAME_BYTES, ProtocolError, recv_frame, send_frame
from repro.cluster.server import DEADLINE_GRACE_SECONDS, ClusterService
from repro.cluster.watch import DEFAULT_POLL_SECONDS, GenerationWatcher
from repro.cluster.worker import worker_main

__all__ = [
    "ADMISSION_POLICIES",
    "DEADLINE_GRACE_SECONDS",
    "DEFAULT_POLL_SECONDS",
    "MAX_FRAME_BYTES",
    "AsyncPredictionService",
    "ClusterError",
    "ClusterService",
    "DeadlineExceeded",
    "GenerationWatcher",
    "ProtocolError",
    "ServiceClosed",
    "ServiceOverloaded",
    "WorkerCrashed",
    "recv_frame",
    "send_frame",
    "worker_main",
]
