"""One serving worker process: a socket front over its own service stack.

Each worker owns a full, private copy of the read path — its own
:class:`~repro.storage.buffer_pool.BufferPool`, feature store, checkpoint
load, and prediction LRU — over the *shared* shard directory.  Shards are
immutable between manifest swaps, so N workers need no coordination beyond
watching the manifest generation; the page cache deduplicates the actual
bytes across processes.

The process runs three threads:

* **reader** (main thread) — accepts the dispatcher's single connection and
  handles frames: control ops (``ping``/``metrics``/``shutdown``) inline,
  predictions through admission (cache probe, bounded-queue check,
  already-dead-on-arrival deadline shed) into the dispatch queue;
* **dispatch** — drains the queue in mini-batches of up to
  ``max_batch_size``, sheds queued work whose deadline passed while it
  waited (reply :data:`ERR_DEADLINE`, never silence), and answers the rest
  with one bulk feature-store lookup + model call per batch;
* **generation watcher** — polls the manifest and hot-reopens the feature
  store after a compact, without touching in-flight work (the bulk path
  also retries once through a re-open if it races the swap).

Backpressure is structural: the dispatch queue is bounded at ``backlog``
and an arriving request that finds it full is refused immediately with
:data:`ERR_OVERLOADED` — the dispatcher normally prevents this by tracking
in-flight counts, so a refusal here means the front door mis-counted, and
the caller still gets an explicit error rather than an unbounded queue.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from pathlib import Path

from repro.cluster.protocol import recv_frame, send_frame
from repro.cluster.watch import DEFAULT_POLL_SECONDS, GenerationWatcher
from repro.obs import metrics as obs_metrics
from repro.serve.lru import LRUCache
from repro.serve.service import PredictionService

#: Error codes a worker may answer with (the dispatcher maps them back to
#: exception classes; see ``repro.cluster.server``).
ERR_DEADLINE = "deadline"
ERR_OVERLOADED = "overloaded"
ERR_CLOSED = "closed"

_STOP = object()


def worker_main(config: dict) -> None:
    """Process entry point (spawned by the dispatcher; must be picklable)."""
    _Worker(config).run()


class _Worker:
    def __init__(self, config: dict):
        self.config = config
        self.index = int(config["worker_index"])
        self.socket_path = config["socket_path"]
        self.backlog = int(config.get("backlog", 64))
        self.max_batch_size = int(config.get("max_batch_size", 32))
        self.poll_seconds = float(config.get("poll_seconds") or DEFAULT_POLL_SECONDS)
        cache_size = int(config.get("cache_size", 256))
        self._cache: LRUCache | None = LRUCache(cache_size) if cache_size else None
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, self.backlog))
        self._closing = False
        self._send_lock = threading.Lock()
        self._conn: socket.socket | None = None

        labels = {"worker": self.index}
        self._m_requests = obs_metrics.counter("cluster.worker.requests", **labels)
        self._m_shed_deadline = obs_metrics.counter(
            "cluster.worker.shed", reason=ERR_DEADLINE, **labels
        )
        self._m_shed_overload = obs_metrics.counter(
            "cluster.worker.shed", reason=ERR_OVERLOADED, **labels
        )
        self._m_cache_hits = obs_metrics.counter("cluster.worker.cache_hits", **labels)
        self._m_depth = obs_metrics.gauge("cluster.worker.queue_depth", **labels)
        self._m_generation = obs_metrics.gauge("cluster.worker.generation", **labels)
        self._m_batch = obs_metrics.histogram("cluster.worker.batch.size", **labels)
        self._m_seconds = obs_metrics.histogram("cluster.worker.request.seconds", **labels)

        version = config.get("version", "latest")
        self.service, self.checkpoint = PredictionService.from_registry(
            config["checkpoint_dir"],
            version if version == "latest" else int(version),
            shard_dir=config["shard_dir"],
            store_kwargs=config.get("store_kwargs") or None,
            max_batch_size=self.max_batch_size,
            cache_size=0,  # the worker fronts its own LRU keyed by row id
        )
        if self.service.store is None:
            raise RuntimeError("cluster workers need a shard directory to serve rows")
        self._m_generation.set(self.service.generation or 0)

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> None:
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            Path(self.socket_path).unlink(missing_ok=True)
            listener.bind(self.socket_path)
            listener.listen(1)
            self._conn, _ = listener.accept()

            watcher = GenerationWatcher(self._poll_generation, poll_seconds=self.poll_seconds)
            watcher.start()
            dispatcher = threading.Thread(
                target=self._dispatch_loop, name=f"repro-worker-{self.index}-dispatch"
            )
            dispatcher.start()
            try:
                shutdown_id = self._reader_loop()
            finally:
                self._closing = True
                self._queue.put(_STOP)
                dispatcher.join()
                watcher.stop()
            if shutdown_id is not None:
                # Ack only after the dispatch thread drained every queued
                # request: the dispatcher reads this as "drain complete".
                self._send({"id": shutdown_id, "ok": True})
            self.service.close()
        finally:
            if self._conn is not None:
                self._conn.close()
            listener.close()
            Path(self.socket_path).unlink(missing_ok=True)

    # -- reader side -----------------------------------------------------------

    def _reader_loop(self) -> int | None:
        """Handle frames until shutdown or EOF; returns the shutdown req id."""
        while True:
            frame = recv_frame(self._conn)
            if frame is None:
                return None  # dispatcher went away; drain and exit
            op = frame.get("op")
            if op == "predict":
                self._admit_one(frame)
            elif op == "predict_many":
                self._admit_many(frame)
            elif op == "ping":
                self._send(
                    {
                        "id": frame.get("id"),
                        "ok": True,
                        "pid": os.getpid(),
                        "worker": self.index,
                        "generation": self.service.generation,
                        "n_rows": self.service.store.n_rows,
                        "queue_depth": self._queue.qsize(),
                    }
                )
            elif op == "metrics":
                self._send({"id": frame.get("id"), "ok": True, "metrics": self._metrics()})
            elif op == "shutdown":
                return frame.get("id")
            elif op == "crash":  # fault injection for the respawn tests
                os._exit(13)
            else:
                self._send(
                    {"id": frame.get("id"), "ok": False, "error": "bad_request",
                     "message": f"unknown op {op!r}"}
                )

    def _admit_one(self, frame: dict) -> None:
        self._m_requests.inc()
        req_id = frame.get("id")
        deadline = frame.get("deadline")
        if self._closing:
            self._reply_error(req_id, ERR_CLOSED, "worker is shutting down")
            return
        if deadline is not None and time.time() > deadline:
            self._m_shed_deadline.inc()
            self._reply_error(req_id, ERR_DEADLINE, "deadline passed before admission")
            return
        row_id = frame.get("row_id")
        if self._cache is not None:
            value = self._cache.get(row_id)
            if value is not None:
                self._m_cache_hits.inc()
                self._send({"id": req_id, "ok": True, "value": value})
                return
        self._enqueue(("one", req_id, row_id, deadline))

    def _admit_many(self, frame: dict) -> None:
        self._m_requests.inc()
        req_id = frame.get("id")
        if self._closing:
            self._reply_error(req_id, ERR_CLOSED, "worker is shutting down")
            return
        deadline = frame.get("deadline")
        if deadline is not None and time.time() > deadline:
            self._m_shed_deadline.inc()
            self._reply_error(req_id, ERR_DEADLINE, "deadline passed before admission")
            return
        self._enqueue(("many", req_id, frame.get("row_ids") or [], deadline))

    def _enqueue(self, item: tuple) -> None:
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self._m_shed_overload.inc()
            self._reply_error(item[1], ERR_OVERLOADED, f"worker queue full ({self.backlog})")
            return
        self._m_depth.set(self._queue.qsize())

    # -- dispatch side ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            stop = False
            if item[0] == "many":
                self._process_many(item)
                continue
            batch = [item]
            while len(batch) < self.max_batch_size:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                if nxt[0] == "many":
                    self._process_batch(batch)
                    batch = []
                    self._process_many(nxt)
                    continue
                batch.append(nxt)
            self._m_depth.set(self._queue.qsize())
            if batch:
                self._process_batch(batch)
            if stop:
                return

    def _process_batch(self, batch: list) -> None:
        start = time.perf_counter()
        now = time.time()
        live: list = []
        for kind, req_id, row_id, deadline in batch:
            # Shed queued work that already missed its deadline: answering
            # it would burn decode time nobody is waiting on, which under
            # saturation is exactly what melts a queue down.
            if deadline is not None and now > deadline:
                self._m_shed_deadline.inc()
                self._reply_error(req_id, ERR_DEADLINE, "deadline passed in queue")
            else:
                live.append((req_id, row_id))
        if not live:
            return
        self._m_batch.observe(len(live))
        try:
            values = self._bulk([row_id for _, row_id in live])
        except Exception as exc:
            for req_id, _ in live:
                self._reply_error(req_id, type(exc).__name__, str(exc))
            return
        elapsed = time.perf_counter() - start
        for (req_id, row_id), value in zip(live, values):
            if self._cache is not None:
                self._cache.put(row_id, float(value))
            self._send({"id": req_id, "ok": True, "value": float(value)})
        self._m_seconds.observe(elapsed)

    def _process_many(self, item: tuple) -> None:
        _, req_id, row_ids, deadline = item
        if deadline is not None and time.time() > deadline:
            self._m_shed_deadline.inc()
            self._reply_error(req_id, ERR_DEADLINE, "deadline passed in queue")
            return
        self._m_batch.observe(len(row_ids))
        try:
            values = self._bulk(row_ids)
        except Exception as exc:
            self._reply_error(req_id, type(exc).__name__, str(exc))
            return
        self._send({"id": req_id, "ok": True, "values": [float(v) for v in values]})

    def _bulk(self, row_ids: list):
        """One store lookup + one model call, surviving a generation swap."""
        try:
            return self.service.predict_ids(row_ids)
        except OSError:
            # Raced a compact's file deletion; re-open at the new generation
            # (always correct: compaction never changes row content/order).
            if not self.service.reopen_store():
                raise
            self._m_generation.set(self.service.generation or 0)
            return self.service.predict_ids(row_ids)

    # -- helpers ---------------------------------------------------------------

    def _poll_generation(self) -> bool:
        reopened = self.service.maybe_reopen_store()
        if reopened:
            self._m_generation.set(self.service.generation or 0)
        return reopened

    def _metrics(self) -> dict:
        mine = obs_metrics.snapshot("cluster.worker.", labels={"worker": self.index})
        merged = self.service.metrics()
        for kind in ("counters", "gauges", "histograms"):
            merged.setdefault(kind, {}).update(mine.get(kind, {}))
        merged["generation"] = self.service.generation
        merged["queue_depth"] = self._queue.qsize()
        merged["pid"] = os.getpid()
        return merged

    def _reply_error(self, req_id, code: str, message: str) -> None:
        self._send({"id": req_id, "ok": False, "error": code, "message": message})

    def _send(self, message: dict) -> None:
        with self._send_lock:
            try:
                send_frame(self._conn, message)
            except OSError:
                # The dispatcher hung up; nothing to answer to.  The reader
                # will see EOF and wind the worker down.
                pass


__all__ = ["ERR_CLOSED", "ERR_DEADLINE", "ERR_OVERLOADED", "worker_main"]
