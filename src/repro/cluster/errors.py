"""Errors the serving tier raises instead of hanging.

The cluster's contract under pressure is *explicit failure*: a request that
cannot be served inside its constraints gets one of these immediately,
never a silent stall.  All of them subclass :class:`RuntimeError` (and
:class:`DeadlineExceeded` also :class:`TimeoutError`) so existing
``except RuntimeError`` call sites keep working.

:class:`~repro.serve.batcher.ServiceClosed` is re-exported here so cluster
users import every serving error from one place.
"""

from __future__ import annotations

from repro.serve.batcher import ServiceClosed


class ClusterError(RuntimeError):
    """Base class for serving-tier failures."""


class ServiceOverloaded(ClusterError):
    """Every worker queue is full and the admission policy is ``"reject"``.

    The 503 of this stack: the request was never admitted, so retrying
    later (or against another replica) is always safe.
    """


class DeadlineExceeded(ClusterError, TimeoutError):
    """The request's deadline passed before a result was produced.

    Raised both by admission (the queues stayed full past the deadline
    under the ``"block"`` policy) and by completion (the request was
    admitted but its answer would have arrived too late — the remaining
    work is cancelled/shed rather than finished for nobody).
    """


class WorkerCrashed(ClusterError):
    """The worker process holding this request died before answering.

    In-flight requests on a crashed worker fail with this error while the
    dispatcher respawns the worker; the request itself was *not* retried
    (prediction is idempotent, so callers may simply resubmit).
    """


__all__ = [
    "ClusterError",
    "DeadlineExceeded",
    "ServiceClosed",
    "ServiceOverloaded",
    "WorkerCrashed",
]
