"""Manifest-generation watching: re-open after a compact, keep serving.

Shard directories are immutable *between* atomic manifest swaps, and every
swap bumps the manifest's ``generation`` counter
(:func:`repro.engine.shards.read_generation`).  A read-only serving process
therefore needs exactly one background behaviour to survive maintenance: a
poll of that counter, and a store re-open when it moves.  The watcher is a
tiny daemon thread around any zero-argument callback —
:meth:`repro.serve.service.PredictionService.maybe_reopen_store` in
practice — with the poll interval as its only tuning knob.

The watcher is *advisory*: the authoritative safety net is the serving
path's own retry-after-reopen (a request that races the swap and hits a
deleted file re-opens and retries).  Polling merely keeps that race window
to one poll interval and refreshes caches promptly.
"""

from __future__ import annotations

import threading

from repro.obs import metrics as obs_metrics

#: Default seconds between manifest generation polls.
DEFAULT_POLL_SECONDS = 0.5


class GenerationWatcher:
    """Run ``callback()`` every ``poll_seconds`` until :meth:`stop`.

    The callback should return truthy when it actually reloaded something
    (counted in the ``cluster.watch.reloads`` metric); exceptions are
    swallowed and counted (``cluster.watch.errors``) — a transient
    mid-swap read must never kill the watcher.
    """

    def __init__(
        self,
        callback,
        *,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        name: str = "repro-generation-watcher",
    ):
        if poll_seconds <= 0:
            raise ValueError("poll_seconds must be positive")
        self.callback = callback
        self.poll_seconds = poll_seconds
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._m_reloads = obs_metrics.counter("cluster.watch.reloads")
        self._m_errors = obs_metrics.counter("cluster.watch.errors")

    def start(self) -> "GenerationWatcher":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop polling and join the thread (idempotent)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join()

    def poll_now(self) -> bool:
        """One synchronous poll (what the thread runs each tick)."""
        try:
            reloaded = bool(self.callback())
        except Exception:
            self._m_errors.inc()
            return False
        if reloaded:
            self._m_reloads.inc()
        return reloaded

    def _run(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            self.poll_now()


__all__ = ["DEFAULT_POLL_SECONDS", "GenerationWatcher"]
