"""The asyncio face of the prediction service.

``await service.predict(row_id)`` with the event loop never blocking on a
decode: requests enter the existing queue-based
:class:`~repro.serve.batcher.MicroBatcher` through the non-blocking
:meth:`~repro.serve.service.PredictionService.submit_id` bridge and come
back as ``concurrent.futures.Future`` objects that ``asyncio.wrap_future``
turns into awaitables — batching, the prediction LRU, and the feature store
all behave exactly as under threaded callers, because they *are* the same
objects.

On top sits the cluster's admission discipline, applied in-process:

* **bounded in-flight** — at most ``max_inflight`` requests may be between
  admission and completion;
* **admission policy** — when the bound is hit, ``"reject"`` raises
  :class:`~repro.cluster.errors.ServiceOverloaded` immediately (fail fast,
  let the caller back off) while ``"block"`` parks the coroutine until a
  slot frees or its deadline passes;
* **deadlines** — a request whose answer would arrive after its deadline is
  cancelled (shedding the batcher work if it has not started) and fails
  with :class:`~repro.cluster.errors.DeadlineExceeded`.

A :class:`~repro.cluster.watch.GenerationWatcher` (``watch_generation=``)
polls the shard manifest and hot-reopens the feature store after a
``Dataset.compact`` swap without dropping in-flight requests.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from pathlib import Path

from repro.cluster.errors import DeadlineExceeded, ServiceOverloaded
from repro.cluster.watch import GenerationWatcher
from repro.obs import metrics as obs_metrics
from repro.serve.checkpoint import Checkpoint
from repro.serve.service import PredictionService

#: Admission policies shared by the async surface and the cluster server.
ADMISSION_POLICIES = ("block", "reject")

_ASVC_IDS = itertools.count()


class AsyncPredictionService:
    """Async facade over a :class:`~repro.serve.service.PredictionService`.

    Parameters
    ----------
    service:
        The synchronous service to wrap.  It is owned by the wrapper:
        :meth:`close` closes it.
    max_inflight:
        Bound on concurrently admitted requests (``None`` = unbounded).
    admission:
        ``"block"`` (default) waits for a slot, bounded by the deadline;
        ``"reject"`` fails immediately with :class:`ServiceOverloaded`.
    default_deadline:
        Seconds from admission attempt to answer, applied when a call does
        not pass its own ``deadline`` (``None`` = no deadline).
    watch_generation:
        Poll interval in seconds for manifest-generation watching (``None``
        disables; needs a store opened from a directory).
    """

    def __init__(
        self,
        service: PredictionService,
        *,
        max_inflight: int | None = 256,
        admission: str = "block",
        default_deadline: float | None = None,
        watch_generation: float | None = None,
    ):
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, got {admission!r}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None)")
        self.service = service
        self.max_inflight = max_inflight
        self.admission = admission
        self.default_deadline = default_deadline
        self._inflight = 0
        self._slot_free = asyncio.Condition()
        self._closed = False
        self._svc_id = next(_ASVC_IDS)
        labels = {"svc": self._svc_id}
        self._m_requests = obs_metrics.counter("cluster.async.requests", **labels)
        self._m_rejected = obs_metrics.counter("cluster.async.rejected", **labels)
        self._m_shed = obs_metrics.counter("cluster.async.shed", **labels)
        self._m_inflight = obs_metrics.gauge("cluster.async.inflight", **labels)
        self._watcher: GenerationWatcher | None = None
        if watch_generation is not None:
            self._watcher = GenerationWatcher(
                service.maybe_reopen_store, poll_seconds=watch_generation
            )
            self._watcher.start()

    @classmethod
    def from_registry(
        cls,
        registry: Path | str,
        version: int | str = "latest",
        *,
        shard_dir: Path | str | None = None,
        store_kwargs: dict | None = None,
        max_inflight: int | None = 256,
        admission: str = "block",
        default_deadline: float | None = None,
        watch_generation: float | None = None,
        **service_kwargs,
    ) -> tuple["AsyncPredictionService", Checkpoint]:
        """Build the async service straight from a checkpoint registry."""
        service, checkpoint = PredictionService.from_registry(
            registry,
            version,
            shard_dir=shard_dir,
            store_kwargs=store_kwargs,
            **service_kwargs,
        )
        wrapper = cls(
            service,
            max_inflight=max_inflight,
            admission=admission,
            default_deadline=default_deadline,
            watch_generation=watch_generation,
        )
        return wrapper, checkpoint

    # -- admission -------------------------------------------------------------

    async def _admit(self, expires: float | None) -> None:
        self._m_requests.inc()
        if self._closed:
            from repro.cluster.errors import ServiceClosed

            raise ServiceClosed("async service is closed")
        if self.max_inflight is None:
            self._inflight += 1
            self._m_inflight.set(self._inflight)
            return
        if self._inflight < self.max_inflight:
            self._inflight += 1
            self._m_inflight.set(self._inflight)
            return
        if self.admission == "reject":
            self._m_rejected.inc()
            raise ServiceOverloaded(
                f"{self._inflight} requests in flight (max {self.max_inflight})"
            )
        async with self._slot_free:
            while self._inflight >= self.max_inflight:
                timeout = None if expires is None else expires - time.monotonic()
                if timeout is not None and timeout <= 0:
                    self._m_shed.inc()
                    raise DeadlineExceeded("deadline passed while waiting for admission")
                try:
                    await asyncio.wait_for(self._slot_free.wait(), timeout)
                except asyncio.TimeoutError:
                    self._m_shed.inc()
                    raise DeadlineExceeded(
                        "deadline passed while waiting for admission"
                    ) from None
            self._inflight += 1
            self._m_inflight.set(self._inflight)

    async def _release(self) -> None:
        self._inflight -= 1
        self._m_inflight.set(self._inflight)
        async with self._slot_free:
            # notify_all, not notify(1): a waiter whose wait_for timed out
            # right as the notification landed would swallow it, leaving a
            # live waiter parked with a free slot.
            self._slot_free.notify_all()

    # -- prediction ------------------------------------------------------------

    async def predict(self, row_id: int, *, deadline: float | None = None) -> float:
        """Predict for one stored row; never blocks the event loop.

        ``deadline`` is seconds from now (defaults to ``default_deadline``).
        Raises :class:`ServiceOverloaded`, :class:`DeadlineExceeded`, or
        whatever the underlying prediction raised.
        """
        return await self._request(lambda: self.service.submit_id(row_id), deadline)

    async def predict_vector(self, features, *, deadline: float | None = None) -> float:
        """Predict for one raw feature vector (uncached, micro-batched)."""
        return await self._request(
            lambda: self.service.submit_vector(features), deadline
        )

    async def predict_many(
        self, row_ids, *, deadline: float | None = None, return_exceptions: bool = False
    ) -> list:
        """Concurrent :meth:`predict` over many rows, answers in order.

        Each row is its own admission — under saturation some may shed while
        others succeed; ``return_exceptions=True`` reports those per-slot
        instead of failing the whole gather.
        """
        return await asyncio.gather(
            *(self.predict(row_id, deadline=deadline) for row_id in row_ids),
            return_exceptions=return_exceptions,
        )

    async def _request(self, submit, deadline: float | None):
        if deadline is None:
            deadline = self.default_deadline
        expires = None if deadline is None else time.monotonic() + deadline
        await self._admit(expires)
        try:
            future = asyncio.wrap_future(submit())
            if expires is None:
                return await future
            try:
                return await asyncio.wait_for(future, expires - time.monotonic())
            except asyncio.TimeoutError:
                # wait_for cancelled the wrapped future: if the batcher had
                # not started the request, the work is shed outright.
                self._m_shed.inc()
                raise DeadlineExceeded("deadline passed before the prediction finished") from None
        finally:
            await self._release()

    # -- introspection ---------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def generation(self) -> int | None:
        return self.service.generation

    def metrics(self) -> dict:
        """The wrapped service's metrics plus this surface's admission counters."""
        merged = self.service.metrics()
        mine = obs_metrics.snapshot(
            "cluster.async.", labels={"svc": self._svc_id}, strip_labels=True
        )
        for kind in ("counters", "gauges", "histograms"):
            merged.setdefault(kind, {}).update(mine.get(kind, {}))
        return merged

    # -- lifecycle -------------------------------------------------------------

    async def close(self, drain: bool = True) -> None:
        """Stop the watcher and close the wrapped service off-loop."""
        self._closed = True
        if self._watcher is not None:
            self._watcher.stop()
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.service.close(drain=drain)
        )

    async def __aenter__(self) -> "AsyncPredictionService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


__all__ = ["ADMISSION_POLICIES", "AsyncPredictionService"]
