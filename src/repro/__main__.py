"""Command-line interface: ``python -m repro <command>``.

Three commands are provided:

* ``info`` — package version, registered schemes, dataset profiles;
* ``advise`` — run the scheme advisor on a sample mini-batch drawn from a
  named dataset profile (Section 5.1's "test TOC on a sample" advice);
* ``experiment`` — run one of the paper's tables/figures by id (delegates to
  :mod:`repro.bench.experiments`, e.g. ``python -m repro experiment fig5``).
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__, available_schemes
from repro.bench import experiments
from repro.core.advisor import recommend_scheme
from repro.data.registry import DATASET_PROFILES


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — tuple-oriented compression for mini-batch SGD")
    print(f"schemes:  {', '.join(available_schemes(include_ablations=True))}")
    print("datasets: " + ", ".join(sorted(DATASET_PROFILES)))
    print("experiments: " + ", ".join(sorted(experiments.EXPERIMENTS)))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    profile = DATASET_PROFILES.get(args.dataset)
    if profile is None:
        print(f"unknown dataset profile {args.dataset!r}; known: {sorted(DATASET_PROFILES)}")
        return 2
    sample = profile.matrix(args.rows, seed=args.seed)
    recommendation = recommend_scheme(sample)
    print(f"sample: {args.rows} rows x {sample.shape[1]} columns from {args.dataset!r}")
    print(f"{'scheme':<10} {'ratio':>8} {'direct ops':>11} {'score':>8}")
    for report in recommendation.reports:
        print(
            f"{report.name:<10} {report.compression_ratio:>8.1f} "
            f"{str(report.supports_direct_ops):>11} {report.score:>8.1f}"
        )
    print(f"\nrecommended scheme: {recommendation.best.name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    cli_args = [args.experiment_id]
    if args.quick:
        cli_args.append("--quick")
    return experiments.main(cli_args)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show version, schemes, datasets, experiments")
    info.set_defaults(func=_cmd_info)

    advise = subparsers.add_parser("advise", help="recommend a scheme for a dataset profile")
    advise.add_argument("--dataset", default="census", help="dataset profile name")
    advise.add_argument("--rows", type=int, default=250, help="sample mini-batch rows")
    advise.add_argument("--seed", type=int, default=0, help="sample seed")
    advise.set_defaults(func=_cmd_advise)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("experiment_id", choices=sorted(experiments.EXPERIMENTS))
    experiment.add_argument("--quick", action="store_true", help="reduced row counts / epochs")
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
