"""Command-line interface: ``python -m repro <command>``.

Six commands are provided:

* ``info`` — package version, registered schemes, dataset profiles;
* ``advise`` — run the scheme advisor on a sample mini-batch drawn from a
  named dataset profile (Section 5.1's "test TOC on a sample" advice);
* ``experiment`` — run one of the paper's tables/figures by id (delegates to
  :mod:`repro.bench.experiments`, e.g. ``python -m repro experiment fig5``);
* ``train-ooc`` — shard a dataset to disk with the parallel encode pipeline
  and train a model out-of-core through the buffer pool (:mod:`repro.engine`);
  ``--checkpoint-dir`` publishes the trained model to a version registry;
* ``predict`` — load a checkpointed model, look rows up in the shard store,
  and print predictions next to the stored labels (:mod:`repro.serve`);
* ``serve`` — drive the micro-batched prediction service with a synthetic
  closed-loop client swarm and report throughput / batching / cache stats.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro import __version__, available_schemes
from repro.bench import experiments
from repro.core.advisor import recommend_scheme
from repro.data.registry import DATASET_PROFILES


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — tuple-oriented compression for mini-batch SGD")
    print(f"schemes:  {', '.join(available_schemes(include_ablations=True))}")
    print("datasets: " + ", ".join(sorted(DATASET_PROFILES)))
    print("experiments: " + ", ".join(sorted(experiments.EXPERIMENTS)))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    profile = DATASET_PROFILES.get(args.dataset)
    if profile is None:
        print(f"unknown dataset profile {args.dataset!r}; known: {sorted(DATASET_PROFILES)}")
        return 2
    sample = profile.matrix(args.rows, seed=args.seed)
    recommendation = recommend_scheme(sample)
    print(f"sample: {args.rows} rows x {sample.shape[1]} columns from {args.dataset!r}")
    print(f"{'scheme':<10} {'ratio':>8} {'direct ops':>11} {'score':>8}")
    for report in recommendation.reports:
        print(
            f"{report.name:<10} {report.compression_ratio:>8.1f} "
            f"{str(report.supports_direct_ops):>11} {report.score:>8.1f}"
        )
    print(f"\nrecommended scheme: {recommendation.best.name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    cli_args = [args.experiment_id]
    if args.quick:
        cli_args.append("--quick")
    return experiments.main(cli_args)


def _cmd_train_ooc(args: argparse.Namespace) -> int:
    from repro.engine import OutOfCoreTrainer, resolve_executor, resolve_workers
    from repro.ml.models import LinearSVMModel, LogisticRegressionModel
    from repro.ml.optimizer import GradientDescentConfig

    profile = DATASET_PROFILES.get(args.dataset)
    if profile is None:
        print(f"unknown dataset profile {args.dataset!r}; known: {sorted(DATASET_PROFILES)}")
        return 2

    features, labels = profile.classification(args.rows, seed=args.seed)
    try:
        config = GradientDescentConfig(
            batch_size=args.batch_size,
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            shuffle_seed=args.seed,
        )
        trainer = OutOfCoreTrainer(
            args.scheme,
            config,
            budget_bytes=int(args.budget_mb * 1e6) if args.budget_mb is not None else None,
            budget_ratio=args.budget_ratio,
            prefetch_depth=args.prefetch_depth,
            workers=args.workers,
            executor=args.executor,
        )
        workers = resolve_workers(args.workers)
        executor = resolve_executor(args.executor, workers)
    except (KeyError, ValueError) as exc:
        print(f"invalid train-ooc configuration: {exc}")
        return 2
    model_cls = LinearSVMModel if args.model == "svm" else LogisticRegressionModel
    model = model_cls(features.shape[1], seed=args.seed)

    print(
        f"sharding {features.shape[0]} rows x {features.shape[1]} cols of {args.dataset!r} "
        f"as {args.scheme} (batch {args.batch_size}, encode: {executor}, {workers} workers)"
    )
    if args.scheme == "auto":
        print("scheme 'auto': the advisor samples every batch and picks per shard")

    try:
        if args.shard_dir is not None:
            report = trainer.fit(
                model, features, labels, args.shard_dir, checkpoint_to=args.checkpoint_dir
            )
        else:
            if args.checkpoint_dir is not None:
                print("--checkpoint-dir needs --shard-dir: the checkpoint records the shard")
                print("directory so `serve` and `predict` can find the features again")
                return 2
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                report = trainer.fit(model, features, labels, tmp)
    except ValueError as exc:
        print(f"train-ooc failed: {exc}")
        return 2

    scheme_summary = ", ".join(
        f"{name}x{count}" for name, count in sorted(trainer.dataset.scheme_counts().items())
    )
    print(
        f"shards: {len(trainer.dataset)} batches ({scheme_summary}), "
        f"{report.total_payload_bytes / 1e6:.2f} MB payload "
        f"({report.physical_bytes / 1e6:.2f} MB paged), "
        f"encoded in {report.encode_seconds:.3f}s"
    )
    print(
        f"buffer pool: {report.budget_bytes / 1e6:.2f} MB budget — "
        f"dataset {'fits' if report.fits_in_memory else 'does NOT fit'} in memory"
    )
    print(f"\n{'epoch':>5} {'loss':>10} {'wall s':>8} {'sim IO s':>9}")
    for i, (loss, wall, io) in enumerate(
        zip(report.history.epoch_losses, report.history.epoch_times, report.epoch_io_seconds),
        start=1,
    ):
        print(f"{i:>5} {loss:>10.4f} {wall:>8.3f} {io:>9.5f}")
    stats = report.pool_stats
    print(
        f"\npool stats: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}), {stats.evictions} evictions, "
        f"{stats.bytes_read_from_disk / 1e6:.2f} MB read from disk"
    )
    if report.checkpoint_version is not None:
        print(f"checkpoint: published v{report.checkpoint_version:05d} at {report.checkpoint_path}")
    return 0


def _load_service(args):
    """Shared ``serve``/``predict`` setup: registry -> checkpoint -> service.

    Returns ``(service, checkpoint)`` or an int exit code on a clean failure.
    """
    from repro.serve import PredictionService

    try:
        service, checkpoint = PredictionService.from_registry(
            args.checkpoint_dir,
            args.version if args.version == "latest" else int(args.version),
            shard_dir=args.shards,
            max_batch_size=args.max_batch,
            max_wait_seconds=args.max_wait_ms / 1e3,
            cache_size=args.cache_size,
        )
    except FileNotFoundError as exc:
        print(f"cannot load checkpoint: {exc}")
        print("train one first: python -m repro train-ooc --shard-dir shards/ "
              "--checkpoint-dir checkpoints/")
        return 2
    except ValueError as exc:
        print(f"invalid serving configuration: {exc}")
        return 2
    if service.store is None:
        service.close()
        print("checkpoint records no shard directory; pass --shards pointing at one")
        return 2
    return service, checkpoint


def _cmd_predict(args: argparse.Namespace) -> int:
    loaded = _load_service(args)
    if isinstance(loaded, int):
        return loaded
    service, checkpoint = loaded
    with service:
        store = service.store
        try:
            ids = [int(part) for part in args.ids.split(",") if part.strip() != ""]
        except ValueError:
            print(f"--ids must be comma-separated integers, got {args.ids!r}")
            return 2
        try:
            predictions = service.predict_ids(ids)
        except IndexError as exc:
            print(f"predict failed: {exc}")
            return 2
        labels = store.get_labels(ids)
        print(
            f"model v{checkpoint.version:05d} ({checkpoint.model_name}, "
            f"scheme {checkpoint.scheme_name}) over {store.n_rows} stored rows"
        )
        print(f"{'row':>6} {'prediction':>11} {'label':>6}")
        for row_id, prediction, label in zip(ids, predictions, labels):
            print(f"{row_id:>6} {prediction:>11.0f} {label:>6.0f}")
        correct = float((predictions == labels).mean()) if ids else 0.0
        print(f"\nagreement with stored labels: {correct:.0%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    loaded = _load_service(args)
    if isinstance(loaded, int):
        return loaded
    service, checkpoint = loaded
    with service:
        store = service.store
        n_rows = store.n_rows
        rng = np.random.default_rng(args.seed)
        # 80/20 closed-loop workload: most requests hammer a small hot set,
        # which is what gives the prediction cache something to absorb.
        hot = rng.choice(n_rows, size=max(1, n_rows // 5), replace=False)
        workload = np.where(
            rng.random(args.requests) < 0.8,
            rng.choice(hot, size=args.requests),
            rng.integers(0, n_rows, size=args.requests),
        )
        print(
            f"serving model v{checkpoint.version:05d} ({checkpoint.model_name}, "
            f"scheme {checkpoint.scheme_name}): {args.requests} requests from "
            f"{args.clients} clients over {n_rows} rows "
            f"(batch<= {args.max_batch}, wait {args.max_wait_ms}ms, cache {args.cache_size})"
        )
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.clients) as clients:
            list(clients.map(service.predict_id, workload))
        wall = time.perf_counter() - start

        stats, batcher, rows = service.stats, service.batcher_stats, store.stats
        print(f"\nthroughput: {args.requests / wall:,.0f} requests/s ({wall:.3f}s wall)")
        print(
            f"latency:    {stats.mean_request_seconds * 1e6:,.0f} us mean "
            f"({stats.requests} requests)"
        )
        print(
            f"batching:   {batcher.batches} model calls, mean batch "
            f"{batcher.mean_batch_size:.1f}, largest {batcher.largest_batch}"
        )
        print(f"pred cache: {stats.cache_hit_rate:.0%} hit rate ({stats.cache_hits} hits)")
        print(
            f"store:      {rows.row_hit_rate:.0%} decoded-row hit rate "
            f"({rows.shard_decodes} shard decodes), "
            f"{store.pool.stats.bytes_read_from_disk / 1e6:.2f} MB read through the pool"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show version, schemes, datasets, experiments")
    info.set_defaults(func=_cmd_info)

    advise = subparsers.add_parser("advise", help="recommend a scheme for a dataset profile")
    advise.add_argument("--dataset", default="census", help="dataset profile name")
    advise.add_argument("--rows", type=int, default=250, help="sample mini-batch rows")
    advise.add_argument("--seed", type=int, default=0, help="sample seed")
    advise.set_defaults(func=_cmd_advise)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("experiment_id", choices=sorted(experiments.EXPERIMENTS))
    experiment.add_argument("--quick", action="store_true", help="reduced row counts / epochs")
    experiment.set_defaults(func=_cmd_experiment)

    train_ooc = subparsers.add_parser(
        "train-ooc",
        help="shard a dataset to disk and train a model out-of-core",
    )
    train_ooc.add_argument("--dataset", default="kdd99", help="dataset profile name")
    train_ooc.add_argument("--rows", type=int, default=4000, help="dataset rows to generate")
    train_ooc.add_argument("--batch-size", type=int, default=250, help="mini-batch rows")
    train_ooc.add_argument("--epochs", type=int, default=3, help="training epochs")
    train_ooc.add_argument("--learning-rate", type=float, default=0.3, help="MGD step size")
    train_ooc.add_argument(
        "--scheme",
        default="TOC",
        help='compression scheme for the shards, or "auto" to let the advisor '
        "pick per shard (the manifest records the choice for every shard)",
    )
    train_ooc.add_argument("--model", choices=("logreg", "svm"), default="logreg")
    train_ooc.add_argument("--seed", type=int, default=0, help="data / shuffle / init seed")
    train_ooc.add_argument(
        "--workers", type=int, default=None, help="encode workers (default: one per core)"
    )
    train_ooc.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="encode executor kind",
    )
    train_ooc.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="buffer pool budget in MB (overrides --budget-ratio)",
    )
    train_ooc.add_argument(
        "--budget-ratio",
        type=float,
        default=0.5,
        help="pool budget as a fraction of the shard payload (default 0.5: does not fit)",
    )
    train_ooc.add_argument(
        "--prefetch-depth", type=int, default=2, help="read-ahead depth (0 disables)"
    )
    train_ooc.add_argument(
        "--shard-dir", default=None, help="persist shards here (default: temporary directory)"
    )
    train_ooc.add_argument(
        "--checkpoint-dir",
        default=None,
        help="publish the trained model to this registry (needs --shard-dir)",
    )
    train_ooc.set_defaults(func=_cmd_train_ooc)

    def add_serving_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--checkpoint-dir", default="checkpoints", help="model registry root directory"
        )
        sub.add_argument(
            "--version", default="latest", help='checkpoint version number or "latest"'
        )
        sub.add_argument(
            "--shards",
            default=None,
            help="shard directory (default: the one recorded in the checkpoint)",
        )
        sub.add_argument(
            "--max-batch", type=int, default=32, help="micro-batch size cap (1 disables)"
        )
        sub.add_argument(
            "--max-wait-ms",
            type=float,
            default=0.0,
            help="micro-batch linger for stragglers (0: dispatch when the queue empties)",
        )
        sub.add_argument(
            "--cache-size", type=int, default=256, help="prediction LRU entries (0 disables)"
        )

    predict = subparsers.add_parser(
        "predict",
        help="predict stored rows with a checkpointed model",
    )
    add_serving_args(predict)
    predict.add_argument(
        "--ids", default="0,1,2,3,4,5,6,7", help="comma-separated row ids to predict"
    )
    predict.set_defaults(func=_cmd_predict)

    serve = subparsers.add_parser(
        "serve",
        help="run the micro-batched prediction service under synthetic load",
    )
    add_serving_args(serve)
    serve.add_argument("--requests", type=int, default=2000, help="total requests to issue")
    serve.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
