"""Command-line interface: ``python -m repro <command>``.

Four commands are provided:

* ``info`` — package version, registered schemes, dataset profiles;
* ``advise`` — run the scheme advisor on a sample mini-batch drawn from a
  named dataset profile (Section 5.1's "test TOC on a sample" advice);
* ``experiment`` — run one of the paper's tables/figures by id (delegates to
  :mod:`repro.bench.experiments`, e.g. ``python -m repro experiment fig5``);
* ``train-ooc`` — shard a dataset to disk with the parallel encode pipeline
  and train a model out-of-core through the buffer pool
  (:mod:`repro.engine`).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro import __version__, available_schemes
from repro.bench import experiments
from repro.core.advisor import recommend_scheme
from repro.data.registry import DATASET_PROFILES


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — tuple-oriented compression for mini-batch SGD")
    print(f"schemes:  {', '.join(available_schemes(include_ablations=True))}")
    print("datasets: " + ", ".join(sorted(DATASET_PROFILES)))
    print("experiments: " + ", ".join(sorted(experiments.EXPERIMENTS)))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    profile = DATASET_PROFILES.get(args.dataset)
    if profile is None:
        print(f"unknown dataset profile {args.dataset!r}; known: {sorted(DATASET_PROFILES)}")
        return 2
    sample = profile.matrix(args.rows, seed=args.seed)
    recommendation = recommend_scheme(sample)
    print(f"sample: {args.rows} rows x {sample.shape[1]} columns from {args.dataset!r}")
    print(f"{'scheme':<10} {'ratio':>8} {'direct ops':>11} {'score':>8}")
    for report in recommendation.reports:
        print(
            f"{report.name:<10} {report.compression_ratio:>8.1f} "
            f"{str(report.supports_direct_ops):>11} {report.score:>8.1f}"
        )
    print(f"\nrecommended scheme: {recommendation.best.name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    cli_args = [args.experiment_id]
    if args.quick:
        cli_args.append("--quick")
    return experiments.main(cli_args)


def _cmd_train_ooc(args: argparse.Namespace) -> int:
    from repro.engine import OutOfCoreTrainer, resolve_executor, resolve_workers
    from repro.ml.models import LinearSVMModel, LogisticRegressionModel
    from repro.ml.optimizer import GradientDescentConfig

    profile = DATASET_PROFILES.get(args.dataset)
    if profile is None:
        print(f"unknown dataset profile {args.dataset!r}; known: {sorted(DATASET_PROFILES)}")
        return 2

    features, labels = profile.classification(args.rows, seed=args.seed)
    try:
        config = GradientDescentConfig(
            batch_size=args.batch_size,
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            shuffle_seed=args.seed,
        )
        trainer = OutOfCoreTrainer(
            args.scheme,
            config,
            budget_bytes=int(args.budget_mb * 1e6) if args.budget_mb is not None else None,
            budget_ratio=args.budget_ratio,
            prefetch_depth=args.prefetch_depth,
            workers=args.workers,
            executor=args.executor,
        )
        workers = resolve_workers(args.workers)
        executor = resolve_executor(args.executor, workers)
    except (KeyError, ValueError) as exc:
        print(f"invalid train-ooc configuration: {exc}")
        return 2
    model_cls = LinearSVMModel if args.model == "svm" else LogisticRegressionModel
    model = model_cls(features.shape[1], seed=args.seed)

    print(
        f"sharding {features.shape[0]} rows x {features.shape[1]} cols of {args.dataset!r} "
        f"as {args.scheme} (batch {args.batch_size}, encode: {executor}, {workers} workers)"
    )

    try:
        if args.shard_dir is not None:
            report = trainer.fit(model, features, labels, args.shard_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                report = trainer.fit(model, features, labels, tmp)
    except ValueError as exc:
        print(f"train-ooc failed: {exc}")
        return 2

    print(
        f"shards: {len(trainer.dataset)} batches, "
        f"{report.total_payload_bytes / 1e6:.2f} MB payload "
        f"({report.physical_bytes / 1e6:.2f} MB paged), "
        f"encoded in {report.encode_seconds:.3f}s"
    )
    print(
        f"buffer pool: {report.budget_bytes / 1e6:.2f} MB budget — "
        f"dataset {'fits' if report.fits_in_memory else 'does NOT fit'} in memory"
    )
    print(f"\n{'epoch':>5} {'loss':>10} {'wall s':>8} {'sim IO s':>9}")
    for i, (loss, wall, io) in enumerate(
        zip(report.history.epoch_losses, report.history.epoch_times, report.epoch_io_seconds),
        start=1,
    ):
        print(f"{i:>5} {loss:>10.4f} {wall:>8.3f} {io:>9.5f}")
    stats = report.pool_stats
    print(
        f"\npool stats: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}), {stats.evictions} evictions, "
        f"{stats.bytes_read_from_disk / 1e6:.2f} MB read from disk"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show version, schemes, datasets, experiments")
    info.set_defaults(func=_cmd_info)

    advise = subparsers.add_parser("advise", help="recommend a scheme for a dataset profile")
    advise.add_argument("--dataset", default="census", help="dataset profile name")
    advise.add_argument("--rows", type=int, default=250, help="sample mini-batch rows")
    advise.add_argument("--seed", type=int, default=0, help="sample seed")
    advise.set_defaults(func=_cmd_advise)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("experiment_id", choices=sorted(experiments.EXPERIMENTS))
    experiment.add_argument("--quick", action="store_true", help="reduced row counts / epochs")
    experiment.set_defaults(func=_cmd_experiment)

    train_ooc = subparsers.add_parser(
        "train-ooc",
        help="shard a dataset to disk and train a model out-of-core",
    )
    train_ooc.add_argument("--dataset", default="kdd99", help="dataset profile name")
    train_ooc.add_argument("--rows", type=int, default=4000, help="dataset rows to generate")
    train_ooc.add_argument("--batch-size", type=int, default=250, help="mini-batch rows")
    train_ooc.add_argument("--epochs", type=int, default=3, help="training epochs")
    train_ooc.add_argument("--learning-rate", type=float, default=0.3, help="MGD step size")
    train_ooc.add_argument("--scheme", default="TOC", help="compression scheme for the shards")
    train_ooc.add_argument("--model", choices=("logreg", "svm"), default="logreg")
    train_ooc.add_argument("--seed", type=int, default=0, help="data / shuffle / init seed")
    train_ooc.add_argument(
        "--workers", type=int, default=None, help="encode workers (default: one per core)"
    )
    train_ooc.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="encode executor kind",
    )
    train_ooc.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="buffer pool budget in MB (overrides --budget-ratio)",
    )
    train_ooc.add_argument(
        "--budget-ratio",
        type=float,
        default=0.5,
        help="pool budget as a fraction of the shard payload (default 0.5: does not fit)",
    )
    train_ooc.add_argument(
        "--prefetch-depth", type=int, default=2, help="read-ahead depth (0 disables)"
    )
    train_ooc.add_argument(
        "--shard-dir", default=None, help="persist shards here (default: temporary directory)"
    )
    train_ooc.set_defaults(func=_cmd_train_ooc)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
