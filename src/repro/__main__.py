"""Command-line interface: ``python -m repro <command>``.

The CLI is a thin shell over the :mod:`repro.api` facade — every command is
a few facade calls plus printing.  Eleven commands are provided:

* ``info`` — package version, registered schemes, dataset profiles;
* ``advise`` — run the scheme advisor on a sample mini-batch drawn from a
  named dataset profile (Section 5.1's "test TOC on a sample" advice);
* ``experiment`` — run one of the paper's tables/figures by id (delegates to
  :mod:`repro.bench.experiments`, e.g. ``python -m repro experiment fig5``);
* ``encode`` — shard a dataset profile to disk (``Dataset.create``);
* ``stats`` — summarise a shard directory: sizes, compression ratio, and
  the per-shard scheme mix (``Dataset.stats``);
* ``compact`` — re-advise every shard and re-encode the drifted ones
  (``Dataset.compact``), the maintenance pass for long-lived datasets;
* ``scan`` — run a predicate / aggregate query over a shard directory
  (``Dataset.scan``), pushed down onto the compressed shards where the
  scheme allows it;
* ``fsck`` — sweep a shard directory for leftovers of interrupted rewrites
  (``Dataset.fsck``): staged generations and temporaries nothing references;
* ``train-ooc`` — train out-of-core (``Estimator.fit``): over an existing
  shard directory when ``--shard-dir`` already holds a manifest, otherwise
  sharding a generated dataset first; ``--checkpoint-dir`` publishes the
  model to a version registry (``Estimator.save``);
* ``predict`` — load a checkpointed model, look rows up in the shard store,
  and print predictions next to the stored labels (``open_service``);
* ``serve`` — drive the micro-batched prediction service with a synthetic
  closed-loop client swarm and report throughput / batching / cache stats;
  ``--workers N`` serves through the multi-process cluster tier instead
  (``--backlog``, ``--deadline-ms``, ``--admission`` control backpressure
  and shedding; SIGINT/SIGTERM drain in-flight work and exit 0);
* ``obs`` — the observability group: ``obs dump`` runs a small encode +
  train + scan exercise and dumps the recorded spans (native JSON or Chrome
  ``chrome://tracing`` format), ``obs metrics`` prints the process metrics
  snapshot the same exercise produces;
* ``bench-report`` — ingest ``BENCH_*.json`` files into the SQLite run
  registry, diff each against the most recent prior run on the same
  platform, and (with ``--check``) exit non-zero on a regression beyond the
  threshold — the CI perf gate.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.api import (
    DATASET_PROFILES,
    Dataset,
    Estimator,
    __version__,
    available_schemes,
    open_service,
    recommend_scheme,
)
from repro.core.calibration import WORKLOADS, ensure_calibration


def _profile_or_none(name: str):
    profile = DATASET_PROFILES.get(name)
    if profile is None:
        print(f"unknown dataset profile {name!r}; known: {sorted(DATASET_PROFILES)}")
    return profile


def _scheme_mix(scheme_counts: dict) -> str:
    """``{"TOC": 3, "DEN": 1}`` -> ``"DENx1, TOCx3"``."""
    return ", ".join(f"{name}x{count}" for name, count in sorted(scheme_counts.items()))


def _print_stats(stats) -> None:
    """Shared ``encode``/``stats`` report: one ``DatasetStats`` as text."""
    print(f"shards:    {stats.n_shards} ({_scheme_mix(stats.scheme_counts)})")
    print(f"examples:  {stats.n_examples} rows x {stats.n_cols} cols")
    print(
        f"payload:   {stats.payload_bytes / 1e6:.2f} MB "
        f"({stats.physical_bytes / 1e6:.2f} MB paged, "
        f"{stats.compression_ratio:.1f}x vs dense)"
    )
    requested = stats.requested_scheme
    if isinstance(requested, list):
        requested = "per-batch list"
    print(f"scheme:    {stats.scheme} (requested: {requested})")


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.bench import experiments

    print(f"repro {__version__} — tuple-oriented compression for mini-batch SGD")
    print(f"schemes:  {', '.join(available_schemes(include_ablations=True))}")
    print("datasets: " + ", ".join(sorted(DATASET_PROFILES)))
    print("experiments: " + ", ".join(sorted(experiments.EXPERIMENTS)))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    profile = _profile_or_none(args.dataset)
    if profile is None:
        return 2
    sample = profile.matrix(args.rows, seed=args.seed)
    calibration = ensure_calibration() if args.workload is not None else None
    recommendation = recommend_scheme(sample, workload=args.workload, calibration=calibration)
    print(f"sample: {args.rows} rows x {sample.shape[1]} columns from {args.dataset!r}")
    if recommendation.calibrated:
        print(f"workload: {recommendation.workload!r} (measured-cost ranking)")
        print(f"{'scheme':<10} {'ratio':>8} {'direct ops':>11} {'cost':>12}")
        for report in recommendation.reports:
            print(
                f"{report.name:<10} {report.compression_ratio:>8.1f} "
                f"{str(report.supports_direct_ops):>11} {report.measured_cost:>12.3e}"
            )
    else:
        print(f"{'scheme':<10} {'ratio':>8} {'direct ops':>11} {'score':>8}")
        for report in recommendation.reports:
            print(
                f"{report.name:<10} {report.compression_ratio:>8.1f} "
                f"{str(report.supports_direct_ops):>11} {report.score:>8.1f}"
            )
    print(f"\nrecommended scheme: {recommendation.best.name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.bench import experiments

    cli_args = [args.experiment_id]
    if args.quick:
        cli_args.append("--quick")
    return experiments.main(cli_args)


def _cmd_encode(args: argparse.Namespace) -> int:
    profile = _profile_or_none(args.dataset)
    if profile is None:
        return 2
    features, labels = profile.classification(args.rows, seed=args.seed)
    try:
        dataset = Dataset.create(
            args.shard_dir,
            features,
            labels,
            scheme=args.scheme,
            batch_size=args.batch_size,
            seed=args.seed,
            workers=args.workers,
            executor=args.executor,
            workload=args.workload,
        )
    except (KeyError, ValueError) as exc:
        print(f"encode failed: {exc}")
        return 2
    stats = dataset.stats()
    print(f"encoded {args.dataset!r} into {dataset.path} in {stats.encode_seconds:.3f}s")
    _print_stats(stats)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if not Dataset.exists(args.shard_dir):
        print(f"no shard manifest under {args.shard_dir}")
        return 2
    dataset = Dataset.open(args.shard_dir)
    print(f"dataset at {dataset.path}")
    _print_stats(dataset.stats())
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    if not Dataset.exists(args.shard_dir):
        print(f"no shard manifest under {args.shard_dir}")
        return 2
    dataset = Dataset.open(args.shard_dir)
    try:
        report = dataset.compact(
            readvise=not args.no_readvise,
            sample_rows=args.sample_rows,
            workload=args.workload,
            max_shards=args.max_shards,
            workers=args.workers,
            executor=args.executor,
        )
    except ValueError as exc:
        print(f"compact failed: {exc}")
        return 2
    if not report.readvised:
        print(f"manifest rewritten (format v2); {report.examined} shards untouched")
        return 0
    for change in report.changes:
        print(
            f"shard {change.batch_id:05d}: {change.scheme_before} -> "
            f"{change.scheme_after} ({change.nbytes_before} -> {change.nbytes_after} bytes)"
        )
    print(
        f"compacted {dataset.path} in {report.seconds:.3f}s: "
        f"{report.n_reencoded} of {report.examined} shards re-encoded"
        + (f" ({report.deferred} deferred by --max-shards)" if report.deferred else "")
        + (
            f", payload {report.payload_bytes_before / 1e6:.2f} -> "
            f"{report.payload_bytes_after / 1e6:.2f} MB"
            if report.changed
            else " (already optimal — no-op)"
        )
    )
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    if not Dataset.exists(args.shard_dir):
        print(f"no shard manifest under {args.shard_dir}")
        return 2
    dataset = Dataset.open(args.shard_dir)
    columns = None
    if args.columns is not None:
        try:
            columns = [
                int(part.strip().lstrip("cC"))
                for part in args.columns.split(",")
                if part.strip()
            ]
        except ValueError:
            print(f"--columns must be comma-separated column indexes, got {args.columns!r}")
            return 2
    try:
        result = dataset.scan(
            columns=columns,
            where=args.where,
            agg=args.agg,
            limit=args.limit,
            pushdown=not args.no_pushdown,
        )
    except (ValueError, IndexError) as exc:
        print(f"scan failed: {exc}")
        return 2
    if result.is_aggregate:
        for key, value in result.aggregates.items():
            rendered = "null" if value is None else f"{value:g}"
            print(f"{key:<12} {rendered}")
    else:
        shown = result.rows if args.max_print is None else result.rows[: args.max_print]
        header = (
            [f"c{c}" for c in columns]
            if columns is not None
            else [f"c{c}" for c in range(result.rows.shape[1])]
        )
        print(f"{'row':>8} " + " ".join(f"{name:>10}" for name in header))
        for row_id, row in zip(result.row_ids, shown):
            print(f"{row_id:>8} " + " ".join(f"{value:>10.4g}" for value in row))
        if shown.shape[0] < result.rows.shape[0]:
            print(f"... ({result.rows.shape[0] - shown.shape[0]} more rows not printed)")
    print(
        f"\nscanned {result.n_rows_scanned} rows in {result.shards_scanned} shards "
        f"({_scheme_mix(result.schemes)}): {result.n_rows_matched} matched "
        f"({result.selectivity:.1%}); push-down on {result.pushdown_shards} shards, "
        f"dense fallback on {result.fallback_shards}"
    )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    if not Dataset.exists(args.shard_dir):
        print(f"no shard manifest under {args.shard_dir}")
        return 2
    dataset = Dataset.open(args.shard_dir)
    report = dataset.fsck(remove=not args.dry_run)
    for name in report.orphans:
        action = "would remove" if args.dry_run else "removed"
        print(f"{action}: {name}")
    for name in report.missing:
        print(f"MISSING (referenced by the manifest, not on disk): {name}")
    if report.clean:
        print(f"{dataset.path}: clean ({report.examined} unreferenced entries examined)")
    else:
        print(
            f"{dataset.path}: {len(report.orphans)} orphans "
            f"({report.bytes_reclaimable} bytes"
            + (" reclaimable), dry run — nothing deleted"
               if args.dry_run else " reclaimed)")
            + (f", {len(report.missing)} referenced files MISSING" if report.missing else "")
        )
    # Missing referenced files mean real data loss — nonzero exit for scripts.
    return 1 if report.missing else 0


def _cmd_train_ooc(args: argparse.Namespace) -> int:
    try:
        estimator = Estimator(
            args.model,
            scheme=args.scheme,
            batch_size=args.batch_size,
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            seed=args.seed,
            budget_bytes=int(args.budget_mb * 1e6) if args.budget_mb is not None else None,
            budget_ratio=args.budget_ratio,
            prefetch_depth=args.prefetch_depth,
            workers=args.workers,
            executor=args.executor,
            workload=args.workload,
        )
    except (KeyError, ValueError) as exc:
        print(f"invalid train-ooc configuration: {exc}")
        return 2

    reuse = args.shard_dir is not None and Dataset.exists(args.shard_dir)
    try:
        if reuse:
            dataset = Dataset.open(args.shard_dir)
            print(
                f"training over the existing {len(dataset)} shards at {dataset.path} "
                f"(scheme {dataset.scheme}; --dataset/--rows/--scheme ignored)"
            )
            report = estimator.fit(dataset)
        else:
            profile = _profile_or_none(args.dataset)
            if profile is None:
                return 2
            features, labels = profile.classification(args.rows, seed=args.seed)
            print(
                f"sharding {features.shape[0]} rows x {features.shape[1]} cols of "
                f"{args.dataset!r} as {args.scheme} (batch {args.batch_size})"
            )
            if args.scheme == "auto":
                print("scheme 'auto': the advisor samples every batch and picks per shard")
            if args.shard_dir is not None:
                report = estimator.fit(features, labels, shard_dir=args.shard_dir)
            else:
                if args.checkpoint_dir is not None:
                    print("--checkpoint-dir needs --shard-dir: the checkpoint records the shard")
                    print("directory so `serve` and `predict` can find the features again")
                    return 2
                with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                    report = estimator.fit(features, labels, shard_dir=tmp)
    except (FileNotFoundError, ValueError) as exc:
        print(f"train-ooc failed: {exc}")
        return 2

    stats = report.dataset.stats()
    ooc = report.ooc
    print(
        f"shards: {stats.n_shards} batches ({_scheme_mix(stats.scheme_counts)}), "
        f"{ooc.total_payload_bytes / 1e6:.2f} MB payload "
        f"({ooc.physical_bytes / 1e6:.2f} MB paged), "
        f"encoded in {stats.encode_seconds:.3f}s"
    )
    print(
        f"buffer pool: {ooc.budget_bytes / 1e6:.2f} MB budget — "
        f"dataset {'fits' if ooc.fits_in_memory else 'does NOT fit'} in memory"
    )
    print(f"\n{'epoch':>5} {'loss':>10} {'wall s':>8} {'sim IO s':>9}")
    for i, (loss, wall, io) in enumerate(
        zip(report.history.epoch_losses, report.history.epoch_times, ooc.epoch_io_seconds),
        start=1,
    ):
        print(f"{i:>5} {loss:>10.4f} {wall:>8.3f} {io:>9.5f}")
    pool = ooc.pool_stats
    print(
        f"\npool stats: {pool.hits} hits / {pool.misses} misses "
        f"(hit rate {pool.hit_rate:.0%}), {pool.evictions} evictions, "
        f"{pool.bytes_read_from_disk / 1e6:.2f} MB read from disk"
    )
    if args.checkpoint_dir is not None:
        version, path = estimator.save(args.checkpoint_dir)
        print(f"checkpoint: published v{version:05d} at {path}")
    return 0


def _load_service(args):
    """Shared ``serve``/``predict`` setup: registry -> checkpoint -> service.

    Returns ``(service, checkpoint)`` or an int exit code on a clean failure.
    """
    try:
        service, checkpoint = open_service(
            args.checkpoint_dir,
            args.version if args.version == "latest" else int(args.version),
            shard_dir=args.shards,
            max_batch_size=args.max_batch,
            max_wait_seconds=args.max_wait_ms / 1e3,
            cache_size=args.cache_size,
        )
    except FileNotFoundError as exc:
        print(f"cannot load checkpoint: {exc}")
        print("train one first: python -m repro train-ooc --shard-dir shards/ "
              "--checkpoint-dir checkpoints/")
        return 2
    except ValueError as exc:
        print(f"invalid serving configuration: {exc}")
        return 2
    if service.store is None:
        service.close()
        print("checkpoint records no shard directory; pass --shards pointing at one")
        return 2
    return service, checkpoint


def _cmd_predict(args: argparse.Namespace) -> int:
    loaded = _load_service(args)
    if isinstance(loaded, int):
        return loaded
    service, checkpoint = loaded
    with service:
        store = service.store
        try:
            ids = [int(part) for part in args.ids.split(",") if part.strip() != ""]
        except ValueError:
            print(f"--ids must be comma-separated integers, got {args.ids!r}")
            return 2
        try:
            predictions = service.predict_ids(ids)
        except IndexError as exc:
            print(f"predict failed: {exc}")
            return 2
        labels = store.get_labels(ids)
        print(
            f"model v{checkpoint.version:05d} ({checkpoint.model_name}, "
            f"scheme {checkpoint.scheme_name}) over {store.n_rows} stored rows"
        )
        print(f"{'row':>6} {'prediction':>11} {'label':>6}")
        for row_id, prediction, label in zip(ids, predictions, labels):
            print(f"{row_id:>6} {prediction:>11.0f} {label:>6.0f}")
        correct = float((predictions == labels).mean()) if ids else 0.0
        print(f"\nagreement with stored labels: {correct:.0%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    if args.workers > 1:
        return _cmd_serve_cluster(args)

    loaded = _load_service(args)
    if isinstance(loaded, int):
        return loaded
    service, checkpoint = loaded
    with service:
        store = service.store
        n_rows = store.n_rows
        rng = np.random.default_rng(args.seed)
        # 80/20 closed-loop workload: most requests hammer a small hot set,
        # which is what gives the prediction cache something to absorb.
        hot = rng.choice(n_rows, size=max(1, n_rows // 5), replace=False)
        workload = np.where(
            rng.random(args.requests) < 0.8,
            rng.choice(hot, size=args.requests),
            rng.integers(0, n_rows, size=args.requests),
        )
        print(
            f"serving model v{checkpoint.version:05d} ({checkpoint.model_name}, "
            f"scheme {checkpoint.scheme_name}): {args.requests} requests from "
            f"{args.clients} clients over {n_rows} rows "
            f"(batch<= {args.max_batch}, wait {args.max_wait_ms}ms, cache {args.cache_size})"
        )
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.clients) as clients:
            list(clients.map(service.predict_id, workload))
        wall = time.perf_counter() - start

        # One consistent copy under the service lock — the worker thread may
        # still be counting the tail of the swarm while we print.
        stats = service.stats.snapshot()
        batcher, rows = service.batcher_stats, store.stats
        print(f"\nthroughput: {args.requests / wall:,.0f} requests/s ({wall:.3f}s wall)")
        print(
            f"latency:    {stats.mean_request_seconds * 1e6:,.0f} us mean "
            f"({stats.requests} requests)"
        )
        print(
            f"batching:   {batcher.batches} model calls, mean batch "
            f"{batcher.mean_batch_size:.1f}, largest {batcher.largest_batch}"
        )
        print(f"pred cache: {stats.cache_hit_rate:.0%} hit rate ({stats.cache_hits} hits)")
        print(
            f"store:      {rows.row_hit_rate:.0%} decoded-row hit rate "
            f"({rows.shard_decodes} shard decodes), "
            f"{store.pool.stats.bytes_read_from_disk / 1e6:.2f} MB read through the pool"
        )
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """``serve --workers N``: drive the multi-process tier under load.

    SIGINT/SIGTERM trigger a graceful drain: clients stop issuing new
    requests, workers finish everything in flight, and the command exits 0.
    """
    import signal
    import threading
    import time
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    from repro.api import ClusterError, ClusterService

    try:
        cluster = ClusterService(
            args.checkpoint_dir,
            args.version if args.version == "latest" else int(args.version),
            shard_dir=args.shards,
            workers=args.workers,
            backlog=args.backlog,
            admission=args.admission,
            default_deadline=args.deadline_ms / 1e3 if args.deadline_ms else None,
            max_batch_size=args.max_batch,
            cache_size=args.cache_size,
        )
    except FileNotFoundError as exc:
        print(f"cannot load checkpoint: {exc}")
        print("train one first: python -m repro train-ooc --shard-dir shards/ "
              "--checkpoint-dir checkpoints/")
        return 2
    except ValueError as exc:
        print(f"invalid serving configuration: {exc}")
        return 2

    checkpoint = cluster.checkpoint
    stop = threading.Event()

    def _drain(signum, _frame):
        print(f"\nreceived {signal.Signals(signum).name}: draining in-flight work ...")
        stop.set()

    previous = {
        sig: signal.signal(sig, _drain) for sig in (signal.SIGINT, signal.SIGTERM)
    }
    shed = 0
    done = 0
    issued = 0
    count_lock = threading.Lock()
    try:
        n_rows = cluster.ping()[0]["n_rows"]
        rng = np.random.default_rng(args.seed)
        hot = rng.choice(n_rows, size=max(1, n_rows // 5), replace=False)
        workload = np.where(
            rng.random(args.requests) < 0.8,
            rng.choice(hot, size=args.requests),
            rng.integers(0, n_rows, size=args.requests),
        )
        deadline_text = f"{args.deadline_ms:.0f}ms" if args.deadline_ms else "none"
        print(
            f"serving model v{checkpoint.version:05d} ({checkpoint.model_name}) with "
            f"{args.workers} workers (backlog {args.backlog}/worker, admission "
            f"{args.admission!r}, deadline {deadline_text}): {args.requests} requests "
            f"from {args.clients} clients over {n_rows} rows"
        )

        def client(row_id: int) -> None:
            nonlocal shed, done
            if stop.is_set():
                return
            try:
                cluster.predict(int(row_id))
            except ClusterError:
                with count_lock:
                    shed += 1
            else:
                with count_lock:
                    done += 1

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.clients) as clients:
            for row_id in workload:
                if stop.is_set():
                    break
                clients.submit(client, row_id)
                issued += 1
        wall = time.perf_counter() - start
        metrics = cluster.metrics()
        cluster.close(drain=True)

        skipped = issued - done - shed
        print(f"\nthroughput: {done / wall:,.0f} answered requests/s ({wall:.3f}s wall)")
        print(
            f"requests:   {issued} issued, {done} answered, {shed} shed/failed"
            + (f", {skipped} skipped at drain" if skipped else "")
        )
        depth_keys = sorted(
            key for key in metrics["gauges"] if key.startswith("cluster.worker.queue_depth")
        )
        for key in depth_keys:
            print(f"{key}: {metrics['gauges'][key]:.0f}")
        if stop.is_set():
            print("drained cleanly after signal")
        return 0
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        cluster.close(drain=True)


def _obs_exercise(rows: int) -> None:
    """Populate spans/metrics with a real encode + train + scan + serve workload.

    Serial executors throughout, so every span lands in this process's
    tracer (process-pool workers would record into their own).  The serving
    leg runs a handful of requests through the asyncio surface so the
    ``cluster.async.*`` admission metrics (in-flight, shed, rejected) show
    up in the snapshot next to the ``serve.*`` series.
    """
    import asyncio

    import numpy as np

    from repro.api import AsyncPredictionService, Estimator

    with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
        rng = np.random.default_rng(0)
        features = rng.normal(size=(rows, 8))
        features[rng.random(features.shape) < 0.6] = 0.0
        labels = (features[:, 0] > 0).astype(np.float64)
        dataset = Dataset.create(
            f"{tmp}/shards",
            features,
            labels,
            scheme="TOC",
            batch_size=max(rows // 4, 1),
            executor="serial",
            seed=0,
        )
        estimator = Estimator("logreg", scheme="TOC", epochs=2, executor="serial")
        estimator.fit(dataset)
        dataset.scan(where="c0 >= 0", agg="count")
        estimator.save(f"{tmp}/registry")
        service, _ = open_service(f"{tmp}/registry", cache_size=32)

        async def serve_leg():
            async with AsyncPredictionService(service, max_inflight=8) as async_service:
                await async_service.predict_many(
                    [int(i) for i in rng.integers(0, rows, size=16)]
                )

        asyncio.run(serve_leg())


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    from repro.obs import default_tracer

    _obs_exercise(args.rows)
    tracer = default_tracer()
    if args.format == "chrome":
        text = tracer.dump_chrome(indent=2)
    else:
        text = tracer.dump(indent=2)
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {len(tracer)} spans ({args.format}) to {args.output}")
    else:
        print(text)
    return 0


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import metrics_snapshot

    _obs_exercise(args.rows)
    print(json.dumps(metrics_snapshot(args.prefix), indent=2, sort_keys=True))
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.obs import bench_report

    return bench_report(
        args.paths or ["BENCH_*.json"],
        db=args.db,
        threshold=args.threshold,
        check=args.check,
    )


def _add_encode_args(sub: argparse.ArgumentParser, default_dataset: str) -> None:
    """Flags shared by ``encode`` and ``train-ooc``'s sharding half."""
    sub.add_argument("--dataset", default=default_dataset, help="dataset profile name")
    sub.add_argument("--batch-size", type=int, default=250, help="mini-batch rows")
    sub.add_argument(
        "--scheme",
        default=None,
        help='compression scheme for the shards, or "auto" to let the advisor '
        "pick per shard (the manifest records the choice for every shard)",
    )
    sub.add_argument("--seed", type=int, default=0, help="data / shuffle / init seed")
    sub.add_argument(
        "--workers", type=int, default=None, help="encode workers (default: one per core)"
    )
    sub.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="encode executor kind",
    )
    sub.add_argument(
        "--workload",
        choices=WORKLOADS,
        default=None,
        help='rank "auto" scheme candidates by measured kernel cost for this '
        "workload (runs a one-time calibration pass; default: ratio heuristic)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show version, schemes, datasets, experiments")
    info.set_defaults(func=_cmd_info)

    advise = subparsers.add_parser("advise", help="recommend a scheme for a dataset profile")
    advise.add_argument("--dataset", default="census", help="dataset profile name")
    advise.add_argument("--rows", type=int, default=250, help="sample mini-batch rows")
    advise.add_argument("--seed", type=int, default=0, help="sample seed")
    advise.add_argument(
        "--workload",
        choices=WORKLOADS,
        default=None,
        help="rank by measured kernel cost for this workload instead of the ratio heuristic",
    )
    advise.set_defaults(func=_cmd_advise)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    # Choices resolve lazily in _cmd_experiment; accept any id here so the
    # parser itself stays a thin facade shell.
    experiment.add_argument("experiment_id")
    experiment.add_argument("--quick", action="store_true", help="reduced row counts / epochs")
    experiment.set_defaults(func=_cmd_experiment)

    encode = subparsers.add_parser(
        "encode", help="shard a dataset profile into a compressed dataset on disk"
    )
    _add_encode_args(encode, default_dataset="census")
    encode.set_defaults(scheme="auto")
    encode.add_argument("--rows", type=int, default=4000, help="dataset rows to generate")
    encode.add_argument("--shard-dir", required=True, help="directory to encode into")
    encode.set_defaults(func=_cmd_encode)

    stats = subparsers.add_parser(
        "stats", help="summarise a shard directory (sizes, ratio, scheme mix)"
    )
    stats.add_argument("--shard-dir", required=True, help="shard directory to inspect")
    stats.set_defaults(func=_cmd_stats)

    compact = subparsers.add_parser(
        "compact", help="re-advise shards and re-encode the ones whose scheme drifted"
    )
    compact.add_argument("--shard-dir", required=True, help="shard directory to compact")
    compact.add_argument(
        "--no-readvise",
        action="store_true",
        help="skip the advisor; only rewrite the manifest (v1 -> v2 upgrade)",
    )
    compact.add_argument(
        "--sample-rows", type=int, default=100, help="rows the advisor samples per shard"
    )
    compact.add_argument(
        "--workload",
        choices=WORKLOADS,
        default=None,
        help="re-advise with the measured cost model for this workload "
        "(calibration is persisted next to the dataset)",
    )
    compact.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="re-encode at most this many shards per pass (rest deferred)",
    )
    compact.add_argument(
        "--workers", type=int, default=None, help="re-encode worker count (default: cores)"
    )
    compact.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="executor for the re-encode fan-out",
    )
    compact.set_defaults(func=_cmd_compact)

    scan = subparsers.add_parser(
        "scan", help="query a shard directory with predicate push-down"
    )
    scan.add_argument("--shard-dir", required=True, help="shard directory to query")
    scan.add_argument(
        "--where",
        default=None,
        help="predicate, e.g. 'c0 >= 0.5 and (c2 == 1 or not c3 < 2)' (default: all rows)",
    )
    scan.add_argument(
        "--columns", default=None, help="comma-separated columns to project, e.g. 'c0,c3' or '0,3'"
    )
    scan.add_argument(
        "--agg",
        default=None,
        help="aggregates instead of rows: 'count' or '<op>:<col>', comma-joined "
        "(ops: count, sum, min, max, mean), e.g. 'count,mean:c2'",
    )
    scan.add_argument("--limit", type=int, default=None, help="stop after this many matches")
    scan.add_argument(
        "--no-pushdown",
        action="store_true",
        help="force the dense fallback on every shard (for verification / timing)",
    )
    scan.add_argument(
        "--max-print", type=int, default=20, help="cap on printed rows (matches beyond still count)"
    )
    scan.set_defaults(func=_cmd_scan)

    fsck = subparsers.add_parser(
        "fsck", help="sweep a shard directory for orphaned temporaries and stale generations"
    )
    fsck.add_argument("--shard-dir", required=True, help="shard directory to check")
    fsck.add_argument(
        "--dry-run", action="store_true", help="report orphans without deleting them"
    )
    fsck.set_defaults(func=_cmd_fsck)

    train_ooc = subparsers.add_parser(
        "train-ooc",
        help="shard a dataset to disk and train a model out-of-core",
    )
    _add_encode_args(train_ooc, default_dataset="kdd99")
    train_ooc.set_defaults(scheme="TOC")
    train_ooc.add_argument("--rows", type=int, default=4000, help="dataset rows to generate")
    train_ooc.add_argument("--epochs", type=int, default=3, help="training epochs")
    train_ooc.add_argument("--learning-rate", type=float, default=0.3, help="MGD step size")
    train_ooc.add_argument("--model", choices=("logreg", "svm"), default="logreg")
    train_ooc.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="buffer pool budget in MB (overrides --budget-ratio)",
    )
    train_ooc.add_argument(
        "--budget-ratio",
        type=float,
        default=0.5,
        help="pool budget as a fraction of the shard payload (default 0.5: does not fit)",
    )
    train_ooc.add_argument(
        "--prefetch-depth", type=int, default=2, help="read-ahead depth (0 disables)"
    )
    train_ooc.add_argument(
        "--shard-dir",
        default=None,
        help="persist shards here, or train over this directory when it already "
        "holds a manifest (default: temporary directory)",
    )
    train_ooc.add_argument(
        "--checkpoint-dir",
        default=None,
        help="publish the trained model to this registry (needs --shard-dir)",
    )
    train_ooc.set_defaults(func=_cmd_train_ooc)

    def add_serving_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--checkpoint-dir", default="checkpoints", help="model registry root directory"
        )
        sub.add_argument(
            "--version", default="latest", help='checkpoint version number or "latest"'
        )
        sub.add_argument(
            "--shards",
            default=None,
            help="shard directory (default: the one recorded in the checkpoint)",
        )
        sub.add_argument(
            "--max-batch", type=int, default=32, help="micro-batch size cap (1 disables)"
        )
        sub.add_argument(
            "--max-wait-ms",
            type=float,
            default=0.0,
            help="micro-batch linger for stragglers (0: dispatch when the queue empties)",
        )
        sub.add_argument(
            "--cache-size", type=int, default=256, help="prediction LRU entries (0 disables)"
        )

    predict = subparsers.add_parser(
        "predict",
        help="predict stored rows with a checkpointed model",
    )
    add_serving_args(predict)
    predict.add_argument(
        "--ids", default="0,1,2,3,4,5,6,7", help="comma-separated row ids to predict"
    )
    predict.set_defaults(func=_cmd_predict)

    serve = subparsers.add_parser(
        "serve",
        help="run the micro-batched prediction service under synthetic load",
    )
    add_serving_args(serve)
    serve.add_argument("--requests", type=int, default=2000, help="total requests to issue")
    serve.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 serves through the multi-process cluster tier",
    )
    serve.add_argument(
        "--backlog",
        type=int,
        default=64,
        help="max in-flight requests per worker (cluster mode)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in ms; past-deadline queued work is shed "
        "with an explicit error (cluster mode)",
    )
    serve.add_argument(
        "--admission",
        choices=("block", "reject"),
        default="block",
        help="policy when every worker queue is full: block until a slot "
        "frees (bounded by the deadline) or reject immediately",
    )
    serve.set_defaults(func=_cmd_serve)

    obs = subparsers.add_parser(
        "obs", help="observability: dump spans or print the metrics snapshot"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_dump = obs_sub.add_parser(
        "dump",
        help="run a small encode+train+scan exercise and dump the recorded spans",
    )
    obs_dump.add_argument(
        "--format",
        choices=("json", "chrome"),
        default="json",
        help='span dump format: "json" (native) or "chrome" (chrome://tracing)',
    )
    obs_dump.add_argument(
        "--rows", type=int, default=400, help="rows in the exercise dataset"
    )
    obs_dump.add_argument(
        "--output", default=None, help="write the dump here instead of stdout"
    )
    obs_dump.set_defaults(func=_cmd_obs_dump)

    obs_metrics = obs_sub.add_parser(
        "metrics",
        help="run the same exercise and print the process metrics snapshot",
    )
    obs_metrics.add_argument(
        "--rows", type=int, default=400, help="rows in the exercise dataset"
    )
    obs_metrics.add_argument(
        "--prefix", default="", help="only metrics whose dotted name starts with this"
    )
    obs_metrics.set_defaults(func=_cmd_obs_metrics)

    bench_report = subparsers.add_parser(
        "bench-report",
        help="ingest BENCH_*.json into the run registry and diff against history",
    )
    bench_report.add_argument(
        "paths",
        nargs="*",
        help="BENCH json files or globs (default: ./BENCH_*.json)",
    )
    bench_report.add_argument(
        "--db",
        default="bench_registry.sqlite",
        help="SQLite registry file (created on first use)",
    )
    bench_report.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative regression threshold (0.2 = 20%%)",
    )
    bench_report.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any direction-aware metric regresses",
    )
    bench_report.set_defaults(func=_cmd_bench_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
