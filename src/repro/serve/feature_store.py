"""Row lookups over a sharded dataset, through the buffer pool.

The training engine reads whole shards; serving needs individual rows.  The
feature store maps a global row id onto (shard, local row) with the manifest
row counts, reads the compressed payload through the same byte-budgeted
:class:`~repro.storage.buffer_pool.BufferPool` the trainer uses, resolves
the decoder *per shard* from the manifest (so mixed-scheme directories serve
exactly like uniform ones), and decodes **only the requested rows** with the
:func:`repro.exec.row_slice` kernel — an array slice for DEN shards, SciPy
row indexing for CSR, a selection ``M @ A`` on the compressed form for TOC —
never the whole dense block.

On top sit two small LRUs.  The *row* LRU holds decoded rows keyed by
global row id; caching rows instead of whole blocks keeps the dense
footprint proportional to the working set of the traffic, not to
``shard_rows x shards_touched`` — a point lookup no longer drags a few
hundred dense neighbours into memory with it.  The *parsed* LRU holds a few
shards in sliceable form so consecutive misses into the same shard skip the
expensive part: for direct-op schemes that is the parsed ``CompressedMatrix``
(still compressed — it does not defeat the compression the way caching every
dense block did); for byte-block schemes (Gzip/Snappy), whose only row path
is a full inflate, it is the inflated dense block, since re-inflating per
miss would be strictly worse.  Either form row-slices through the same
:func:`repro.exec.row_slice` dispatch.  The buffer pool underneath still
bounds resident compressed *bytes* (the paper's RAM-budget mechanism).
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exec import row_slice, supports_direct_ops
from repro.serve.lru import LRUCache
from repro.storage.buffer_pool import BufferPool

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids engine import
    from repro.engine.shards import ShardedDataset


@dataclass
class FeatureStoreStats:
    """Counters accumulated by a :class:`FeatureStore`."""

    lookups: int = 0
    rows_served: int = 0
    row_hits: int = 0
    row_misses: int = 0
    shard_decodes: int = 0
    payload_parses: int = 0

    @property
    def row_accesses(self) -> int:
        return self.row_hits + self.row_misses

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.row_accesses if self.row_accesses else 0.0


class FeatureStore:
    """Point and range row access over a :class:`ShardedDataset`.

    Parameters
    ----------
    dataset:
        An open shard directory (:meth:`repro.engine.shards.ShardedDataset.open`).
    pool:
        Buffer pool for the compressed payloads.  When omitted, one is built
        with ``budget_bytes`` (default: the full payload fits — serving wants
        hot data resident; pass a smaller budget to model a RAM-starved tier).
    decoded_cache_rows:
        How many decoded dense rows the LRU holds (>= 1).
    parsed_cache_shards:
        How many parsed (still compressed) shard matrices to keep so misses
        into a recently-touched shard skip re-parsing its payload (>= 1).
    """

    def __init__(
        self,
        dataset: "ShardedDataset",
        *,
        pool: BufferPool | None = None,
        budget_bytes: int | None = None,
        decoded_cache_rows: int = 1024,
        parsed_cache_shards: int = 8,
    ):
        if decoded_cache_rows < 1:
            raise ValueError("decoded_cache_rows must be at least 1")
        if parsed_cache_shards < 1:
            raise ValueError("parsed_cache_shards must be at least 1")
        self.dataset = dataset
        if pool is None:
            pool = BufferPool(budget_bytes=budget_bytes or max(1, dataset.total_payload_bytes()))
        dataset.attach(pool)
        self.pool = pool
        self.decoded_cache_rows = decoded_cache_rows
        self.parsed_cache_shards = parsed_cache_shards
        #: LRU of decoded rows keyed by global row id.
        self._rows: LRUCache = LRUCache(decoded_cache_rows)
        #: LRU of parsed ``CompressedMatrix`` objects keyed by batch id.
        self._parsed: LRUCache = LRUCache(parsed_cache_shards)
        self.stats = FeatureStoreStats()
        # Guards stats and the (single-threaded) buffer pool: the store is
        # shared between client threads (bulk API) and the batcher worker.
        self._lock = threading.Lock()
        # offsets[i] = global row id of the first row of shard i.
        self._offsets: list[int] = []
        cursor = 0
        for shard in dataset.shards:
            self._offsets.append(cursor)
            cursor += shard.n_rows
        self._n_rows = cursor

    @classmethod
    def open(cls, directory, **kwargs) -> "FeatureStore":
        """Open a shard directory and build a store over it."""
        from repro.engine.shards import ShardedDataset

        return cls(ShardedDataset.open(directory), **kwargs)

    # -- geometry -------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return self.dataset.shards[0].n_cols if self.dataset.shards else 0

    def locate(self, row_id: int) -> tuple[int, int]:
        """Map a global row id to ``(batch_id, local_row)``."""
        row_id = int(row_id)
        if not 0 <= row_id < self._n_rows:
            raise IndexError(f"row {row_id} out of range [0, {self._n_rows})")
        shard_index = bisect_right(self._offsets, row_id) - 1
        return self.dataset.shards[shard_index].batch_id, row_id - self._offsets[shard_index]

    # -- decode ---------------------------------------------------------------

    def _decode_rows(self, batch_id: int, local_rows: list[int]) -> np.ndarray:
        """Row-slice one shard with its own scheme, through the buffer pool."""
        sliceable = self._parsed.get(batch_id)
        if sliceable is None:
            with self._lock:
                # The pool is not thread-safe, so the read stays under the
                # lock; a racing miss parses twice and last-write-wins.
                self.stats.payload_parses += 1
                payload = self.pool.read(batch_id)
            sliceable = self.dataset.decode(batch_id, payload)
            if not supports_direct_ops(sliceable):
                # Byte-block schemes can only row-slice via a full inflate;
                # cache the inflated block so misses don't re-inflate it.
                sliceable = sliceable.to_dense()
            self._parsed.put(batch_id, sliceable)
        with self._lock:
            self.stats.shard_decodes += 1
        return row_slice(sliceable, local_rows)

    # -- row access -----------------------------------------------------------

    def get_row(self, row_id: int) -> np.ndarray:
        """One feature row (a copy, safe to mutate)."""
        return self.get_rows([row_id])[0]

    def get_rows(self, row_ids: Iterable[int]) -> np.ndarray:
        """Many rows as one dense matrix, touching each shard at most once.

        Rows come back in request order; duplicate ids are allowed (a cache
        serving repeat traffic produces them naturally).  Cached rows are
        served from the row LRU; the misses of each touched shard are decoded
        with one ``row_slice`` call on its compressed form.
        """
        ids = [int(r) for r in row_ids]
        located = [self.locate(r) for r in ids]
        out = np.empty((len(ids), self.n_cols), dtype=np.float64)

        hits = 0
        # Group cache-missing positions by shard so each compressed block is
        # parsed and row-sliced exactly once per lookup.
        missing_by_shard: dict[int, list[int]] = {}
        for position, row_id in enumerate(ids):
            cached = self._rows.get(row_id)
            if cached is not None:
                out[position] = cached
                hits += 1
            else:
                missing_by_shard.setdefault(located[position][0], []).append(position)
        with self._lock:
            self.stats.lookups += 1
            self.stats.rows_served += len(ids)
            self.stats.row_hits += hits
            self.stats.row_misses += len(ids) - hits

        for batch_id, positions in missing_by_shard.items():
            local_rows = [located[position][1] for position in positions]
            decoded = self._decode_rows(batch_id, local_rows)
            for row, position in zip(decoded, positions):
                out[position] = row
                self._rows.put(ids[position], row.copy())
        return out

    def get_range(self, start: int, stop: int) -> np.ndarray:
        """Rows ``start:stop`` as one dense matrix (half-open, like slicing)."""
        if stop < start:
            raise ValueError(f"invalid range [{start}, {stop})")
        return self.get_rows(range(start, stop))

    def get_labels(self, row_ids: Iterable[int]) -> np.ndarray:
        """Stored labels for the given rows (ground truth for evaluation)."""
        labels = []
        for row_id in row_ids:
            batch_id, local = self.locate(row_id)
            labels.append(self.dataset.labels_for(batch_id)[local])
        return np.asarray(labels)
