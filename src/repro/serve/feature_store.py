"""Row lookups over a sharded dataset, through the buffer pool.

The training engine reads whole shards; serving needs individual rows.  The
feature store maps a global row id onto (shard, local row) with the manifest
row counts, reads the compressed payload through the same byte-budgeted
:class:`~repro.storage.buffer_pool.BufferPool` the trainer uses, and keeps a
small LRU of *decoded* blocks on top — so a point lookup decodes a shard at
most once per cache residency instead of once per row, and a range or batch
lookup touches each shard exactly once.

Both caches are deliberately separate: the buffer pool bounds resident
*compressed* bytes (the paper's RAM-budget mechanism), while the decoded LRU
bounds how many *dense* blocks exist at a time (dense blocks are 5–20x
larger, so caching them all would defeat the compression).
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.compression.registry import get_scheme
from repro.serve.lru import LRUCache
from repro.storage.buffer_pool import BufferPool

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids engine import
    from repro.engine.shards import ShardedDataset


@dataclass
class FeatureStoreStats:
    """Counters accumulated by a :class:`FeatureStore`."""

    lookups: int = 0
    rows_served: int = 0
    block_hits: int = 0
    block_misses: int = 0

    @property
    def block_accesses(self) -> int:
        return self.block_hits + self.block_misses

    @property
    def block_hit_rate(self) -> float:
        return self.block_hits / self.block_accesses if self.block_accesses else 0.0


class FeatureStore:
    """Point and range row access over a :class:`ShardedDataset`.

    Parameters
    ----------
    dataset:
        An open shard directory (:meth:`repro.engine.shards.ShardedDataset.open`).
    pool:
        Buffer pool for the compressed payloads.  When omitted, one is built
        with ``budget_bytes`` (default: the full payload fits — serving wants
        hot data resident; pass a smaller budget to model a RAM-starved tier).
    decoded_cache_blocks:
        How many decoded dense blocks the LRU holds (≥ 1).
    """

    def __init__(
        self,
        dataset: "ShardedDataset",
        *,
        pool: BufferPool | None = None,
        budget_bytes: int | None = None,
        decoded_cache_blocks: int = 4,
    ):
        if decoded_cache_blocks < 1:
            raise ValueError("decoded_cache_blocks must be at least 1")
        self.dataset = dataset
        self.scheme = get_scheme(dataset.scheme_name)
        if pool is None:
            pool = BufferPool(budget_bytes=budget_bytes or max(1, dataset.total_payload_bytes()))
        dataset.attach(pool)
        self.pool = pool
        self.decoded_cache_blocks = decoded_cache_blocks
        self._decoded: LRUCache = LRUCache(decoded_cache_blocks)
        self.stats = FeatureStoreStats()
        # Guards stats and the (single-threaded) buffer pool: the store is
        # shared between client threads (bulk API) and the batcher worker.
        self._lock = threading.Lock()
        # offsets[i] = global row id of the first row of shard i.
        self._offsets: list[int] = []
        cursor = 0
        for shard in dataset.shards:
            self._offsets.append(cursor)
            cursor += shard.n_rows
        self._n_rows = cursor

    @classmethod
    def open(cls, directory, **kwargs) -> "FeatureStore":
        """Open a shard directory and build a store over it."""
        from repro.engine.shards import ShardedDataset

        return cls(ShardedDataset.open(directory), **kwargs)

    # -- geometry -------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return self.dataset.shards[0].n_cols if self.dataset.shards else 0

    def locate(self, row_id: int) -> tuple[int, int]:
        """Map a global row id to ``(batch_id, local_row)``."""
        row_id = int(row_id)
        if not 0 <= row_id < self._n_rows:
            raise IndexError(f"row {row_id} out of range [0, {self._n_rows})")
        shard_index = bisect_right(self._offsets, row_id) - 1
        return self.dataset.shards[shard_index].batch_id, row_id - self._offsets[shard_index]

    # -- block access ---------------------------------------------------------

    def decoded_block(self, batch_id: int) -> np.ndarray:
        """The dense form of one shard, through the decoded-block LRU."""
        cached = self._decoded.get(batch_id)
        if cached is not None:
            with self._lock:
                self.stats.block_hits += 1
            return cached
        with self._lock:
            # The pool is not thread-safe, so the read stays under the lock;
            # a racing miss decodes twice and last-write-wins on the put.
            self.stats.block_misses += 1
            payload = self.pool.read(batch_id)
        block = self.scheme.decompress_bytes(payload).to_dense()
        self._decoded.put(batch_id, block)
        return block

    # -- row access -----------------------------------------------------------

    def get_row(self, row_id: int) -> np.ndarray:
        """One feature row (a copy, safe to mutate)."""
        batch_id, local = self.locate(row_id)
        with self._lock:
            self.stats.lookups += 1
            self.stats.rows_served += 1
        return self.decoded_block(batch_id)[local].copy()

    def get_rows(self, row_ids: Iterable[int]) -> np.ndarray:
        """Many rows as one dense matrix, decoding each touched shard once.

        Rows come back in request order; duplicate ids are allowed (a cache
        serving repeat traffic produces them naturally).
        """
        ids = [int(r) for r in row_ids]
        with self._lock:
            self.stats.lookups += 1
            self.stats.rows_served += len(ids)
        out = np.empty((len(ids), self.n_cols), dtype=np.float64)
        # Group positions by shard so each block is fetched exactly once.
        by_shard: dict[int, list[int]] = {}
        located = [self.locate(r) for r in ids]
        for position, (batch_id, _) in enumerate(located):
            by_shard.setdefault(batch_id, []).append(position)
        for batch_id, positions in by_shard.items():
            block = self.decoded_block(batch_id)
            for position in positions:
                out[position] = block[located[position][1]]
        return out

    def get_range(self, start: int, stop: int) -> np.ndarray:
        """Rows ``start:stop`` as one dense matrix (half-open, like slicing)."""
        if stop < start:
            raise ValueError(f"invalid range [{start}, {stop})")
        return self.get_rows(range(start, stop))

    def get_labels(self, row_ids: Iterable[int]) -> np.ndarray:
        """Stored labels for the given rows (ground truth for evaluation)."""
        labels = []
        for row_id in row_ids:
            batch_id, local = self.locate(row_id)
            labels.append(self.dataset.labels_for(batch_id)[local])
        return np.asarray(labels)
