"""Queue-based micro-batching for concurrent single-row requests.

Online traffic arrives one row at a time, but everything downstream —
decompression, the compressed matvec, the Python call overhead — is cheaper
per row when amortized over a mini-batch.  The micro-batcher is the bridge:
callers submit single requests and block on a future; a single worker thread
drains the queue, coalescing up to ``max_batch_size`` requests (waiting at
most ``max_wait_seconds`` for stragglers after the first arrival), and runs
the whole batch through one handler call.  With ``max_batch_size=1`` it
degenerates to an unbatched request loop, which the serving benchmark uses
as the fair baseline.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics

#: Shutdown marker pushed by :meth:`MicroBatcher.close`.
_SENTINEL = object()


class ServiceClosed(RuntimeError):
    """The service/batcher was closed; the request was not (or will not be) served.

    Raised by :meth:`MicroBatcher.submit` after :meth:`MicroBatcher.close`,
    and set on every still-queued future when a batcher is closed with
    ``drain=False`` — callers blocked on ``future.result()`` get this error
    instead of hanging on a future nobody will ever resolve.
    """


@dataclass
class MicroBatcherStats:
    """Counters accumulated by a :class:`MicroBatcher`."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class MicroBatcher:
    """Coalesce concurrent requests into handler calls over mini-batches.

    Parameters
    ----------
    handler:
        ``handler(inputs) -> outputs`` where ``outputs`` has one entry per
        input, in order.  Called from the worker thread only, so it needs no
        locking of its own.
    max_batch_size:
        Upper bound on requests per handler call (≥ 1).
    max_wait_seconds:
        How long the worker lingers for stragglers after the first request of
        a batch arrives.  The default of ``0`` dispatches as soon as the queue
        momentarily empties — under concurrent load batches still form
        naturally (requests pile up while the previous batch is in the
        handler), and no request ever waits idle.  A positive linger trades
        latency for bigger batches, which only pays when one handler call is
        expensive relative to the linger (cold decodes, big models).
    metrics_labels:
        When given, the batcher also feeds two process-global histograms
        with these labels: ``serve.batch.size`` (one observation per
        dispatched batch) and ``serve.queue.wait_seconds`` (the *longest*
        submit-to-dispatch wait in each batch — one observation per batch,
        not per request, keeping the hot-path overhead bounded while still
        capturing the tail a latency SLO cares about).
    """

    def __init__(
        self,
        handler: Callable[[list], Sequence],
        *,
        max_batch_size: int = 32,
        max_wait_seconds: float = 0.0,
        metrics_labels: dict | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        self.handler = handler
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.stats = MicroBatcherStats()
        self._batch_size_hist = self._wait_hist = None
        if metrics_labels is not None:
            self._batch_size_hist = obs_metrics.histogram(
                "serve.batch.size", **metrics_labels
            )
            self._wait_hist = obs_metrics.histogram(
                "serve.queue.wait_seconds", **metrics_labels
            )
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._drain_on_close = True
        # Makes "closed-check + put" atomic against close(): without it a
        # submit could slip its request in after the shutdown sentinel and
        # block its caller on a future nobody will ever resolve.
        self._submit_lock = threading.Lock()
        self._worker = threading.Thread(target=self._run, name="repro-microbatcher", daemon=True)
        self._worker.start()

    # -- client side ----------------------------------------------------------

    def submit(self, request) -> Future:
        """Enqueue one request; the future resolves to its handler output."""
        future: Future = Future()
        with self._submit_lock:
            if self._closed:
                raise ServiceClosed("batcher is closed")
            self._queue.put((request, future, time.perf_counter()))
        return future

    def __call__(self, request):
        """Blocking convenience: submit and wait for the result."""
        return self.submit(request).result()

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and join the worker.

        With ``drain=True`` (the default) everything queued before the close
        is still served, in batches, before the worker exits.  With
        ``drain=False`` queued requests are *failed* instead: each pending
        future gets :class:`ServiceClosed`, so blocked callers return
        immediately with an explicit error rather than waiting out a drain
        (or, in the failure modes this guards against, forever).  Either
        way no caller is left hanging, and a second close is a no-op.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            self._queue.put(_SENTINEL)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side ----------------------------------------------------------

    def _run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:  # pragma: no cover - belt and braces
            # The loop is written not to raise, but if it ever does the
            # worker must not die silently: every still-queued caller gets
            # the error instead of blocking forever on an orphaned future.
            self._fail_queued(exc)
            raise

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._drain()
                return
            batch = [item]
            deadline = time.monotonic() + self.max_wait_seconds
            saw_sentinel = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    if remaining > 0:
                        nxt = self._queue.get(timeout=remaining)
                    else:
                        nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _SENTINEL:
                    saw_sentinel = True
                    break
                batch.append(nxt)
            self._dispatch(batch)
            if saw_sentinel:
                self._drain()
                return

    def _drain(self) -> None:
        """Resolve everything queued before shutdown: serve it, or fail it.

        ``close(drain=True)`` serves the backlog in batches;
        ``close(drain=False)`` fails every queued future with
        :class:`ServiceClosed`.  Both end with an empty queue and no caller
        blocked.
        """
        if not self._drain_on_close:
            self._fail_queued(ServiceClosed("batcher closed before the request ran"))
            return
        batch: list = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                continue
            batch.append(item)
            if len(batch) >= self.max_batch_size:
                self._dispatch(batch)
                batch = []
        if batch:
            self._dispatch(batch)

    def _fail_queued(self, exc: BaseException) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SENTINEL:
                continue
            _resolve(item[1], exception=exc)

    def _dispatch(self, batch: list) -> None:
        if self._closed and not self._drain_on_close:
            # A no-drain close is in effect: the queue is FIFO, so requests
            # enqueued before the sentinel would otherwise still be served.
            # Fail them instead — close(drain=False) promises exactly that.
            exc = ServiceClosed("batcher closed before the request ran")
            for _, future, _ in batch:
                _resolve(future, exception=exc)
            return
        inputs = [request for request, _, _ in batch]
        self.stats.requests += len(batch)
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        if self._batch_size_hist is not None:
            self._batch_size_hist.observe(len(batch))
            # The batch's first entry queued earliest, so its wait is the max.
            self._wait_hist.observe(time.perf_counter() - batch[0][2])
        try:
            outputs = self.handler(inputs)
            if len(outputs) != len(batch):
                raise RuntimeError(
                    f"handler returned {len(outputs)} outputs for {len(batch)} requests"
                )
        except BaseException as exc:  # propagate to every blocked caller
            for _, future, _ in batch:
                _resolve(future, exception=exc)
            return
        for (_, future, _), output in zip(batch, outputs):
            _resolve(future, result=output)


def _resolve(future: Future, *, result=None, exception=None) -> None:
    """Resolve a caller's future without ever killing the worker thread.

    A caller may have cancelled its future (the asyncio bridge does on
    deadline), in which case ``set_result``/``set_exception`` raise
    ``InvalidStateError`` — before this guard that exception escaped
    ``_dispatch``, killed the worker, and silently abandoned every queued
    request behind the cancelled one.
    """
    if not future.set_running_or_notify_cancel():
        return  # cancelled by the caller; nobody is waiting on it
    if exception is not None:
        future.set_exception(exception)
    else:
        future.set_result(result)
