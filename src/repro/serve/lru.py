"""A small thread-safe LRU cache shared by the serving layer.

Both serving caches — decoded shard blocks in the feature store and
predictions in the service — are plain count-bounded LRUs accessed from
client threads *and* the micro-batcher worker, so the dict bookkeeping must
be guarded.  The lock covers only the bookkeeping: expensive work (decoding
a block, running the model) happens outside, and a racing miss simply does
the work twice and last-write-wins on the put, which is harmless.

This is deliberately not :class:`~repro.storage.buffer_pool.BufferPool`,
whose budget is *bytes* and whose miss accounting is the point of the
paper's experiments; here the budget is entry count and there is nothing to
simulate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Distinguishes "missing" from a cached falsy value (e.g. prediction 0.0).
_MISSING = object()


class LRUCache:
    """Count-bounded, thread-safe LRU mapping."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                return default
            self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        """Insert/refresh ``key``, evicting the oldest entries past capacity."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data
