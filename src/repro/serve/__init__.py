"""Online serving layer over compressed storage.

Training amortizes decompression and linear algebra over mini-batches; this
package applies the same trick to the *read* side, turning a trained model
plus a shard directory into a high-throughput prediction service:

1. **checkpoint** — versioned save/load for the :mod:`repro.ml` models and a
   :class:`ModelRegistry` resolving pinned and ``"latest"`` versions;
2. **feature store** — point and range row lookups over a
   :class:`~repro.engine.shards.ShardedDataset`, served through the
   byte-budgeted :class:`~repro.storage.buffer_pool.BufferPool` with a
   decoded-block LRU on top (decode-on-demand, never the whole dataset);
3. **micro-batcher** — a queue that coalesces concurrent single-row predict
   requests into mini-batches, so decode and matmul costs are amortized
   exactly as in the MGD training loop;
4. **service** — :class:`PredictionService` tying registry, feature store and
   batcher together with a prediction LRU and latency/throughput counters.
"""

from repro.serve.batcher import MicroBatcher, MicroBatcherStats, ServiceClosed
from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    SUPPORTED_CHECKPOINT_VERSIONS,
    Checkpoint,
    ModelRegistry,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.feature_store import FeatureStore, FeatureStoreStats
from repro.serve.service import PredictionService, ServiceStats

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "SUPPORTED_CHECKPOINT_VERSIONS",
    "Checkpoint",
    "FeatureStore",
    "FeatureStoreStats",
    "MicroBatcher",
    "MicroBatcherStats",
    "ModelRegistry",
    "PredictionService",
    "ServiceClosed",
    "ServiceStats",
    "load_checkpoint",
    "save_checkpoint",
]
