"""Versioned model checkpoints and the model registry.

A checkpoint is one directory holding everything a serving process needs to
rebuild a trained model and find its data:

.. code-block:: text

    v00003/
      checkpoint.json   # format version, model class + constructor config,
                        # compression scheme, dataset metadata, created time
      weights.npz       # the flattened parameter vector

Weights travel through ``model.get_parameters()`` / ``set_parameters()`` —
the same interface the storage arena uses — so every model in
:mod:`repro.ml.models` checkpoints without model-specific code.  The
:class:`ModelRegistry` stacks numbered checkpoint directories under one root
and resolves ``"latest"`` or a pinned version number, which is what lets a
trainer keep publishing new versions while serving stays on a known-good one.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ml.models import (
    FeedForwardNetwork,
    LinearRegressionModel,
    LinearSVMModel,
    LogisticRegressionModel,
)
from repro.ml.multiclass import OneVsRestModel

CHECKPOINT_NAME = "checkpoint.json"
WEIGHTS_NAME = "weights.npz"

#: Format v2 adds the ``"api"`` block (facade metadata written by
#: :meth:`repro.api.Estimator.save`); v1 checkpoints predate it and load with
#: an empty block.
CHECKPOINT_FORMAT_VERSION = 2

#: Checkpoint formats :func:`load_checkpoint` understands.
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

#: Models the checkpoint layer can rebuild, keyed by their ``name`` attribute.
MODEL_CLASSES = {
    cls.name: cls
    for cls in (
        LinearRegressionModel,
        LogisticRegressionModel,
        LinearSVMModel,
        FeedForwardNetwork,
        OneVsRestModel,
    )
}


def _model_config(model) -> dict:
    """Constructor kwargs needed to rebuild ``model`` with the right shape."""
    if isinstance(model, FeedForwardNetwork):
        return {
            "n_features": model.n_features,
            "hidden_sizes": [int(w.shape[1]) for w in model.weights[:-1]],
            "n_classes": model.n_classes,
            "l2": model.l2,
        }
    if isinstance(model, OneVsRestModel):
        return {
            "n_features": model.n_features,
            "base": model.base,
            "n_classes": model.n_classes,
            "l2": model.l2,
        }
    return {"n_features": model.n_features, "l2": model.l2}


def _build_model(model_name: str, config: dict):
    try:
        cls = MODEL_CLASSES[model_name]
    except KeyError:
        raise ValueError(
            f"checkpoint holds unknown model {model_name!r}; known: {sorted(MODEL_CLASSES)}"
        ) from None
    config = dict(config)
    if "hidden_sizes" in config:
        config["hidden_sizes"] = tuple(config["hidden_sizes"])
    return cls(**config)


@dataclass
class Checkpoint:
    """A trained model rebuilt from disk, plus its provenance."""

    model: object
    model_name: str
    scheme_name: str | None
    dataset_meta: dict = field(default_factory=dict)
    created_unix: float = 0.0
    version: int | None = None
    path: Path | None = None
    #: Facade metadata (estimator hyper-parameters, fit provenance); empty
    #: for format-v1 checkpoints, which predate the ``repro.api`` layer.
    api_meta: dict = field(default_factory=dict)
    format_version: int = CHECKPOINT_FORMAT_VERSION

    @property
    def shard_dir(self) -> Path | None:
        """Shard directory recorded at save time, if any."""
        recorded = self.dataset_meta.get("shard_dir")
        return Path(recorded) if recorded else None


def save_checkpoint(
    model,
    directory: Path | str,
    *,
    scheme_name: str | None = None,
    dataset_meta: dict | None = None,
    api_meta: dict | None = None,
) -> Path:
    """Persist ``model`` (weights + rebuild config + provenance) to ``directory``.

    ``api_meta`` is the facade's block (format v2): estimator configuration
    and fit provenance that :meth:`repro.api.Estimator.load` uses to rebuild
    the estimator around the model.
    """
    model_name = getattr(model, "name", None)
    if model_name not in MODEL_CLASSES:
        raise ValueError(
            f"cannot checkpoint {type(model).__name__}: not one of {sorted(MODEL_CLASSES)}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savez(directory / WEIGHTS_NAME, parameters=model.get_parameters())
    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "model": model_name,
        "config": _model_config(model),
        "scheme": scheme_name,
        "dataset": dict(dataset_meta or {}),
        "api": dict(api_meta or {}),
        "created_unix": time.time(),
    }
    (directory / CHECKPOINT_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def load_checkpoint(directory: Path | str) -> Checkpoint:
    """Rebuild a model (and its provenance) from a checkpoint directory."""
    directory = Path(directory)
    manifest_path = directory / CHECKPOINT_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no checkpoint at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        raise ValueError(
            f"unsupported checkpoint format {version!r} "
            f"(expected one of {SUPPORTED_CHECKPOINT_VERSIONS})"
        )
    model = _build_model(manifest["model"], manifest["config"])
    with np.load(directory / WEIGHTS_NAME) as archive:
        model.set_parameters(archive["parameters"])
    return Checkpoint(
        model=model,
        model_name=manifest["model"],
        scheme_name=manifest.get("scheme"),
        dataset_meta=manifest.get("dataset", {}),
        created_unix=float(manifest.get("created_unix", 0.0)),
        path=directory,
        # v1 predates the facade block; an absent key migrates to empty.
        api_meta=manifest.get("api", {}),
        format_version=int(version),
    )


class ModelRegistry:
    """Numbered checkpoint directories under one root, newest wins.

    ``save`` allocates the next version (``v00001``, ``v00002``, ...);
    ``load`` resolves either a pinned version number or ``"latest"``.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def versions(self) -> list[int]:
        """Existing version numbers, ascending."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name.startswith("v") and (entry / CHECKPOINT_NAME).exists():
                try:
                    found.append(int(entry.name[1:]))
                except ValueError:
                    continue
        return sorted(found)

    def latest_version(self) -> int:
        versions = self.versions()
        if not versions:
            raise FileNotFoundError(f"registry {self.root} holds no checkpoints")
        return versions[-1]

    def path_for(self, version: int) -> Path:
        return self.root / f"v{version:05d}"

    def save(
        self,
        model,
        *,
        scheme_name: str | None = None,
        dataset_meta: dict | None = None,
        api_meta: dict | None = None,
    ) -> int:
        """Checkpoint ``model`` as the next version and return its number."""
        versions = self.versions()
        version = (versions[-1] + 1) if versions else 1
        save_checkpoint(
            model,
            self.path_for(version),
            scheme_name=scheme_name,
            dataset_meta=dataset_meta,
            api_meta=api_meta,
        )
        return version

    def load(self, version: int | str = "latest") -> Checkpoint:
        """Load a pinned version number, or the newest with ``"latest"``."""
        if version == "latest":
            resolved = self.latest_version()
        else:
            resolved = int(version)
            if resolved not in self.versions():
                raise FileNotFoundError(
                    f"registry {self.root} has no version {resolved} "
                    f"(available: {self.versions() or 'none'})"
                )
        checkpoint = load_checkpoint(self.path_for(resolved))
        checkpoint.version = resolved
        return checkpoint
