"""The prediction service: registry + feature store + micro-batcher.

One object answers online prediction traffic end to end: row ids are looked
up in the :class:`~repro.serve.feature_store.FeatureStore` (decode-on-demand
through the buffer pool), requests are coalesced by the
:class:`~repro.serve.batcher.MicroBatcher` so the model runs one compressed-
style batch operation per mini-batch instead of per request, and a small
prediction LRU absorbs repeat traffic entirely.  Counters cover the three
levels (cache, batcher, store) so a load test can tell *where* each request
was answered.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.serve.batcher import MicroBatcher
from repro.serve.checkpoint import Checkpoint, ModelRegistry
from repro.serve.feature_store import FeatureStore
from repro.serve.lru import LRUCache


@dataclass
class ServiceStats:
    """Request-level counters for a :class:`PredictionService`."""

    requests: int = 0
    rows_predicted: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    predict_seconds: float = 0.0
    request_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    @property
    def mean_request_seconds(self) -> float:
        return self.request_seconds / self.requests if self.requests else 0.0

    @property
    def predicted_rows_per_second(self) -> float:
        return self.rows_predicted / self.predict_seconds if self.predict_seconds else 0.0


class PredictionService:
    """Serve single-row and bulk predictions from a trained model.

    Parameters
    ----------
    model:
        Any :mod:`repro.ml.models` model (``predict`` over a batch).
    store:
        Feature store resolving row ids; optional — a store-less service
        still answers feature-vector requests.
    max_batch_size / max_wait_seconds:
        Micro-batching knobs (``max_batch_size=1`` disables coalescing).
    cache_size:
        Prediction LRU entries, keyed by row id (0 disables the cache).
    """

    def __init__(
        self,
        model,
        store: FeatureStore | None = None,
        *,
        max_batch_size: int = 32,
        max_wait_seconds: float = 0.0,
        cache_size: int = 0,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.model = model
        self.store = store
        self.cache_size = cache_size
        self.stats = ServiceStats()
        self._cache: LRUCache | None = LRUCache(cache_size) if cache_size else None
        self._lock = threading.Lock()  # guards stats only; the caches self-lock
        self._batcher = MicroBatcher(
            self._handle_batch,
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_seconds,
        )

    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry | Path | str,
        version: int | str = "latest",
        *,
        shard_dir: Path | str | None = None,
        store_kwargs: dict | None = None,
        **kwargs,
    ) -> tuple["PredictionService", Checkpoint]:
        """Build a service from a checkpoint registry (and its shard dir).

        ``shard_dir`` overrides the directory recorded in the checkpoint;
        when neither is available the service runs without a feature store.
        Returns the service and the resolved checkpoint (for provenance).
        """
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        checkpoint = registry.load(version)
        directory = Path(shard_dir) if shard_dir is not None else checkpoint.shard_dir
        store = None
        if directory is not None:
            store = FeatureStore.open(directory, **(store_kwargs or {}))
        return cls(checkpoint.model, store, **kwargs), checkpoint

    # -- batched execution -----------------------------------------------------

    def _handle_batch(self, requests: list) -> list[float]:
        """Worker-side handler: one model invocation for the whole batch."""
        row_ids = [req for kind, req in requests if kind == "id"]
        if row_ids and self.store is None:
            raise RuntimeError("row-id predictions need a feature store")
        matrix = np.empty((len(requests), self._n_features()), dtype=np.float64)
        if row_ids:
            id_positions = [i for i, (kind, _) in enumerate(requests) if kind == "id"]
            matrix[id_positions] = self.store.get_rows(row_ids)
        for i, (kind, req) in enumerate(requests):
            if kind == "vec":
                matrix[i] = req
        start = time.perf_counter()
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        with self._lock:
            self.stats.predict_seconds += time.perf_counter() - start
            self.stats.rows_predicted += len(requests)
        return [float(p) for p in predictions]

    def _n_features(self) -> int:
        n = getattr(self.model, "n_features", None)
        if n:
            return int(n)
        if self.store is not None:
            return self.store.n_cols
        raise RuntimeError("cannot infer the feature width")

    # -- single-row API --------------------------------------------------------

    def predict_id(self, row_id: int) -> float:
        """Predict for one stored row, through cache and micro-batcher."""
        row_id = int(row_id)
        start = time.perf_counter()
        if self._cache is not None:
            value = self._cache.get(row_id)
            with self._lock:
                if value is not None:
                    self.stats.cache_hits += 1
                    self.stats.requests += 1
                    self.stats.request_seconds += time.perf_counter() - start
                    return value
                self.stats.cache_misses += 1
        value = self._batcher.submit(("id", row_id)).result()
        if self._cache is not None:
            self._cache.put(row_id, value)
        with self._lock:
            self.stats.requests += 1
            self.stats.request_seconds += time.perf_counter() - start
        return value

    def predict_vector(self, features: np.ndarray) -> float:
        """Predict for one raw feature vector (uncached, micro-batched)."""
        start = time.perf_counter()
        vector = np.asarray(features, dtype=np.float64).ravel()
        value = self._batcher.submit(("vec", vector)).result()
        with self._lock:
            self.stats.requests += 1
            self.stats.request_seconds += time.perf_counter() - start
        return value

    # -- bulk API --------------------------------------------------------------

    def predict_ids(self, row_ids: Iterable[int]) -> np.ndarray:
        """Bulk path: one store lookup + one model call, no queueing."""
        if self.store is None:
            raise RuntimeError("row-id predictions need a feature store")
        ids = [int(r) for r in row_ids]
        start = time.perf_counter()
        matrix = self.store.get_rows(ids)
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.requests += 1
            self.stats.rows_predicted += len(ids)
            self.stats.predict_seconds += elapsed
            self.stats.request_seconds += elapsed
        return predictions

    def predict_matrix(self, features: np.ndarray) -> np.ndarray:
        """Bulk path over raw features: one model call."""
        matrix = np.asarray(features, dtype=np.float64)
        start = time.perf_counter()
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.requests += 1
            self.stats.rows_predicted += matrix.shape[0]
            self.stats.predict_seconds += elapsed
            self.stats.request_seconds += elapsed
        return predictions

    # -- lifecycle -------------------------------------------------------------

    @property
    def batcher_stats(self):
        return self._batcher.stats

    @property
    def store_stats(self):
        return self.store.stats if self.store is not None else None

    def close(self) -> None:
        self._batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
