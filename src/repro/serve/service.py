"""The prediction service: registry + feature store + micro-batcher.

One object answers online prediction traffic end to end: row ids are looked
up in the :class:`~repro.serve.feature_store.FeatureStore` (decode-on-demand
through the buffer pool), requests are coalesced by the
:class:`~repro.serve.batcher.MicroBatcher` so the model runs one compressed-
style batch operation per mini-batch instead of per request, and a small
prediction LRU absorbs repeat traffic entirely.  Counters cover the three
levels (cache, batcher, store) so a load test can tell *where* each request
was answered.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Iterable
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.serve.batcher import MicroBatcher
from repro.serve.checkpoint import Checkpoint, ModelRegistry
from repro.serve.feature_store import FeatureStore
from repro.serve.lru import LRUCache

#: Distinguishes each service instance's metrics in the process registry
#: (label ``svc=<n>``), so two services never share counters.
_SVC_IDS = itertools.count()


@dataclass(frozen=True)
class ServiceStatsSnapshot:
    """A consistent point-in-time copy of a service's request counters.

    Taken under the service lock (:meth:`ServiceStats.snapshot`), so the
    fields are mutually consistent — ``requests`` counted at the same
    instant as ``request_seconds`` — unlike reading the live attributes
    one by one while the worker keeps writing.
    """

    requests: int = 0
    rows_predicted: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    predict_seconds: float = 0.0
    request_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    @property
    def mean_request_seconds(self) -> float:
        return self.request_seconds / self.requests if self.requests else 0.0

    @property
    def predicted_rows_per_second(self) -> float:
        return self.rows_predicted / self.predict_seconds if self.predict_seconds else 0.0


class ServiceStats:
    """Request-level counters for a :class:`PredictionService`.

    Since the obs migration this is a *view* over ``serve.*`` metrics in the
    process-global registry (labelled per service instance), not standalone
    storage: the same numbers appear in ``repro.obs.metrics_snapshot()`` and
    ``service.metrics()``.  The attribute API (``stats.requests``,
    ``stats.cache_hit_rate``, ...) is unchanged; for multi-field reads use
    :meth:`snapshot`, which copies everything under one lock.

    All metrics share the service's re-entrant lock, so a snapshot can never
    observe a half-applied multi-counter update.
    """

    def __init__(self, lock: threading.RLock, svc: int):
        registry = obs_metrics.default_registry()
        self._lock = lock
        self._requests = registry.counter("serve.requests", lock=lock, svc=svc)
        self._rows = registry.counter("serve.rows_predicted", lock=lock, svc=svc)
        self._cache_hits = registry.counter("serve.cache.hits", lock=lock, svc=svc)
        self._cache_misses = registry.counter("serve.cache.misses", lock=lock, svc=svc)
        self._predict = registry.histogram("serve.predict.seconds", lock=lock, svc=svc)
        self._request = registry.histogram("serve.request.seconds", lock=lock, svc=svc)

    # -- live attribute API (unchanged shape) ----------------------------------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def rows_predicted(self) -> int:
        return self._rows.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    @property
    def predict_seconds(self) -> float:
        return self._predict.sum

    @property
    def request_seconds(self) -> float:
        return self._request.sum

    @property
    def cache_hit_rate(self) -> float:
        return self.snapshot().cache_hit_rate

    @property
    def mean_request_seconds(self) -> float:
        return self.snapshot().mean_request_seconds

    @property
    def predicted_rows_per_second(self) -> float:
        return self.snapshot().predicted_rows_per_second

    def snapshot(self) -> ServiceStatsSnapshot:
        """All counters copied atomically under the service lock."""
        with self._lock:
            return ServiceStatsSnapshot(
                requests=self._requests.value,
                rows_predicted=self._rows.value,
                cache_hits=self._cache_hits.value,
                cache_misses=self._cache_misses.value,
                predict_seconds=self._predict.sum,
                request_seconds=self._request.sum,
            )

    # -- mutators (service-internal; the caller holds the service lock, which
    # is every metric's lock too, so the `_locked` fast paths apply) -----------

    def record_request(self, seconds: float) -> None:
        self._requests.inc_locked()
        self._request.observe_locked(seconds)

    def record_predict(self, rows: int, seconds: float) -> None:
        self._rows.inc_locked(rows)
        self._predict.observe_locked(seconds)

    def record_cache_hit(self) -> None:
        self._cache_hits.inc_locked()

    def record_cache_miss(self) -> None:
        self._cache_misses.inc_locked()


class PredictionService:
    """Serve single-row and bulk predictions from a trained model.

    Parameters
    ----------
    model:
        Any :mod:`repro.ml.models` model (``predict`` over a batch).
    store:
        Feature store resolving row ids; optional — a store-less service
        still answers feature-vector requests.
    max_batch_size / max_wait_seconds:
        Micro-batching knobs (``max_batch_size=1`` disables coalescing).
    cache_size:
        Prediction LRU entries, keyed by row id (0 disables the cache).
    """

    def __init__(
        self,
        model,
        store: FeatureStore | None = None,
        *,
        max_batch_size: int = 32,
        max_wait_seconds: float = 0.0,
        cache_size: int = 0,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.model = model
        self.store = store
        self.cache_size = cache_size
        self._svc_id = next(_SVC_IDS)
        # Serialises generation reopens; the `store` attribute itself is
        # swapped atomically so readers never need this lock.
        self._reopen_lock = threading.Lock()
        # Re-entrant: the metrics share this lock, so a stats mutator called
        # while the service already holds it must be able to re-acquire.
        self._lock = threading.RLock()  # guards stats only; the caches self-lock
        self.stats = ServiceStats(self._lock, self._svc_id)
        self._cache: LRUCache | None = LRUCache(cache_size) if cache_size else None
        self._batcher = MicroBatcher(
            self._handle_batch,
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_seconds,
            metrics_labels={"svc": self._svc_id},
        )

    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry | Path | str,
        version: int | str = "latest",
        *,
        shard_dir: Path | str | None = None,
        store_kwargs: dict | None = None,
        **kwargs,
    ) -> tuple["PredictionService", Checkpoint]:
        """Build a service from a checkpoint registry (and its shard dir).

        ``shard_dir`` overrides the directory recorded in the checkpoint;
        when neither is available the service runs without a feature store.
        Returns the service and the resolved checkpoint (for provenance).
        """
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        checkpoint = registry.load(version)
        directory = Path(shard_dir) if shard_dir is not None else checkpoint.shard_dir
        store = None
        if directory is not None:
            store = FeatureStore.open(directory, **(store_kwargs or {}))
        return cls(checkpoint.model, store, **kwargs), checkpoint

    # -- batched execution -----------------------------------------------------

    def _handle_batch(self, requests: list) -> list[float]:
        """Worker-side handler: one model invocation for the whole batch."""
        row_ids = [req for kind, req in requests if kind == "id"]
        if row_ids and self.store is None:
            raise RuntimeError("row-id predictions need a feature store")
        matrix = np.empty((len(requests), self._n_features()), dtype=np.float64)
        if row_ids:
            id_positions = [i for i, (kind, _) in enumerate(requests) if kind == "id"]
            try:
                rows = self.store.get_rows(row_ids)
            except OSError:
                # A compact/append swapped the manifest and deleted the files
                # this store's lazy loaders still point at.  Shards are
                # immutable between swaps and compaction preserves row order,
                # so re-opening at the new generation and retrying is always
                # correct — in-flight requests survive the swap.
                if not self.reopen_store():
                    raise
                rows = self.store.get_rows(row_ids)
            matrix[id_positions] = rows
        for i, (kind, req) in enumerate(requests):
            if kind == "vec":
                matrix[i] = req
        start = time.perf_counter()
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        with self._lock:
            self.stats.record_predict(len(requests), time.perf_counter() - start)
        return [float(p) for p in predictions]

    def _n_features(self) -> int:
        n = getattr(self.model, "n_features", None)
        if n:
            return int(n)
        if self.store is not None:
            return self.store.n_cols
        raise RuntimeError("cannot infer the feature width")

    # -- single-row API --------------------------------------------------------

    def submit_id(self, row_id: int) -> Future:
        """Non-blocking :meth:`predict_id`: a future for one stored row.

        The prediction cache is probed inline (a hit returns an
        already-resolved future); a miss goes through the micro-batcher and
        resolves from its worker thread.  Stats and the cache fill happen in
        a done-callback, so the caller never blocks — this is the bridge the
        asyncio surface (:class:`repro.cluster.AsyncPredictionService`)
        wraps with ``asyncio.wrap_future``.
        """
        row_id = int(row_id)
        start = time.perf_counter()
        if self._cache is not None:
            value = self._cache.get(row_id)
            with self._lock:
                if value is not None:
                    self.stats.record_cache_hit()
                    self.stats.record_request(time.perf_counter() - start)
                    future: Future = Future()
                    future.set_result(value)
                    return future
                self.stats.record_cache_miss()
        future = self._batcher.submit(("id", row_id))
        future.add_done_callback(
            lambda f: self._finish_submit(f, row_id=row_id, start=start)
        )
        return future

    def submit_vector(self, features: np.ndarray) -> Future:
        """Non-blocking :meth:`predict_vector` (uncached, micro-batched)."""
        start = time.perf_counter()
        vector = np.asarray(features, dtype=np.float64).ravel()
        future = self._batcher.submit(("vec", vector))
        future.add_done_callback(lambda f: self._finish_submit(f, start=start))
        return future

    def _finish_submit(self, future: Future, *, row_id: int | None = None, start: float = 0.0):
        """Done-callback: fill the cache and count the request on success."""
        if future.cancelled() or future.exception() is not None:
            return
        if row_id is not None and self._cache is not None:
            self._cache.put(row_id, future.result())
        with self._lock:
            self.stats.record_request(time.perf_counter() - start)

    def predict_id(self, row_id: int) -> float:
        """Predict for one stored row, through cache and micro-batcher."""
        return self.submit_id(row_id).result()

    def predict_vector(self, features: np.ndarray) -> float:
        """Predict for one raw feature vector (uncached, micro-batched)."""
        return self.submit_vector(features).result()

    # -- bulk API --------------------------------------------------------------

    def predict_ids(self, row_ids: Iterable[int]) -> np.ndarray:
        """Bulk path: one store lookup + one model call, no queueing."""
        if self.store is None:
            raise RuntimeError("row-id predictions need a feature store")
        ids = [int(r) for r in row_ids]
        start = time.perf_counter()
        matrix = self.store.get_rows(ids)
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.record_predict(len(ids), elapsed)
            self.stats.record_request(elapsed)
        return predictions

    def predict_matrix(self, features: np.ndarray) -> np.ndarray:
        """Bulk path over raw features: one model call."""
        matrix = np.asarray(features, dtype=np.float64)
        start = time.perf_counter()
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.record_predict(matrix.shape[0], elapsed)
            self.stats.record_request(elapsed)
        return predictions

    # -- generation watching ---------------------------------------------------

    @property
    def generation(self) -> int | None:
        """The manifest generation the feature store was opened at."""
        store = self.store
        return store.dataset.generation if store is not None else None

    def reopen_store(self) -> bool:
        """Re-open the feature store over the same shard directory.

        Called when the on-disk manifest generation moved past the one this
        service opened (a ``Dataset.compact``/``append`` swap).  The new
        store is built complete, then swapped in with one attribute
        assignment — in-flight requests finish on whichever store they
        started with, which is safe because shard data is immutable between
        swaps (compaction re-encodes bytes, never changes rows).  Returns
        ``False`` for store-less services.  The row/parsed caches start
        cold; the buffer-pool budget resets to the new generation's full
        payload (the open-time default).
        """
        from repro.serve.feature_store import FeatureStore as _FS

        store = self.store
        if store is None:
            return False
        with self._reopen_lock:
            current = self.store
            self.store = _FS.open(
                current.dataset.directory,
                decoded_cache_rows=current.decoded_cache_rows,
                parsed_cache_shards=current.parsed_cache_shards,
            )
        obs_metrics.counter("serve.store.reopens", svc=self._svc_id).inc()
        return True

    def maybe_reopen_store(self) -> bool:
        """Reopen only if the on-disk generation moved; returns whether it did.

        This is the cheap poll a generation watcher calls: one manifest JSON
        read, and nothing else unless the generation actually changed.
        """
        store = self.store
        if store is None:
            return False
        from repro.engine.shards import read_generation

        try:
            current = read_generation(store.dataset.directory)
        except (FileNotFoundError, ValueError):
            return False  # mid-swap or gone; the retry path covers races
        if current == store.dataset.generation:
            return False
        return self.reopen_store()

    # -- lifecycle -------------------------------------------------------------

    def metrics(self) -> dict:
        """This instance's ``serve.*`` metrics as a plain dict.

        Keys are the bare metric names (``serve.requests``,
        ``serve.queue.wait_seconds``, ...) — the per-instance ``svc`` label
        used in the process-global registry is filtered on and stripped.
        """
        with self._lock:
            return obs_metrics.snapshot(
                "serve.", labels={"svc": self._svc_id}, strip_labels=True
            )

    @property
    def batcher_stats(self):
        return self._batcher.stats

    @property
    def store_stats(self):
        return self.store.stats if self.store is not None else None

    def close(self, drain: bool = True) -> None:
        """Shut the micro-batcher down; see :meth:`MicroBatcher.close`.

        ``drain=False`` fails still-queued requests with
        :class:`~repro.serve.batcher.ServiceClosed` instead of serving them.
        """
        self._batcher.close(drain=drain)

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
