"""The prediction service: registry + feature store + micro-batcher.

One object answers online prediction traffic end to end: row ids are looked
up in the :class:`~repro.serve.feature_store.FeatureStore` (decode-on-demand
through the buffer pool), requests are coalesced by the
:class:`~repro.serve.batcher.MicroBatcher` so the model runs one compressed-
style batch operation per mini-batch instead of per request, and a small
prediction LRU absorbs repeat traffic entirely.  Counters cover the three
levels (cache, batcher, store) so a load test can tell *where* each request
was answered.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.serve.batcher import MicroBatcher
from repro.serve.checkpoint import Checkpoint, ModelRegistry
from repro.serve.feature_store import FeatureStore
from repro.serve.lru import LRUCache

#: Distinguishes each service instance's metrics in the process registry
#: (label ``svc=<n>``), so two services never share counters.
_SVC_IDS = itertools.count()


@dataclass(frozen=True)
class ServiceStatsSnapshot:
    """A consistent point-in-time copy of a service's request counters.

    Taken under the service lock (:meth:`ServiceStats.snapshot`), so the
    fields are mutually consistent — ``requests`` counted at the same
    instant as ``request_seconds`` — unlike reading the live attributes
    one by one while the worker keeps writing.
    """

    requests: int = 0
    rows_predicted: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    predict_seconds: float = 0.0
    request_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    @property
    def mean_request_seconds(self) -> float:
        return self.request_seconds / self.requests if self.requests else 0.0

    @property
    def predicted_rows_per_second(self) -> float:
        return self.rows_predicted / self.predict_seconds if self.predict_seconds else 0.0


class ServiceStats:
    """Request-level counters for a :class:`PredictionService`.

    Since the obs migration this is a *view* over ``serve.*`` metrics in the
    process-global registry (labelled per service instance), not standalone
    storage: the same numbers appear in ``repro.obs.metrics_snapshot()`` and
    ``service.metrics()``.  The attribute API (``stats.requests``,
    ``stats.cache_hit_rate``, ...) is unchanged; for multi-field reads use
    :meth:`snapshot`, which copies everything under one lock.

    All metrics share the service's re-entrant lock, so a snapshot can never
    observe a half-applied multi-counter update.
    """

    def __init__(self, lock: threading.RLock, svc: int):
        registry = obs_metrics.default_registry()
        self._lock = lock
        self._requests = registry.counter("serve.requests", lock=lock, svc=svc)
        self._rows = registry.counter("serve.rows_predicted", lock=lock, svc=svc)
        self._cache_hits = registry.counter("serve.cache.hits", lock=lock, svc=svc)
        self._cache_misses = registry.counter("serve.cache.misses", lock=lock, svc=svc)
        self._predict = registry.histogram("serve.predict.seconds", lock=lock, svc=svc)
        self._request = registry.histogram("serve.request.seconds", lock=lock, svc=svc)

    # -- live attribute API (unchanged shape) ----------------------------------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def rows_predicted(self) -> int:
        return self._rows.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    @property
    def predict_seconds(self) -> float:
        return self._predict.sum

    @property
    def request_seconds(self) -> float:
        return self._request.sum

    @property
    def cache_hit_rate(self) -> float:
        return self.snapshot().cache_hit_rate

    @property
    def mean_request_seconds(self) -> float:
        return self.snapshot().mean_request_seconds

    @property
    def predicted_rows_per_second(self) -> float:
        return self.snapshot().predicted_rows_per_second

    def snapshot(self) -> ServiceStatsSnapshot:
        """All counters copied atomically under the service lock."""
        with self._lock:
            return ServiceStatsSnapshot(
                requests=self._requests.value,
                rows_predicted=self._rows.value,
                cache_hits=self._cache_hits.value,
                cache_misses=self._cache_misses.value,
                predict_seconds=self._predict.sum,
                request_seconds=self._request.sum,
            )

    # -- mutators (service-internal; the caller holds the service lock, which
    # is every metric's lock too, so the `_locked` fast paths apply) -----------

    def record_request(self, seconds: float) -> None:
        self._requests.inc_locked()
        self._request.observe_locked(seconds)

    def record_predict(self, rows: int, seconds: float) -> None:
        self._rows.inc_locked(rows)
        self._predict.observe_locked(seconds)

    def record_cache_hit(self) -> None:
        self._cache_hits.inc_locked()

    def record_cache_miss(self) -> None:
        self._cache_misses.inc_locked()


class PredictionService:
    """Serve single-row and bulk predictions from a trained model.

    Parameters
    ----------
    model:
        Any :mod:`repro.ml.models` model (``predict`` over a batch).
    store:
        Feature store resolving row ids; optional — a store-less service
        still answers feature-vector requests.
    max_batch_size / max_wait_seconds:
        Micro-batching knobs (``max_batch_size=1`` disables coalescing).
    cache_size:
        Prediction LRU entries, keyed by row id (0 disables the cache).
    """

    def __init__(
        self,
        model,
        store: FeatureStore | None = None,
        *,
        max_batch_size: int = 32,
        max_wait_seconds: float = 0.0,
        cache_size: int = 0,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.model = model
        self.store = store
        self.cache_size = cache_size
        self._svc_id = next(_SVC_IDS)
        # Re-entrant: the metrics share this lock, so a stats mutator called
        # while the service already holds it must be able to re-acquire.
        self._lock = threading.RLock()  # guards stats only; the caches self-lock
        self.stats = ServiceStats(self._lock, self._svc_id)
        self._cache: LRUCache | None = LRUCache(cache_size) if cache_size else None
        self._batcher = MicroBatcher(
            self._handle_batch,
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_seconds,
            metrics_labels={"svc": self._svc_id},
        )

    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry | Path | str,
        version: int | str = "latest",
        *,
        shard_dir: Path | str | None = None,
        store_kwargs: dict | None = None,
        **kwargs,
    ) -> tuple["PredictionService", Checkpoint]:
        """Build a service from a checkpoint registry (and its shard dir).

        ``shard_dir`` overrides the directory recorded in the checkpoint;
        when neither is available the service runs without a feature store.
        Returns the service and the resolved checkpoint (for provenance).
        """
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        checkpoint = registry.load(version)
        directory = Path(shard_dir) if shard_dir is not None else checkpoint.shard_dir
        store = None
        if directory is not None:
            store = FeatureStore.open(directory, **(store_kwargs or {}))
        return cls(checkpoint.model, store, **kwargs), checkpoint

    # -- batched execution -----------------------------------------------------

    def _handle_batch(self, requests: list) -> list[float]:
        """Worker-side handler: one model invocation for the whole batch."""
        row_ids = [req for kind, req in requests if kind == "id"]
        if row_ids and self.store is None:
            raise RuntimeError("row-id predictions need a feature store")
        matrix = np.empty((len(requests), self._n_features()), dtype=np.float64)
        if row_ids:
            id_positions = [i for i, (kind, _) in enumerate(requests) if kind == "id"]
            matrix[id_positions] = self.store.get_rows(row_ids)
        for i, (kind, req) in enumerate(requests):
            if kind == "vec":
                matrix[i] = req
        start = time.perf_counter()
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        with self._lock:
            self.stats.record_predict(len(requests), time.perf_counter() - start)
        return [float(p) for p in predictions]

    def _n_features(self) -> int:
        n = getattr(self.model, "n_features", None)
        if n:
            return int(n)
        if self.store is not None:
            return self.store.n_cols
        raise RuntimeError("cannot infer the feature width")

    # -- single-row API --------------------------------------------------------

    def predict_id(self, row_id: int) -> float:
        """Predict for one stored row, through cache and micro-batcher."""
        row_id = int(row_id)
        start = time.perf_counter()
        if self._cache is not None:
            value = self._cache.get(row_id)
            with self._lock:
                if value is not None:
                    self.stats.record_cache_hit()
                    self.stats.record_request(time.perf_counter() - start)
                    return value
                self.stats.record_cache_miss()
        value = self._batcher.submit(("id", row_id)).result()
        if self._cache is not None:
            self._cache.put(row_id, value)
        with self._lock:
            self.stats.record_request(time.perf_counter() - start)
        return value

    def predict_vector(self, features: np.ndarray) -> float:
        """Predict for one raw feature vector (uncached, micro-batched)."""
        start = time.perf_counter()
        vector = np.asarray(features, dtype=np.float64).ravel()
        value = self._batcher.submit(("vec", vector)).result()
        with self._lock:
            self.stats.record_request(time.perf_counter() - start)
        return value

    # -- bulk API --------------------------------------------------------------

    def predict_ids(self, row_ids: Iterable[int]) -> np.ndarray:
        """Bulk path: one store lookup + one model call, no queueing."""
        if self.store is None:
            raise RuntimeError("row-id predictions need a feature store")
        ids = [int(r) for r in row_ids]
        start = time.perf_counter()
        matrix = self.store.get_rows(ids)
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.record_predict(len(ids), elapsed)
            self.stats.record_request(elapsed)
        return predictions

    def predict_matrix(self, features: np.ndarray) -> np.ndarray:
        """Bulk path over raw features: one model call."""
        matrix = np.asarray(features, dtype=np.float64)
        start = time.perf_counter()
        predictions = np.asarray(self.model.predict(matrix), dtype=np.float64)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.record_predict(matrix.shape[0], elapsed)
            self.stats.record_request(elapsed)
        return predictions

    # -- lifecycle -------------------------------------------------------------

    def metrics(self) -> dict:
        """This instance's ``serve.*`` metrics as a plain dict.

        Keys are the bare metric names (``serve.requests``,
        ``serve.queue.wait_seconds``, ...) — the per-instance ``svc`` label
        used in the process-global registry is filtered on and stripped.
        """
        with self._lock:
            return obs_metrics.snapshot(
                "serve.", labels={"svc": self._svc_id}, strip_labels=True
            )

    @property
    def batcher_stats(self):
        return self._batcher.stats

    @property
    def store_stats(self):
        return self.store.stats if self.store is not None else None

    def close(self) -> None:
        self._batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
