"""Row-scaling of datasets, as used to build ImageNet1m / Mnist25m etc.

The paper scales real datasets to larger row counts with the technique from
the CLA paper: rows are resampled (with small perturbations applied only to
columns that would not change the compression behaviour).  For synthetic
profiles we simply tile-and-resample rows, which preserves the sparsity and
the repeated-sequence structure the experiments depend on.
"""

from __future__ import annotations

import numpy as np


def scale_rows(matrix: np.ndarray, target_rows: int, seed: int | None = 0) -> np.ndarray:
    """Scale ``matrix`` to ``target_rows`` rows by resampling existing rows."""
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("scale_rows expects a 2-D matrix")
    if target_rows <= 0:
        raise ValueError("target_rows must be positive")
    n_rows = dense.shape[0]
    if target_rows <= n_rows:
        return dense[:target_rows].copy()
    rng = np.random.default_rng(seed)
    extra = rng.integers(0, n_rows, size=target_rows - n_rows)
    return np.vstack([dense, dense[extra]])


def scale_labeled(
    features: np.ndarray, labels: np.ndarray, target_rows: int, seed: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Scale a labelled dataset to ``target_rows`` rows (same resampling)."""
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    if x.shape[0] != y.shape[0]:
        raise ValueError("features and labels must have the same number of rows")
    n_rows = x.shape[0]
    if target_rows <= n_rows:
        return x[:target_rows].copy(), y[:target_rows].copy()
    rng = np.random.default_rng(seed)
    extra = rng.integers(0, n_rows, size=target_rows - n_rows)
    return np.vstack([x, x[extra]]), np.concatenate([y, y[extra]])
