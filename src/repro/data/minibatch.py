"""Mini-batch splitting and shuffle-once sampling (Section 2.1.3 of the paper).

The paper follows the standard shuffle-once discipline: the dataset is
shuffled a single time up front, then partitioned into fixed-size
mini-batches which are compressed once and revisited every epoch.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def iter_minibatch_slices(
    n_rows: int,
    batch_size: int,
    shuffle: bool = True,
    seed: int | None = 0,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield the row-index array of each mini-batch without touching the data.

    This is the index-level half of :func:`split_minibatches`: the shuffle-once
    permutation is generated from ``seed`` and partitioned into ``batch_size``
    slices, letting callers stream batch by batch instead of materialising
    every batch up front.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n_rows)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)
    for start in range(0, n_rows, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.size < batch_size:
            return
        yield idx


def split_minibatches(
    features: np.ndarray,
    labels: np.ndarray | None = None,
    batch_size: int = 250,
    shuffle: bool = True,
    seed: int | None = 0,
    drop_last: bool = False,
) -> list[tuple[np.ndarray, np.ndarray | None]]:
    """Shuffle once and split into mini-batches of ``batch_size`` rows.

    Returns a list of ``(batch_features, batch_labels)`` tuples; the label
    element is ``None`` when no labels were supplied.  The final partial
    batch is kept unless ``drop_last`` is set.
    """
    x = np.asarray(features, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    y = None if labels is None else np.asarray(labels)
    if y is not None and y.shape[0] != x.shape[0]:
        raise ValueError("features and labels must have the same number of rows")

    batches: list[tuple[np.ndarray, np.ndarray | None]] = []
    if x.shape[0] == 0:
        return batches
    for idx in iter_minibatch_slices(
        x.shape[0], batch_size, shuffle=shuffle, seed=seed, drop_last=drop_last
    ):
        batch_x = x[idx]
        batch_y = None if y is None else y[idx]
        batches.append((batch_x, batch_y))
    return batches


class MiniBatchIterator:
    """Epoch-level iterator over pre-split (optionally compressed) mini-batches.

    The iterator is intentionally dumb: batches are materialised once (the
    shuffle-once discipline) and every epoch replays them in the same order,
    which is what the paper's MGD loop does.
    """

    def __init__(self, batches: list):
        if not batches:
            raise ValueError("MiniBatchIterator needs at least one mini-batch")
        self._batches = list(batches)

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator:
        return iter(self._batches)

    def __getitem__(self, index: int):
        return self._batches[index]
