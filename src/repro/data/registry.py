"""Named dataset profiles mirroring Table 5 of the paper.

Each profile records the real dataset's dimensionality and sparsity plus the
repetition / value-cardinality knobs that give the synthetic stand-in the
same *compression behaviour class*:

* Census, ImageNet, Mnist, Kdd99 — moderate sparsity, quantised values,
  substantial cross-row sequence repetition (TOC's sweet spot);
* Rcv1 — extremely sparse, values rarely repeat in sequence (CSR territory);
* Deep1Billion — fully dense, high-cardinality values (nothing compresses).

Column counts are kept at the paper's values where that is tractable
(Census 68, Kdd 42, Deep1B 96, ImageNet 900, Mnist 784) and reduced for
Rcv1 (47k → 4k) so the experiments run in seconds; the sparsity is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticConfig, make_classification, make_synthetic_matrix


@dataclass(frozen=True)
class DatasetProfile:
    """A named dataset profile (synthetic stand-in for a Table 5 dataset)."""

    name: str
    config: SyntheticConfig
    n_classes: int = 2
    description: str = ""

    def matrix(self, n_rows: int, seed: int | None = 0) -> np.ndarray:
        """Generate an unlabeled feature matrix with ``n_rows`` rows."""
        return make_synthetic_matrix(n_rows, self.config, seed=seed)

    def classification(self, n_rows: int, seed: int | None = 0):
        """Generate ``(features, labels)`` with ``n_rows`` rows."""
        return make_classification(n_rows, self.config, n_classes=self.n_classes, seed=seed)


DATASET_PROFILES: dict[str, DatasetProfile] = {
    "census": DatasetProfile(
        name="census",
        config=SyntheticConfig(
            n_cols=68,
            sparsity=0.43,
            n_distinct_values=12,
            template_fraction=0.92,
            n_templates=6,
            segment_length=10,
        ),
        description="US Census-like: 68 categorical-ish columns, sparsity 0.43, few distinct values",
    ),
    "imagenet": DatasetProfile(
        name="imagenet",
        config=SyntheticConfig(
            n_cols=900,
            sparsity=0.31,
            n_distinct_values=40,
            template_fraction=0.85,
            n_templates=10,
            segment_length=12,
        ),
        description="ImageNet-feature-like: 900 columns, sparsity 0.31, moderate repetition",
    ),
    "mnist": DatasetProfile(
        name="mnist",
        config=SyntheticConfig(
            n_cols=784,
            sparsity=0.25,
            n_distinct_values=255,
            template_fraction=0.55,
            n_templates=24,
            segment_length=8,
        ),
        n_classes=10,
        description="Mnist8m-like: 784 pixel columns, sparsity 0.25, larger value domain, less repetition",
    ),
    "kdd99": DatasetProfile(
        name="kdd99",
        config=SyntheticConfig(
            n_cols=42,
            sparsity=0.39,
            n_distinct_values=8,
            template_fraction=0.97,
            n_templates=4,
            segment_length=14,
        ),
        description="Kdd99-like: 42 columns, sparsity 0.39, heavily repeated value sequences",
    ),
    "rcv1": DatasetProfile(
        name="rcv1",
        config=SyntheticConfig(
            n_cols=4000,
            sparsity=0.0016,
            n_distinct_values=20000,
            template_fraction=0.0,
            n_templates=1,
            segment_length=8,
        ),
        description="Rcv1-like: extremely sparse text features, essentially no repeated sequences",
    ),
    "deep1b": DatasetProfile(
        name="deep1b",
        config=SyntheticConfig(
            n_cols=96,
            sparsity=1.0,
            n_distinct_values=100000,
            template_fraction=0.0,
            n_templates=1,
            segment_length=8,
        ),
        description="Deep1Billion-like: fully dense float descriptors, no repetition",
    ),
}


def generate_dataset(name: str, n_rows: int, seed: int | None = 0) -> np.ndarray:
    """Generate the feature matrix of the named profile."""
    try:
        profile = DATASET_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset profile {name!r}; available: {sorted(DATASET_PROFILES)}"
        ) from None
    return profile.matrix(n_rows, seed=seed)
