"""Synthetic matrix generators mimicking the paper's dataset profiles.

TOC's compression ratio is driven by two properties of the underlying data:

1. **sparsity** — sparse encoding drops zero cells;
2. **repeated column-index:value subsequences across rows** — logical
   encoding folds them into shared prefix-tree nodes.

The generator therefore builds each row from *column segments*: the columns
are divided into contiguous segments and every segment has a small pool of
value-tuple variants.  A row picks one variant per segment (with probability
``template_fraction``) or draws that segment independently.  Repeating the
same variants across rows creates exactly the repeated column-index:value
sequences that logical encoding exploits, while keeping whole rows distinct
(no two rows need be identical, as in the real datasets).  Sparsity and the
value-domain cardinality are separate knobs.  Each of the paper's six
datasets maps to one configuration (see :mod:`repro.data.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Value domains at least this large are treated as continuous (no rounding),
#: mirroring datasets like Deep1Billion whose float features never repeat.
_CONTINUOUS_DOMAIN = 10_000


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs controlling the generated matrix.

    Attributes
    ----------
    n_cols:
        Number of feature columns.
    sparsity:
        Fraction of *non-zero* cells (the paper's definition:
        ``# non-zero / # total``).
    n_distinct_values:
        Cardinality of the value domain non-zero cells are drawn from
        (quantised features compress much better; Census/Kdd are heavily
        quantised, Deep1Billion is not).
    template_fraction:
        Probability that a row's segment is copied from the segment's variant
        pool rather than drawn independently.  This is the knob that creates
        cross-row repeated sequences; 0 means every cell is independent.
    n_templates:
        Number of variants in each segment's pool (smaller = more repetition).
    segment_length:
        Number of columns per segment.
    """

    n_cols: int
    sparsity: float
    n_distinct_values: int
    template_fraction: float
    n_templates: int = 8
    segment_length: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError("sparsity must be within [0, 1]")
        if not 0.0 <= self.template_fraction <= 1.0:
            raise ValueError("template_fraction must be within [0, 1]")
        if self.n_cols <= 0 or self.n_distinct_values <= 0 or self.n_templates <= 0:
            raise ValueError("n_cols, n_distinct_values and n_templates must be positive")
        if self.segment_length <= 0:
            raise ValueError("segment_length must be positive")


def _value_pool(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """A pool of distinct non-zero values.

    Small domains are rounded so duplicates are exact (quantised features);
    large domains stay continuous so values essentially never repeat.
    """
    pool = rng.uniform(0.1, 10.0, size=config.n_distinct_values)
    if config.n_distinct_values < _CONTINUOUS_DOMAIN:
        pool = np.round(pool, 3)
    return pool


def _random_cells(
    shape: tuple[int, ...], config: SyntheticConfig, values: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Cells drawn independently with the configured sparsity and value pool."""
    mask = rng.random(shape) < config.sparsity
    cells = values[rng.integers(0, values.size, size=shape)]
    return np.where(mask, cells, 0.0)


def _make_row_block(
    n_rows: int, config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    """Generate ``n_rows`` rows following ``config``."""
    n_cols = config.n_cols
    values = _value_pool(config, rng)
    matrix = np.zeros((n_rows, n_cols), dtype=np.float64)

    seg_len = min(config.segment_length, n_cols)
    for start in range(0, n_cols, seg_len):
        end = min(start + seg_len, n_cols)
        width = end - start
        # Pool of repeated variants for this segment.
        pool = _random_cells((config.n_templates, width), config, values, rng)
        chosen = rng.integers(0, config.n_templates, size=n_rows)
        segment = pool[chosen]
        # Rows that do not follow a template get independent cells instead.
        independent_rows = rng.random(n_rows) >= config.template_fraction
        n_independent = int(independent_rows.sum())
        if n_independent:
            segment[independent_rows] = _random_cells(
                (n_independent, width), config, values, rng
            )
        matrix[:, start:end] = segment
    return matrix


def make_synthetic_matrix(
    n_rows: int, config: SyntheticConfig, seed: int | None = None
) -> np.ndarray:
    """Generate an ``n_rows``-by-``config.n_cols`` matrix following ``config``."""
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    rng = np.random.default_rng(seed)
    return _make_row_block(n_rows, config, rng)


def make_classification(
    n_rows: int,
    config: SyntheticConfig,
    n_classes: int = 2,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a feature matrix and (learnable) class labels.

    Labels come from a random linear teacher over the features so the MGD
    experiments actually have signal to fit; ``n_classes > 2`` produces
    integer labels in ``[0, n_classes)`` via an argmax over random teachers.
    """
    rng = np.random.default_rng(seed)
    features = _make_row_block(n_rows, config, rng)
    if n_classes < 2:
        raise ValueError("n_classes must be at least 2")
    if n_classes == 2:
        teacher = rng.normal(size=config.n_cols)
        scores = features @ teacher
        labels = (scores > np.median(scores)).astype(np.float64)
    else:
        teachers = rng.normal(size=(config.n_cols, n_classes))
        labels = np.argmax(features @ teachers, axis=1).astype(np.float64)
    return features, labels


def make_regression(
    n_rows: int,
    config: SyntheticConfig,
    noise: float = 0.1,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a feature matrix and continuous targets from a linear teacher."""
    rng = np.random.default_rng(seed)
    features = _make_row_block(n_rows, config, rng)
    teacher = rng.normal(size=config.n_cols)
    targets = features @ teacher + noise * rng.normal(size=n_rows)
    return features, targets


def measured_sparsity(matrix: np.ndarray) -> float:
    """Fraction of non-zero cells, the paper's sparsity definition."""
    dense = np.asarray(matrix)
    return float(np.count_nonzero(dense) / dense.size)
