"""Dataset substrate: synthetic generators, mini-batching, scaling.

The paper evaluates on six real datasets (US Census, ImageNet features,
Mnist8m, Kdd99, Rcv1, Deep1Billion).  Those datasets are not shipped here;
instead :mod:`repro.data.synthetic` generates matrices whose statistical
shape — dimensionality, sparsity, value-domain cardinality, and the amount
of column-sequence repetition across rows — matches each dataset profile
(see Table 5 of the paper and ``repro.data.registry``).
"""

from repro.data.minibatch import MiniBatchIterator, split_minibatches
from repro.data.registry import DATASET_PROFILES, DatasetProfile, generate_dataset
from repro.data.scaling import scale_rows
from repro.data.synthetic import SyntheticConfig, make_classification, make_synthetic_matrix

__all__ = [
    "DATASET_PROFILES",
    "DatasetProfile",
    "MiniBatchIterator",
    "SyntheticConfig",
    "generate_dataset",
    "make_classification",
    "make_synthetic_matrix",
    "scale_rows",
    "split_minibatches",
]
