"""General-purpose byte compressors (the paper's Gzip and Snappy baselines).

Both compress the serialised DEN bytes of a mini-batch.  Because the format
knows nothing about rows or columns, *every* matrix operation must first
decompress the whole batch — the decompression overhead that Figures 8 and 12
and the end-to-end tables expose.

Substitution note (see DESIGN.md): the real Snappy library is not available
offline, so the "Snappy" role — a fast byte compressor with a lower ratio
than Gzip — is played by zlib level 1, and "Gzip" by zlib level 9 (the same
DEFLATE algorithm gzip uses, minus the file header).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import CompressedMatrix, CompressionScheme
from repro.compression.dense import DenseMatrix

_HEADER_DTYPE = np.dtype("<u8")


class _ByteBlockMatrix(CompressedMatrix):
    """A mini-batch held as an opaque compressed byte block."""

    #: zlib compression level used by the concrete subclass.
    level: int = 6
    supports_direct_ops = False

    def __init__(self, matrix: np.ndarray | None = None, *, _payload: bytes | None = None,
                 _shape: tuple[int, int] | None = None):
        if matrix is not None:
            dense = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
            if dense.ndim != 2:
                raise ValueError("byte-block schemes expect a 2-D matrix")
            super().__init__(dense.shape)
            self._payload = zlib.compress(dense.tobytes(), self.level)
        else:
            if _payload is None or _shape is None:
                raise ValueError("either a matrix or a payload + shape is required")
            super().__init__(_shape)
            self._payload = _payload

    # -- size -----------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return len(self._payload) + 2 * _HEADER_DTYPE.itemsize

    # -- decompression (the expensive step) ------------------------------------

    def decompress(self) -> DenseMatrix:
        """Decompress to a :class:`DenseMatrix` (pays the full inflate cost)."""
        raw = zlib.decompress(self._payload)
        data = np.frombuffer(raw, dtype=np.float64).reshape(self.shape)
        return DenseMatrix(data.copy())

    def to_dense(self) -> np.ndarray:
        return self.decompress().to_dense()

    # -- ops: always decompress first ------------------------------------------

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self.decompress().matvec(vector)

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        return self.decompress().rmatvec(vector)

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        return self.decompress().matmat(matrix)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        return self.decompress().rmatmat(matrix)

    def scale(self, scalar: float):
        return type(self)(self.decompress().to_dense() * float(scalar))

    # -- serialisation ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        header = np.array(self.shape, dtype=_HEADER_DTYPE).tobytes()
        # The payload may be a zero-copy memoryview of an mmap'd shard.
        return header + bytes(self._payload)

    @classmethod
    def from_bytes(cls, raw) -> "_ByteBlockMatrix":
        header_size = 2 * _HEADER_DTYPE.itemsize
        rows, cols = (int(x) for x in np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE))
        return cls(_payload=raw[header_size:], _shape=(rows, cols))


class GzipMatrix(_ByteBlockMatrix):
    """Gzip-style baseline: DEFLATE at maximum compression (zlib level 9)."""

    scheme_name = "Gzip"
    level = 9


class SnappyLikeMatrix(_ByteBlockMatrix):
    """Snappy-style baseline: a fast byte compressor (zlib level 1)."""

    scheme_name = "Snappy"
    level = 1


class GzipScheme(CompressionScheme):
    """Factory for :class:`GzipMatrix`."""

    name = "Gzip"

    def compress(self, matrix: np.ndarray) -> GzipMatrix:
        return GzipMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> GzipMatrix:
        return GzipMatrix.from_bytes(raw)


class SnappyLikeScheme(CompressionScheme):
    """Factory for :class:`SnappyLikeMatrix`."""

    name = "Snappy"

    def compress(self, matrix: np.ndarray) -> SnappyLikeMatrix:
        return SnappyLikeMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> SnappyLikeMatrix:
        return SnappyLikeMatrix.from_bytes(raw)
