"""Registry mapping scheme names to factories.

The benchmark harness, the examples, and the storage layer all look up
schemes by the names the paper uses in its tables and figures:
``DEN``, ``CSR``, ``CVI``, ``DVI``, ``CLA``, ``Snappy``, ``Gzip``, ``TOC``,
plus the ablation variants ``TOC_SPARSE`` and ``TOC_SPARSE_AND_LOGICAL``.
"""

from __future__ import annotations

from repro.compression.base import CompressionScheme
from repro.compression.byteblock import GzipScheme, SnappyLikeScheme
from repro.compression.cla import CLAScheme
from repro.compression.csr import CSRScheme
from repro.compression.cvi import CVIScheme
from repro.compression.dense import DenseScheme
from repro.compression.dvi import DVIScheme
from repro.compression.toc_scheme import TOCScheme
from repro.core.toc import TOCVariant

_FACTORIES: dict[str, type | object] = {
    "DEN": DenseScheme,
    "CSR": CSRScheme,
    "CVI": CVIScheme,
    "DVI": DVIScheme,
    "CLA": CLAScheme,
    "Snappy": SnappyLikeScheme,
    "Gzip": GzipScheme,
}


def available_schemes(include_ablations: bool = False) -> list[str]:
    """Names of all registered schemes, in the order the paper's figures use."""
    names = ["DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC"]
    if include_ablations:
        names += ["TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL"]
    return names


def get_scheme(name: str) -> CompressionScheme:
    """Instantiate a compression scheme by its paper name.

    Raises ``KeyError`` with the list of valid names on an unknown scheme.
    """
    if name == "TOC" or name == "TOC_FULL":
        return TOCScheme(TOCVariant.FULL)
    if name == "TOC_SPARSE":
        return TOCScheme(TOCVariant.SPARSE)
    if name == "TOC_SPARSE_AND_LOGICAL":
        return TOCScheme(TOCVariant.SPARSE_AND_LOGICAL)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown compression scheme {name!r}; valid names: "
            f"{available_schemes(include_ablations=True)}"
        ) from None
    return factory()
