"""CSR — compressed sparse row, the standard sparse baseline.

Only the non-zero values and their column indexes are stored, per row,
using 4-byte column indexes / row offsets and 8-byte values (the storage
layout the paper's C++ implementation uses).  Matrix operations run directly
on the compressed representation via SciPy's CSR kernels.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.compression.base import CompressedMatrix, CompressionScheme

_HEADER_DTYPE = np.dtype("<u8")


class CSRMatrix(CompressedMatrix):
    """A mini-batch stored in compressed sparse row format."""

    scheme_name = "CSR"
    supports_direct_ops = True

    def __init__(self, matrix: np.ndarray | sp.csr_matrix):
        if sp.issparse(matrix):
            csr = matrix.tocsr().astype(np.float64)
        else:
            csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
        csr.eliminate_zeros()
        super().__init__(csr.shape)
        self._csr = csr

    @property
    def nbytes(self) -> int:
        # 4-byte column indexes and row offsets, 8-byte values.
        return int(self._csr.indices.size * 4 + self._csr.data.size * 8 + self._csr.indptr.size * 4)

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self._csr @ self._check_matvec_input(vector)

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        return self._check_rmatvec_input(vector) @ self._csr

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        return self._csr @ np.asarray(matrix, dtype=np.float64)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        return np.asarray(matrix, dtype=np.float64) @ self._csr

    def scale(self, scalar: float) -> "CSRMatrix":
        return CSRMatrix(self._csr * float(scalar))

    def to_dense(self) -> np.ndarray:
        return np.asarray(self._csr.todense(), dtype=np.float64)

    def _row_slice_rows(self, index: np.ndarray) -> np.ndarray:
        return np.asarray(self._csr[index].todense(), dtype=np.float64)

    def to_scipy(self) -> sp.csr_matrix:
        """Return the underlying SciPy CSR matrix (no copy)."""
        return self._csr

    def to_bytes(self) -> bytes:
        header = np.array(
            [self.n_rows, self.n_cols, self._csr.nnz], dtype=_HEADER_DTYPE
        ).tobytes()
        return (
            header
            + self._csr.indptr.astype("<u4").tobytes()
            + self._csr.indices.astype("<u4").tobytes()
            + self._csr.data.astype("<f8").tobytes()
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CSRMatrix":
        header_size = 3 * _HEADER_DTYPE.itemsize
        rows, cols, nnz = (
            int(x) for x in np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE)
        )
        offset = header_size
        indptr = np.frombuffer(raw[offset:], dtype="<u4", count=rows + 1).astype(np.int64)
        offset += (rows + 1) * 4
        indices = np.frombuffer(raw[offset:], dtype="<u4", count=nnz).astype(np.int64)
        offset += nnz * 4
        data = np.frombuffer(raw[offset:], dtype="<f8", count=nnz).astype(np.float64)
        csr = sp.csr_matrix((data, indices, indptr), shape=(rows, cols))
        return cls(csr)


class CSRScheme(CompressionScheme):
    """Factory for :class:`CSRMatrix`."""

    name = "CSR"

    def compress(self, matrix: np.ndarray) -> CSRMatrix:
        return CSRMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> CSRMatrix:
        return CSRMatrix.from_bytes(raw)
