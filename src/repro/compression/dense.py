"""DEN — the dense baseline format.

Row-major IEEE-754 doubles, the uncompressed reference against which every
compression ratio in the paper is computed.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedMatrix, CompressionScheme

_HEADER_DTYPE = np.dtype("<u8")


class DenseMatrix(CompressedMatrix):
    """A mini-batch stored as a plain dense float64 matrix."""

    scheme_name = "DEN"
    supports_direct_ops = True

    def __init__(self, matrix: np.ndarray):
        dense = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
        if dense.ndim != 2:
            raise ValueError("DenseMatrix expects a 2-D matrix")
        super().__init__(dense.shape)
        self._data = dense

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self._data @ self._check_matvec_input(vector)

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        return self._check_rmatvec_input(vector) @ self._data

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        return self._data @ np.asarray(matrix, dtype=np.float64)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        return np.asarray(matrix, dtype=np.float64) @ self._data

    def scale(self, scalar: float) -> "DenseMatrix":
        return DenseMatrix(self._data * float(scalar))

    def to_dense(self) -> np.ndarray:
        return self._data.copy()

    def _row_slice_rows(self, index: np.ndarray) -> np.ndarray:
        return self._data[index].copy()

    def to_bytes(self) -> bytes:
        header = np.array(self.shape, dtype=_HEADER_DTYPE).tobytes()
        return header + self._data.tobytes()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DenseMatrix":
        header_size = 2 * _HEADER_DTYPE.itemsize
        rows, cols = (int(x) for x in np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE))
        data = np.frombuffer(raw[header_size:], dtype=np.float64, count=rows * cols)
        return cls(data.reshape(rows, cols).copy())


class DenseScheme(CompressionScheme):
    """Factory for :class:`DenseMatrix`."""

    name = "DEN"

    def compress(self, matrix: np.ndarray) -> DenseMatrix:
        return DenseMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> DenseMatrix:
        return DenseMatrix.from_bytes(raw)
