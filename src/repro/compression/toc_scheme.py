"""Adapter exposing :class:`repro.core.TOCMatrix` through the common interface.

This is the glue between the paper's contribution (the ``repro.core``
package) and the scheme-agnostic training / benchmarking stack.  The adapter
also exposes the ablation variants (sparse only, sparse+logical, full) so the
Figure 6 / Figure 10 experiments can swap them in transparently.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedMatrix, CompressionScheme
from repro.core.toc import TOCMatrix, TOCVariant


class TOCCompressedMatrix(CompressedMatrix):
    """A mini-batch compressed with tuple-oriented compression."""

    scheme_name = "TOC"
    supports_direct_ops = True

    def __init__(self, toc: TOCMatrix):
        super().__init__(toc.shape)
        self._toc = toc

    @classmethod
    def compress(cls, matrix: np.ndarray, variant: TOCVariant = TOCVariant.FULL) -> "TOCCompressedMatrix":
        return cls(TOCMatrix.encode(matrix, variant=variant))

    @property
    def toc(self) -> TOCMatrix:
        """The underlying :class:`TOCMatrix`."""
        return self._toc

    @property
    def nbytes(self) -> int:
        return self._toc.nbytes

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self._toc.matvec(self._check_matvec_input(vector))

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        return self._toc.rmatvec(self._check_rmatvec_input(vector))

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        return self._toc.matmat(matrix)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        return self._toc.rmatmat(matrix)

    def scale(self, scalar: float) -> "TOCCompressedMatrix":
        return TOCCompressedMatrix(self._toc.scale(scalar))

    def to_dense(self) -> np.ndarray:
        return self._toc.to_dense()

    def _row_slice_rows(self, index: np.ndarray) -> np.ndarray:
        # Direct decode of just the selected rows' code runs — replaces the
        # generic selection-matrix rmatmat, which costs O(rows × n_rows).
        return self._toc.row_slice(index)

    def to_bytes(self) -> bytes:
        return self._toc.to_bytes()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TOCCompressedMatrix":
        return cls(TOCMatrix.from_bytes(raw))


class TOCScheme(CompressionScheme):
    """Factory for TOC-compressed mini-batches (optionally an ablation variant)."""

    def __init__(self, variant: TOCVariant = TOCVariant.FULL):
        self.variant = variant
        if variant is TOCVariant.FULL:
            self.name = "TOC"
        elif variant is TOCVariant.SPARSE_AND_LOGICAL:
            self.name = "TOC_SPARSE_AND_LOGICAL"
        else:
            self.name = "TOC_SPARSE"

    def compress(self, matrix: np.ndarray) -> TOCCompressedMatrix:
        return TOCCompressedMatrix.compress(matrix, variant=self.variant)

    def decompress_bytes(self, raw: bytes) -> TOCCompressedMatrix:
        return TOCCompressedMatrix.from_bytes(raw)
