"""DVI — dense layout with value indexing.

Every cell of the dense matrix (zeros included) is replaced by a bit-packed
index into the dictionary of distinct values.  DVI keeps the dense row-major
structure, so operations stream through the codes; it shines when the value
domain is tiny (e.g. heavily quantised features) and the matrix is not
sparse enough for CSR to pay off.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.bitpack.value_index import ValueIndex, build_value_index
from repro.compression.base import CompressedMatrix, CompressionScheme

_HEADER_DTYPE = np.dtype("<u8")


class DVIMatrix(CompressedMatrix):
    """Dense matrix with dictionary-encoded cells."""

    scheme_name = "DVI"
    supports_direct_ops = True

    def __init__(self, matrix: np.ndarray):
        dense = np.asarray(matrix, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("DVIMatrix expects a 2-D matrix")
        super().__init__(dense.shape)
        self._values = build_value_index(dense.ravel())

    @property
    def nbytes(self) -> int:
        return int(self._values.nbytes)

    @property
    def n_distinct(self) -> int:
        """Number of distinct cell values (the dictionary size)."""
        return int(self._values.dictionary.size)

    @property
    def value_index(self) -> ValueIndex:
        """The dictionary-encoded cell array (what scans probe directly)."""
        return self._values

    def _codes_matrix(self) -> np.ndarray:
        return self._values.codes.reshape(self.shape)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        v = self._check_matvec_input(vector)
        # Direct execution on codes: for each row, sum dictionary[code] * v[col].
        data = kernels.vi_gather(self._values.dictionary, self._codes_matrix())
        return data @ v

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        v = self._check_rmatvec_input(vector)
        data = kernels.vi_gather(self._values.dictionary, self._codes_matrix())
        return v @ data

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        data = kernels.vi_gather(self._values.dictionary, self._codes_matrix())
        return data @ np.asarray(matrix, dtype=np.float64)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        data = kernels.vi_gather(self._values.dictionary, self._codes_matrix())
        return np.asarray(matrix, dtype=np.float64) @ data

    def scale(self, scalar: float) -> "DVIMatrix":
        scaled = DVIMatrix.__new__(DVIMatrix)
        CompressedMatrix.__init__(scaled, self.shape)
        scaled._values = ValueIndex(
            dictionary=self._values.dictionary * float(scalar), codes=self._values.codes
        )
        return scaled

    def to_dense(self) -> np.ndarray:
        return self._values.decode().reshape(self.shape)

    def _row_slice_rows(self, index: np.ndarray) -> np.ndarray:
        # Decode only the requested rows' codes (the default would build a
        # selection matrix and multiply through a full decode).
        return kernels.vi_gather(self._values.dictionary, self._codes_matrix()[index])

    def to_bytes(self) -> bytes:
        header = np.array(self.shape, dtype=_HEADER_DTYPE).tobytes()
        return header + self._values.to_bytes()

    @classmethod
    def from_bytes(cls, raw) -> "DVIMatrix":
        header_size = 2 * _HEADER_DTYPE.itemsize
        rows, cols = (int(x) for x in np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE))
        values, _ = ValueIndex.from_bytes(raw[header_size:])
        instance = cls.__new__(cls)
        CompressedMatrix.__init__(instance, (rows, cols))
        instance._values = values
        return instance


class DVIScheme(CompressionScheme):
    """Factory for :class:`DVIMatrix`."""

    name = "DVI"

    def compress(self, matrix: np.ndarray) -> DVIMatrix:
        return DVIMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> DVIMatrix:
        return DVIMatrix.from_bytes(raw)
