"""CVI (CSR-VI) — compressed sparse row with value indexing.

The CSR data array is dictionary-encoded: the distinct non-zero values live
in a small dictionary and each stored cell keeps only a bit-packed index into
it.  Matrix operations run directly on the compressed representation by
looking values up through the dictionary.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.bitpack.bitpacking import PackedIntArray, pack_integers
from repro.bitpack.value_index import ValueIndex, build_value_index
from repro.compression.base import CompressedMatrix, CompressionScheme

_HEADER_DTYPE = np.dtype("<u8")


class CVIMatrix(CompressedMatrix):
    """CSR structure with a value-indexed data array."""

    scheme_name = "CVI"
    supports_direct_ops = True

    def __init__(self, matrix: np.ndarray | sp.csr_matrix):
        if sp.issparse(matrix):
            csr = matrix.tocsr().astype(np.float64)
        else:
            csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
        csr.eliminate_zeros()
        super().__init__(csr.shape)
        self._indptr = csr.indptr.astype(np.int64)
        self._indices = csr.indices.astype(np.int64)
        self._values = build_value_index(csr.data)

    @property
    def nbytes(self) -> int:
        packed_cols = pack_integers(self._indices)
        packed_offsets = pack_integers(self._indptr)
        return int(packed_cols.nbytes + packed_offsets.nbytes + self._values.nbytes)

    @property
    def nnz(self) -> int:
        return int(self._indices.size)

    @property
    def value_index(self) -> ValueIndex:
        """The dictionary-encoded data array (what scans probe directly)."""
        return self._values

    @property
    def indptr(self) -> np.ndarray:
        """CSR row offsets into the stored entries."""
        return self._indptr

    @property
    def col_indices(self) -> np.ndarray:
        """Column index of every stored entry."""
        return self._indices

    def _to_scipy(self) -> sp.csr_matrix:
        data = self._values.decode()
        return sp.csr_matrix((data, self._indices, self._indptr), shape=self.shape)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        v = self._check_matvec_input(vector)
        # Direct execution: gather dictionary values per stored cell; the
        # dictionary lookup replaces the dense data array of plain CSR.
        data = kernels.vi_gather(self._values.dictionary, self._values.codes)
        contrib = data * v[self._indices]
        result = np.zeros(self.n_rows, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self._indptr))
        np.add.at(result, row_ids, contrib)
        return result

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        v = self._check_rmatvec_input(vector)
        data = kernels.vi_gather(self._values.dictionary, self._values.codes)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self._indptr))
        contrib = data * v[row_ids]
        result = np.zeros(self.n_cols, dtype=np.float64)
        np.add.at(result, self._indices, contrib)
        return result

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        return self._to_scipy() @ np.asarray(matrix, dtype=np.float64)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        return np.asarray(matrix, dtype=np.float64) @ self._to_scipy()

    def scale(self, scalar: float) -> "CVIMatrix":
        # Sparse-safe: only the dictionary needs rescaling.
        scaled = CVIMatrix.__new__(CVIMatrix)
        CompressedMatrix.__init__(scaled, self.shape)
        scaled._indptr = self._indptr
        scaled._indices = self._indices
        scaled._values = ValueIndex(
            dictionary=self._values.dictionary * float(scalar), codes=self._values.codes
        )
        return scaled

    def to_dense(self) -> np.ndarray:
        return np.asarray(self._to_scipy().todense(), dtype=np.float64)

    def _row_slice_rows(self, index: np.ndarray) -> np.ndarray:
        # Gather only the requested rows' stored entries through the
        # dictionary — never the whole data array, never a selection matmul.
        # One vectorised pass: the entry positions of row r are the range
        # [indptr[r], indptr[r+1]); concatenating those ranges for every
        # requested row gives a flat position array to scatter from.
        out = np.zeros((index.size, self.n_cols), dtype=np.float64)
        starts = self._indptr[index]
        counts = self._indptr[index + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return out
        out_rows = np.repeat(np.arange(index.size), counts)
        range_offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = np.arange(total) - range_offsets[out_rows] + starts[out_rows]
        out[out_rows, self._indices[positions]] = kernels.vi_gather(
            self._values.dictionary, self._values.codes[positions]
        )
        return out

    def to_bytes(self) -> bytes:
        header = np.array(
            [self.n_rows, self.n_cols, self.nnz], dtype=_HEADER_DTYPE
        ).tobytes()
        return (
            header
            + pack_integers(self._indptr).to_bytes()
            + pack_integers(self._indices).to_bytes()
            + self._values.to_bytes()
        )

    @classmethod
    def from_bytes(cls, raw) -> "CVIMatrix":
        header_size = 3 * _HEADER_DTYPE.itemsize
        rows, cols, _nnz = (
            int(x) for x in np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE)
        )
        offset = header_size
        indptr, consumed = PackedIntArray.from_bytes(raw[offset:])
        offset += consumed
        indices, consumed = PackedIntArray.from_bytes(raw[offset:])
        offset += consumed
        values, _ = ValueIndex.from_bytes(raw[offset:])
        instance = cls.__new__(cls)
        CompressedMatrix.__init__(instance, (rows, cols))
        instance._indptr = indptr.unpack()
        instance._indices = indices.unpack()
        instance._values = values
        return instance


class CVIScheme(CompressionScheme):
    """Factory for :class:`CVIMatrix`."""

    name = "CVI"

    def compress(self, matrix: np.ndarray) -> CVIMatrix:
        return CVIMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> CVIMatrix:
        return CVIMatrix.from_bytes(raw)
