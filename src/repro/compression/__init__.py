"""The compression schemes the paper compares against, plus TOC's adapter.

Every scheme implements the :class:`repro.compression.base.CompressedMatrix`
interface so that the MGD training stack and the benchmark harness can swap
schemes freely:

* ``DEN`` — dense row-major doubles (:mod:`repro.compression.dense`),
* ``CSR`` — compressed sparse row (:mod:`repro.compression.csr`),
* ``CVI`` — CSR with value indexing (:mod:`repro.compression.cvi`),
* ``DVI`` — dense with value indexing (:mod:`repro.compression.dvi`),
* ``CLA`` — simplified compressed linear algebra (:mod:`repro.compression.cla`),
* ``Snappy`` / ``Gzip`` — general-purpose byte compressors over the dense
  serialisation (:mod:`repro.compression.byteblock`),
* ``TOC`` — the paper's scheme (:mod:`repro.compression.toc_scheme`).
"""

from repro.compression.base import CompressedMatrix, CompressionScheme
from repro.compression.byteblock import GzipMatrix, SnappyLikeMatrix
from repro.compression.cla import CLAMatrix
from repro.compression.csr import CSRMatrix
from repro.compression.cvi import CVIMatrix
from repro.compression.dense import DenseMatrix
from repro.compression.dvi import DVIMatrix
from repro.compression.registry import available_schemes, get_scheme
from repro.compression.toc_scheme import TOCScheme

__all__ = [
    "CLAMatrix",
    "CSRMatrix",
    "CVIMatrix",
    "CompressedMatrix",
    "CompressionScheme",
    "DVIMatrix",
    "DenseMatrix",
    "GzipMatrix",
    "SnappyLikeMatrix",
    "TOCScheme",
    "available_schemes",
    "get_scheme",
]
