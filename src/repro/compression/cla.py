"""CLA — a simplified re-implementation of Compressed Linear Algebra.

The paper compares TOC against CLA (Elgohary et al., VLDB 2016) as used in
SystemML.  We reproduce the parts of CLA that the comparison exercises:

* columns are partitioned into *co-coding groups* of columns whose value
  tuples repeat together (greedy grouping by distinct-tuple count);
* each group stores an explicit dictionary of its distinct value tuples plus,
  per row, a bit-packed index into that dictionary (the "DDC" dense
  dictionary encoding of CLA); columns that do not compress well are kept as
  an uncompressed column group;
* matrix operations execute directly on the compressed groups by first
  aggregating per dictionary entry, then scanning the (small) dictionary —
  the same pre-aggregation trick CLA uses.

The defining behaviour the paper's argument relies on — the *explicit*
dictionary whose cost is not amortised on small mini-batches — is preserved:
``nbytes`` counts the full dictionaries, so CLA's ratio degrades on 50–250
row batches exactly as in Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack.bitpacking import pack_integers
from repro.compression.base import CompressedMatrix, CompressionScheme

_HEADER_DTYPE = np.dtype("<u8")

#: Groups whose dictionary would exceed this fraction of the rows are kept
#: uncompressed (mirrors CLA's compression-planning ratio estimate).
_MAX_DISTINCT_FRACTION = 0.9

#: Maximum number of columns greedily co-coded into one group.
_MAX_GROUP_COLS = 4


class _ColumnGroup:
    """One co-coded column group with an explicit dictionary (DDC encoding)."""

    def __init__(self, columns: np.ndarray, dictionary: np.ndarray, codes: np.ndarray):
        self.columns = columns          # (g,) original column indexes
        self.dictionary = dictionary    # (d, g) distinct value tuples
        self.codes = codes              # (n,) per-row dictionary index

    @property
    def nbytes(self) -> int:
        return int(
            self.columns.size * 4
            + self.dictionary.nbytes
            + pack_integers(self.codes).nbytes
        )

    def matvec_contribution(self, v: np.ndarray) -> np.ndarray:
        """Contribution of this group to ``A @ v`` (pre-aggregate on the dictionary)."""
        per_entry = self.dictionary @ v[self.columns]
        return per_entry[self.codes]

    def rmatvec_contribution(self, v: np.ndarray, out: np.ndarray) -> None:
        """Add this group's contribution to ``v @ A`` into ``out``."""
        weights = np.bincount(self.codes, weights=v, minlength=self.dictionary.shape[0])
        out[self.columns] += weights @ self.dictionary

    def decode_into(self, dense: np.ndarray) -> None:
        dense[:, self.columns] = self.dictionary[self.codes]


class _UncompressedGroup:
    """Columns kept as plain dense data (CLA's fallback group)."""

    def __init__(self, columns: np.ndarray, data: np.ndarray):
        self.columns = columns
        self.data = data                # (n, g) dense values

    @property
    def nbytes(self) -> int:
        return int(self.columns.size * 4 + self.data.nbytes)

    def matvec_contribution(self, v: np.ndarray) -> np.ndarray:
        return self.data @ v[self.columns]

    def rmatvec_contribution(self, v: np.ndarray, out: np.ndarray) -> None:
        out[self.columns] += v @ self.data

    def decode_into(self, dense: np.ndarray) -> None:
        dense[:, self.columns] = self.data


class CLAMatrix(CompressedMatrix):
    """A mini-batch compressed with (simplified) compressed linear algebra."""

    scheme_name = "CLA"
    supports_direct_ops = True

    def __init__(self, matrix: np.ndarray):
        dense = np.asarray(matrix, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("CLAMatrix expects a 2-D matrix")
        super().__init__(dense.shape)
        self._groups = _plan_groups(dense)
        self._dense_cache: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return int(sum(group.nbytes for group in self._groups))

    @property
    def n_groups(self) -> int:
        """Number of column groups (compressed + uncompressed)."""
        return len(self._groups)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        v = self._check_matvec_input(vector)
        result = np.zeros(self.n_rows, dtype=np.float64)
        for group in self._groups:
            result += group.matvec_contribution(v)
        return result

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        v = self._check_rmatvec_input(vector)
        result = np.zeros(self.n_cols, dtype=np.float64)
        for group in self._groups:
            group.rmatvec_contribution(v, result)
        return result

    def scale(self, scalar: float) -> "CLAMatrix":
        # Sparse-safe: rescale dictionaries / dense groups without re-planning.
        scaled = CLAMatrix.__new__(CLAMatrix)
        CompressedMatrix.__init__(scaled, self.shape)
        scaled._dense_cache = None
        scaled._groups = []
        for group in self._groups:
            if isinstance(group, _ColumnGroup):
                scaled._groups.append(
                    _ColumnGroup(group.columns, group.dictionary * float(scalar), group.codes)
                )
            else:
                scaled._groups.append(
                    _UncompressedGroup(group.columns, group.data * float(scalar))
                )
        return scaled

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        for group in self._groups:
            group.decode_into(dense)
        return dense

    def to_bytes(self) -> bytes:
        # CLA is only used in-memory by the benches; serialise via the dense
        # form (the storage experiments use DEN/CSR/TOC/GC formats).
        header = np.array(self.shape, dtype=_HEADER_DTYPE).tobytes()
        return header + self.to_dense().tobytes()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CLAMatrix":
        header_size = 2 * _HEADER_DTYPE.itemsize
        rows, cols = (int(x) for x in np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE))
        data = np.frombuffer(raw[header_size:], dtype=np.float64, count=rows * cols)
        return cls(data.reshape(rows, cols).copy())


def _distinct_tuple_codes(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (dictionary, codes) for the rows of ``block`` (distinct tuples)."""
    dictionary, codes = np.unique(block, axis=0, return_inverse=True)
    return dictionary, codes.astype(np.int64).ravel()


def _plan_groups(dense: np.ndarray) -> list[_ColumnGroup | _UncompressedGroup]:
    """Greedy co-coding plan: group adjacent compressible columns together."""
    n_rows, n_cols = dense.shape
    max_distinct = max(1, int(n_rows * _MAX_DISTINCT_FRACTION))
    groups: list[_ColumnGroup | _UncompressedGroup] = []
    uncompressed_cols: list[int] = []

    col = 0
    while col < n_cols:
        column = dense[:, col]
        distinct = np.unique(column).size
        if distinct > max_distinct:
            uncompressed_cols.append(col)
            col += 1
            continue
        # Greedily extend the group while the joint dictionary stays small.
        group_cols = [col]
        block = column[:, None]
        dictionary, codes = _distinct_tuple_codes(block)
        nxt = col + 1
        while nxt < n_cols and len(group_cols) < _MAX_GROUP_COLS:
            candidate = np.column_stack([block, dense[:, nxt]])
            cand_dict, cand_codes = _distinct_tuple_codes(candidate)
            if cand_dict.shape[0] > max_distinct:
                break
            block = candidate
            dictionary, codes = cand_dict, cand_codes
            group_cols.append(nxt)
            nxt += 1
        groups.append(
            _ColumnGroup(
                columns=np.asarray(group_cols, dtype=np.int64),
                dictionary=dictionary,
                codes=codes,
            )
        )
        col = nxt

    if uncompressed_cols:
        cols = np.asarray(uncompressed_cols, dtype=np.int64)
        groups.append(_UncompressedGroup(columns=cols, data=dense[:, cols].copy()))
    return groups


class CLAScheme(CompressionScheme):
    """Factory for :class:`CLAMatrix`."""

    name = "CLA"

    def compress(self, matrix: np.ndarray) -> CLAMatrix:
        return CLAMatrix(matrix)

    def decompress_bytes(self, raw: bytes) -> CLAMatrix:
        return CLAMatrix.from_bytes(raw)
