"""Common interface for compressed mini-batch matrices.

The MGD trainer and the benchmark harness only talk to this interface, so
adding a scheme means implementing one class and registering it in
:mod:`repro.compression.registry`.

The interface mirrors how the paper's Section 4 classifies operations:

* ``matvec`` / ``matmat`` — right multiplication (``A @ v``, ``A @ M``),
* ``rmatvec`` / ``rmatmat`` — left multiplication (``v @ A``, ``M @ A``),
* ``scale`` — sparse-safe element-wise scaling,
* ``to_dense`` — full decoding (what the sparse-unsafe ops need).

Schemes that cannot operate directly on compressed data (the general-purpose
byte compressors) implement the operations by decompressing first, which is
exactly the behaviour whose cost the paper's experiments expose.
"""

from __future__ import annotations

import abc

import numpy as np


class CompressedMatrix(abc.ABC):
    """A compressed representation of one dense mini-batch matrix."""

    #: Scheme name used in benchmark tables (e.g. ``"TOC"``, ``"CSR"``).
    scheme_name: str = "?"

    #: Whether matrix operations run directly on the compressed form
    #: (False means every operation pays a full decompression first).
    supports_direct_ops: bool = True

    def __init__(self, shape: tuple[int, int]):
        self._shape = (int(shape[0]), int(shape[1]))

    # -- shape & size --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def n_rows(self) -> int:
        return self._shape[0]

    @property
    def n_cols(self) -> int:
        return self._shape[1]

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Compressed size in bytes (the numerator of compression ratios)."""

    def compression_ratio(self) -> float:
        """Dense (DEN) size divided by this scheme's compressed size."""
        dense_bytes = self.n_rows * self.n_cols * 8
        return dense_bytes / max(self.nbytes, 1)

    # -- matrix operations ---------------------------------------------------

    @abc.abstractmethod
    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """Return ``A @ v``."""

    @abc.abstractmethod
    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        """Return ``v @ A``."""

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        """Return ``A @ M`` (default: column-by-column matvec)."""
        m = np.asarray(matrix, dtype=np.float64)
        return np.column_stack([self.matvec(m[:, j]) for j in range(m.shape[1])])

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        """Return ``M @ A`` (default: row-by-row rmatvec)."""
        m = np.asarray(matrix, dtype=np.float64)
        return np.vstack([self.rmatvec(m[i, :]) for i in range(m.shape[0])])

    @abc.abstractmethod
    def scale(self, scalar: float) -> "CompressedMatrix":
        """Return a compressed representation of ``A * c``."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Fully decode to a dense matrix."""

    def row_slice(self, rows) -> np.ndarray:
        """Dense copy of the selected rows, in request order.

        Validates the indices once, then delegates to :meth:`_row_slice_rows`
        so schemes only override the kernel, not the bounds checking.
        """
        index = np.asarray(rows, dtype=np.intp).ravel()
        if index.size and (index.min() < 0 or index.max() >= self.n_rows):
            raise IndexError(f"row index out of range [0, {self.n_rows})")
        if index.size == 0:
            return np.empty((0, self.n_cols), dtype=np.float64)
        return self._row_slice_rows(index)

    def _row_slice_rows(self, index: np.ndarray) -> np.ndarray:
        """Row-slice kernel for validated, non-empty indices.

        Default: direct-op schemes decode the rows with a selection ``M @ A``
        (one left multiplication on the compressed form, never the whole
        block); byte-block schemes fall back to a full decode.  Schemes with
        a natural row layout (DEN, CSR) override with a cheaper path.
        """
        if self.supports_direct_ops:
            selection = np.zeros((index.size, self.n_rows), dtype=np.float64)
            selection[np.arange(index.size), index] = 1.0
            return self.rmatmat(selection)
        return self.to_dense()[index].copy()

    # -- serialisation --------------------------------------------------------

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Serialise the compressed batch (what the storage layer writes)."""

    # -- helpers --------------------------------------------------------------

    def _check_matvec_input(self, vector: np.ndarray) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float64).ravel()
        if v.size != self.n_cols:
            raise ValueError(f"vector has length {v.size}, expected {self.n_cols}")
        return v

    def _check_rmatvec_input(self, vector: np.ndarray) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float64).ravel()
        if v.size != self.n_rows:
            raise ValueError(f"vector has length {v.size}, expected {self.n_rows}")
        return v


class CompressionScheme(abc.ABC):
    """Factory turning dense mini-batches into :class:`CompressedMatrix`."""

    #: Scheme name used throughout benches and the registry.
    name: str = "?"

    @abc.abstractmethod
    def compress(self, matrix: np.ndarray) -> CompressedMatrix:
        """Compress one dense mini-batch."""

    @abc.abstractmethod
    def decompress_bytes(self, raw: bytes) -> CompressedMatrix:
        """Rebuild a compressed batch from its serialised form."""

    def compressed_size(self, matrix: np.ndarray) -> int:
        """Convenience: compressed size of ``matrix`` in bytes."""
        return self.compress(matrix).nbytes
