"""``repro bench-report``: ingest BENCH files, diff vs history, gate.

This is the CLI/CI entry point over :class:`repro.obs.registry.BenchRegistry`:
each ``BENCH_*.json`` is recorded into the SQLite registry, diffed against
the most recent prior run of the same benchmark on the same platform, and
printed as a delta table.  With ``check=True`` any direction-aware metric
that regresses past the threshold (default 20%) makes the exit code 1, so
CI can fail the build on a real perf drop while first-ever runs (no
baseline yet) always pass.
"""

from __future__ import annotations

import glob
from pathlib import Path

from repro.obs.registry import BenchRegistry, RunDiff

#: Default relative regression threshold (0.2 == 20%).
DEFAULT_THRESHOLD = 0.2

_ARROWS = {1: "↑good", -1: "↓good", 0: ""}


def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def format_diff(diff: RunDiff, threshold: float) -> list[str]:
    """The delta table for one run as printable lines."""
    run = diff.run
    header = f"== {run.name} (run {run.run_id}, {run.platform_key}"
    if run.git_commit:
        header += f", {run.git_commit[:12]}"
    header += ")"
    lines = [header]
    if diff.baseline is None:
        lines.append("   no prior run on this platform — baseline recorded")
        return lines
    base = diff.baseline
    base_commit = f", {base.git_commit[:12]}" if base.git_commit else ""
    lines.append(f"   baseline: run {base.run_id}{base_commit}")
    width = max((len(d.metric) for d in diff.deltas), default=6)
    lines.append(f"   {'metric'.ljust(width)}  {'baseline':>12}  {'current':>12}  {'change':>8}")
    for delta in diff.deltas:
        change = delta.change
        change_text = f"{change:+.1%}" if change is not None else "-"
        flag = ""
        if delta.regressed(threshold):
            flag = "  REGRESSION"
        elif delta.direction:
            flag = f"  [{_ARROWS[delta.direction]}]"
        lines.append(
            f"   {delta.metric.ljust(width)}  {_format_value(delta.baseline):>12}"
            f"  {_format_value(delta.current):>12}  {change_text:>8}{flag}"
        )
    return lines


def bench_report(
    paths: list[str],
    *,
    db: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
    check: bool = False,
    echo=print,
) -> int:
    """Record ``paths`` (files or globs) into ``db`` and print delta tables.

    Returns the process exit code: 0 on success, 1 when ``check`` is set and
    any metric regressed beyond ``threshold``, 2 on usage errors (no files
    matched, unreadable file).
    """
    files: list[Path] = []
    for pattern in paths:
        path = Path(pattern)
        if path.is_file():
            files.append(path)
        else:
            files.extend(Path(p) for p in sorted(glob.glob(pattern)))
    if not files:
        echo(f"bench-report: no BENCH files matched {paths!r}")
        return 2

    exit_code = 0
    with BenchRegistry(db) as registry:
        for path in files:
            try:
                run = registry.record_file(path)
            except (ValueError, OSError) as exc:
                echo(f"bench-report: cannot ingest {path}: {exc}")
                return 2
            diff = registry.diff(run.run_id)
            for line in format_diff(diff, threshold):
                echo(line)
            regressions = diff.regressions(threshold)
            if regressions:
                echo(
                    f"   {len(regressions)} metric(s) regressed beyond "
                    f"{threshold:.0%} in {run.name}"
                )
                if check:
                    exit_code = 1
        total = len(registry.runs())
    echo(f"bench-report: {len(files)} file(s) ingested, {total} run(s) in {db}")
    if check and exit_code:
        echo("bench-report: FAILED regression gate")
    return exit_code


__all__ = ["DEFAULT_THRESHOLD", "bench_report", "format_diff"]
