"""SQLite registry of benchmark runs with direction-aware regression diffs.

``BENCH_*.json`` snapshots are point-in-time: each CI run uploads them and
nothing accumulates.  :class:`BenchRegistry` is the accumulator — every
ingested file becomes a row in ``runs`` (name, timestamp, git commit,
platform fingerprint) with its numeric metrics flattened into ``records``,
and :meth:`BenchRegistry.diff` compares a run against the most recent prior
run of the same benchmark *on the same platform* (grouping by
:func:`platform_key`, derived from the fingerprint
``core/calibration.py`` stamps).

Regression detection is direction-aware by metric name: ``throughput_rps``
going down is a regression, ``epoch_seconds`` going up is one, and metrics
whose direction cannot be inferred (``n_rows``, ``batch_size``) are shown
in the delta table but never fail the gate.  The threshold (default 20%)
rides on top of that, so ordinary run-to-run noise passes while a real 25%
throughput drop exits non-zero in ``repro bench-report --check``.
"""

from __future__ import annotations

import json
import re
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Bump when the table shapes change; checked on open.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT NOT NULL,
    created_unix REAL NOT NULL,
    recorded_unix REAL NOT NULL,
    git_commit TEXT,
    platform_key TEXT NOT NULL,
    platform_json TEXT NOT NULL,
    source_file TEXT,
    schema_version INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_name_platform
    ON runs (name, platform_key, created_unix);
CREATE TABLE IF NOT EXISTS records (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    metric TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (run_id, metric)
);
"""

#: Record fields whose values identify the row rather than measure it; the
#: first ones present (in this order) become the metric-name prefix, so a
#: BENCH_serving row ``{"backend": "microbatch", "throughput_rps": ...}``
#: flattens to ``microbatch.throughput_rps``.
ID_KEYS = ("bench", "backend", "scheme", "workload", "op", "test", "dataset", "name", "label")

#: Name tokens implying "higher is better" / "lower is better".  A metric
#: matching neither direction is reported but can never regress.
_HIGHER_BETTER = {
    "throughput", "rps", "qps", "ratio", "speedup", "rate", "accuracy", "hits",
}
_LOWER_BETTER = {
    "seconds", "second", "ms", "us", "ns", "time", "bytes", "loss", "wall",
    "latency", "error", "misses", "evictions", "overhead",
}


def platform_key(platform: dict | None) -> str:
    """Stable grouping key for "same machine class" from a fingerprint dict.

    Works for both the v3 fingerprint (``core/calibration.py`` shape) and
    the legacy v2 platform dict — both carry system/machine/python.
    """
    platform = platform or {}
    system = platform.get("system") or "unknown"
    machine = platform.get("machine") or "unknown"
    python = platform.get("python") or "0.0"
    major_minor = ".".join(str(python).split(".")[:2])
    return f"{system}-{machine}-py{major_minor}"


def metric_direction(name: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if unknown."""
    tokens = set(re.split(r"[^a-z0-9]+", name.lower()))
    higher = bool(tokens & _HIGHER_BETTER)
    lower = bool(tokens & _LOWER_BETTER)
    if higher == lower:  # neither, or conflicting ("cache_hits_seconds")
        return 0
    return 1 if higher else -1


def flatten_records(records: list[dict]) -> dict[str, float]:
    """Numeric metrics from a BENCH file's record list, keyed uniquely.

    Each record contributes its finite int/float fields (bools excluded),
    prefixed by the record's identity (first :data:`ID_KEYS` fields present,
    else its index).  Colliding names get the record index appended — a
    registry row must never silently swallow a metric.
    """
    out: dict[str, float] = {}
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            continue
        id_parts = [
            str(record[key]) for key in ID_KEYS
            if isinstance(record.get(key), (str, int)) and not isinstance(record.get(key), bool)
        ]
        prefix = ".".join(id_parts) if id_parts else f"record{index}"
        for key, value in record.items():
            if key in ID_KEYS:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value != value or value in (float("inf"), float("-inf")):
                continue
            metric = f"{prefix}.{key}"
            if metric in out:
                metric = f"{prefix}[{index}].{key}"
            out[metric] = float(value)
    return out


@dataclass(frozen=True)
class RunInfo:
    """One registered benchmark run (a row of the ``runs`` table)."""

    run_id: int
    name: str
    created_unix: float
    git_commit: str | None
    platform_key: str
    source_file: str | None


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared between a run and its baseline."""

    metric: str
    baseline: float | None
    current: float | None
    direction: int  # +1 higher-better, -1 lower-better, 0 neutral

    @property
    def change(self) -> float | None:
        """Relative change vs baseline (None when not comparable)."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)

    def regressed(self, threshold: float) -> bool:
        """True when the change moves against ``direction`` past ``threshold``."""
        change = self.change
        if change is None or self.direction == 0:
            return False
        return -change * self.direction > threshold


@dataclass(frozen=True)
class RunDiff:
    """A run diffed against its most recent same-platform baseline."""

    run: RunInfo
    baseline: RunInfo | None
    deltas: list[MetricDelta] = field(default_factory=list)

    def regressions(self, threshold: float) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed(threshold)]


class BenchRegistry:
    """SQLite-backed accumulator of ``BENCH_*.json`` runs."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            raise RuntimeError(
                f"bench registry {self.path} has schema v{row[0]}, "
                f"this build expects v{SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "BenchRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest ----------------------------------------------------------------

    def record_payload(self, payload: dict, source_file: str | None = None) -> RunInfo:
        """Register one parsed BENCH json payload; idempotent per run.

        A run is identified by (name, created_unix, git_commit): re-ingesting
        the same file (CI retries, local reruns) returns the existing row
        instead of polluting the history with duplicates.
        """
        name = payload.get("name")
        if not name:
            raise ValueError("BENCH payload has no 'name'")
        created = float(payload.get("created_unix") or 0.0)
        commit = payload.get("git_commit")
        platform = payload.get("platform") or {}
        # v3 envelopes stamp the key directly; v2 files derive it here.
        key = payload.get("platform_key") or platform_key(platform)
        existing = self._conn.execute(
            "SELECT id, name, created_unix, git_commit, platform_key, source_file"
            " FROM runs WHERE name = ? AND created_unix = ? AND git_commit IS ?",
            (name, created, commit),
        ).fetchone()
        if existing is not None:
            return RunInfo(*existing)
        metrics = flatten_records(payload.get("records") or [])
        cursor = self._conn.execute(
            "INSERT INTO runs (name, created_unix, recorded_unix, git_commit,"
            " platform_key, platform_json, source_file, schema_version)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                name,
                created,
                time.time(),
                commit,
                key,
                json.dumps(platform, sort_keys=True),
                source_file,
                int(payload.get("version") or 0),
            ),
        )
        run_id = cursor.lastrowid
        self._conn.executemany(
            "INSERT INTO records (run_id, metric, value) VALUES (?, ?, ?)",
            [(run_id, metric, value) for metric, value in metrics.items()],
        )
        self._conn.commit()
        return RunInfo(run_id, name, created, commit, key, source_file)

    def record_file(self, path: str | Path) -> RunInfo:
        """Ingest one ``BENCH_*.json`` file (v2 and v3 envelopes accepted)."""
        path = Path(path)
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict):
            raise ValueError(f"{path} is not a BENCH json envelope")
        return self.record_payload(payload, source_file=str(path))

    # -- queries ---------------------------------------------------------------

    def runs(self, name: str | None = None) -> list[RunInfo]:
        """Registered runs, oldest first (optionally one benchmark only)."""
        sql = (
            "SELECT id, name, created_unix, git_commit, platform_key, source_file"
            " FROM runs"
        )
        params: tuple = ()
        if name is not None:
            sql += " WHERE name = ?"
            params = (name,)
        sql += " ORDER BY created_unix, id"
        return [RunInfo(*row) for row in self._conn.execute(sql, params)]

    def metrics_for(self, run_id: int) -> dict[str, float]:
        return {
            metric: value
            for metric, value in self._conn.execute(
                "SELECT metric, value FROM records WHERE run_id = ? ORDER BY metric",
                (run_id,),
            )
        }

    def baseline_for(self, run_id: int) -> RunInfo | None:
        """Most recent earlier run of the same benchmark on the same platform."""
        run = self._conn.execute(
            "SELECT name, platform_key, created_unix, id FROM runs WHERE id = ?",
            (run_id,),
        ).fetchone()
        if run is None:
            raise KeyError(f"no run with id {run_id}")
        name, key, created, _ = run
        row = self._conn.execute(
            "SELECT id, name, created_unix, git_commit, platform_key, source_file"
            " FROM runs WHERE name = ? AND platform_key = ?"
            " AND (created_unix < ? OR (created_unix = ? AND id < ?))"
            " ORDER BY created_unix DESC, id DESC LIMIT 1",
            (name, key, created, created, run_id),
        ).fetchone()
        return RunInfo(*row) if row is not None else None

    def diff(self, run_id: int) -> RunDiff:
        """Compare ``run_id`` against its baseline, metric by metric."""
        rows = self._conn.execute(
            "SELECT id, name, created_unix, git_commit, platform_key, source_file"
            " FROM runs WHERE id = ?",
            (run_id,),
        ).fetchone()
        if rows is None:
            raise KeyError(f"no run with id {run_id}")
        run = RunInfo(*rows)
        baseline = self.baseline_for(run_id)
        current = self.metrics_for(run_id)
        previous = self.metrics_for(baseline.run_id) if baseline else {}
        deltas = [
            MetricDelta(
                metric=metric,
                baseline=previous.get(metric),
                current=current.get(metric),
                direction=metric_direction(metric),
            )
            for metric in sorted(set(current) | set(previous))
        ]
        return RunDiff(run=run, baseline=baseline, deltas=deltas)


__all__ = [
    "ID_KEYS",
    "SCHEMA_VERSION",
    "BenchRegistry",
    "MetricDelta",
    "RunDiff",
    "RunInfo",
    "flatten_records",
    "metric_direction",
    "platform_key",
]
