"""Span tracing into a bounded ring buffer, dumpable as Chrome trace JSON.

Usage at an instrumentation site::

    from repro.obs import span

    with span("engine.encode.batch", shard=i, scheme="TOC"):
        ...  # timed region

Spans record wall time (``time.perf_counter`` deltas against a per-tracer
epoch) and nest: each thread keeps its own span stack, so a span opened
inside another on the same thread carries ``depth`` and ``parent``.  Closed
spans land in a ``deque(maxlen=...)`` ring buffer — old spans fall off, the
tracer never grows without bound, and dumping is always cheap.

Two dump shapes:

* :meth:`Tracer.dump` — a plain list of span dicts (our JSON format);
* :meth:`Tracer.dump_chrome` — the Chrome ``chrome://tracing`` /  Perfetto
  event format (``ph: "X"`` complete events with µs ``ts``/``dur``), which
  ``repro obs dump --format chrome`` writes.

Like metrics, tracing has a global kill switch (:func:`set_enabled`) that
turns ``span(...)`` into a no-op context manager, and a process-global
default tracer the instrumented hot paths feed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

#: Default ring-buffer capacity: plenty for an encode+train+scan run while
#: keeping the worst-case dump a few hundred KB.
DEFAULT_CAPACITY = 4096

_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable span recording."""
    global _ENABLED
    _ENABLED = bool(enabled)


def enabled() -> bool:
    return _ENABLED


class Tracer:
    """Records closed spans into a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._next_id = 0

    # -- recording -------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **labels):
        """Time a region; the span is recorded when the block exits."""
        if not _ENABLED:
            yield
            return
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1] if stack else None
        start = time.perf_counter()
        stack.append(span_id)
        try:
            yield
        finally:
            end = time.perf_counter()
            stack.pop()
            record = {
                "id": span_id,
                "name": name,
                "start_s": start - self._epoch,
                "duration_s": end - start,
                "thread_id": threading.get_ident(),
                "depth": len(stack),
                "parent": parent,
            }
            if labels:
                record["labels"] = {k: _jsonable(v) for k, v in labels.items()}
            with self._lock:
                self._spans.append(record)

    # -- reading ---------------------------------------------------------------

    def spans(self) -> list[dict]:
        """Closed spans, oldest first (copies — safe to mutate)."""
        with self._lock:
            return [dict(record) for record in self._spans]

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
        self._epoch = time.perf_counter()

    # -- dumping ---------------------------------------------------------------

    def dump(self, indent: int | None = None) -> str:
        """The span list as JSON text (our native format)."""
        return json.dumps(self.spans(), indent=indent)

    def dump_chrome(self, indent: int | None = None) -> str:
        """Spans in Chrome ``chrome://tracing`` trace-event JSON.

        Emits ``ph: "X"`` (complete) events with microsecond ``ts``/``dur``;
        loadable directly in chrome://tracing or ui.perfetto.dev.
        """
        pid = os.getpid()
        events = []
        for record in self.spans():
            event = {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": record["start_s"] * 1e6,
                "dur": record["duration_s"] * 1e6,
                "pid": pid,
                "tid": record["thread_id"],
            }
            args = dict(record.get("labels", {}))
            args["depth"] = record["depth"]
            event["args"] = args
            events.append(event)
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=indent
        )


def _jsonable(value):
    """Coerce a label value to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: The process-global tracer the instrumented hot paths feed.
_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    return _DEFAULT


def span(name: str, **labels):
    """Open a span on the process-global tracer (context manager)."""
    return _DEFAULT.span(name, **labels)


def spans() -> list[dict]:
    return _DEFAULT.spans()


def clear() -> None:
    """Drop recorded spans on the process-global tracer (test helper)."""
    _DEFAULT.clear()


__all__ = [
    "DEFAULT_CAPACITY",
    "Tracer",
    "clear",
    "default_tracer",
    "enabled",
    "set_enabled",
    "span",
    "spans",
]
