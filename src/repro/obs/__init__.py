"""``repro.obs``: one observability substrate for live metrics and history.

Three pieces, one import point:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms on a
  process-global registry, fed by the instrumented hot paths (serving,
  buffer pool, encode, trainer, scan, compaction);
* :mod:`repro.obs.trace` — ``with span("engine.encode.batch", shard=i):``
  wall-time spans in a ring buffer, dumpable as Chrome trace JSON;
* :mod:`repro.obs.registry` / :mod:`repro.obs.report` — a SQLite registry
  of ``BENCH_*.json`` runs with direction-aware regression diffs behind
  ``repro bench-report --check``.

``set_enabled(False)`` turns both metrics and spans off in one call — the
serving benchmark uses it to bound instrumentation overhead.
"""

from repro.obs import metrics as metrics
from repro.obs import trace as trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
)
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.registry import (
    BenchRegistry,
    MetricDelta,
    RunDiff,
    RunInfo,
    metric_direction,
    platform_key,
)
from repro.obs.report import DEFAULT_THRESHOLD, bench_report
from repro.obs.trace import Tracer, default_tracer, span, spans


def set_enabled(enabled: bool) -> None:
    """Enable/disable metrics *and* span recording process-wide."""
    metrics.set_enabled(enabled)
    trace.set_enabled(enabled)


def reset() -> None:
    """Zero the default metrics registry and drop recorded spans."""
    metrics.reset()
    trace.clear()


__all__ = [
    "DEFAULT_THRESHOLD",
    "BenchRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "RunDiff",
    "RunInfo",
    "Tracer",
    "bench_report",
    "counter",
    "default_registry",
    "default_tracer",
    "gauge",
    "histogram",
    "metric_direction",
    "metrics",
    "metrics_snapshot",
    "platform_key",
    "reset",
    "set_enabled",
    "span",
    "spans",
    "trace",
]
