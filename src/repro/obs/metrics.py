"""Thread-safe process metrics: counters, gauges, and log-bucket histograms.

One registry serves every subsystem in the process.  Metrics are addressed
by dotted name plus optional labels (``counter("serve.requests", svc=0)``)
and created on first touch, so instrumentation sites never coordinate:

* :class:`Counter` — monotonically increasing totals (requests, hits,
  bytes read);
* :class:`Gauge` — values that go both ways (resident bytes);
* :class:`Histogram` — distributions over fixed log-scale buckets with
  p50/p95/p99 summaries (request latency, batch size, kernel timings).

Every metric locks its own mutations, and a metric can be created with a
*shared* lock so a subsystem that already serialises its updates (the
prediction service holds one lock across a multi-metric update) gets
cross-metric consistency for free: ``snapshot()`` under that lock sees all
of the update or none of it.

:func:`default_registry` returns the process-global registry the
instrumented hot paths feed; :func:`snapshot` dumps it as a plain dict (the
shape ``Dataset.stats(metrics=True)`` and ``service.metrics()`` return).
:func:`set_enabled` turns every mutation into an early-out no-op — the
serving benchmark measures instrumented vs uninstrumented throughput
through exactly this switch.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

#: Fixed log-scale histogram bucket upper bounds: four buckets per decade
#: from 1e-7 to 1e4 (plus an implicit overflow bucket).  Wide enough for
#: microsecond kernel timings and for batch sizes / row counts alike, and
#: *fixed* so histograms from different runs are always mergeable.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0 ** (e / 4.0) for e in range(-28, 17))

#: Module-wide switch; when False every mutation returns before locking.
_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable metric mutations (reads keep working)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def enabled() -> bool:
    return _ENABLED


def _render(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """``("serve.requests", (("svc","0"),))`` -> ``"serve.requests{svc=0}"``."""
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class _Metric:
    """Shared plumbing: identity, label set, and the mutation lock."""

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], lock=None):
        self.name = name
        self.labels = labels
        # A shared (re-entrant) lock lets a caller that already holds it
        # batch multi-metric updates atomically; the default is private.
        self._lock = lock if lock is not None else threading.Lock()

    @property
    def full_name(self) -> str:
        return _render(self.name, self.labels)


class Counter(_Metric):
    """A monotonically increasing total (float increments allowed)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels=(), lock=None):
        super().__init__(name, labels, lock)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    def inc_locked(self, amount: int | float = 1) -> None:
        """``inc`` for callers that already hold this metric's (shared) lock.

        Skips the re-acquisition — the hot serving path batches several
        metric updates under one lock and must not pay per-metric locking.
        """
        if not _ENABLED:
            return
        self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Metric):
    """A value that can go up and down (resident bytes, queue depth)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels=(), lock=None):
        super().__init__(name, labels, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Metric):
    """A distribution over fixed log-scale buckets.

    ``observe`` costs one bisect over the (tuple) bounds plus a few scalar
    updates under the lock — cheap enough for per-request call sites.
    Percentiles are estimated from the bucket counts (geometric interpolation
    inside the winning bucket, clamped to the observed min/max), which is
    exact enough to tell a 2x tail regression apart and never pretends to
    sub-bucket precision.
    """

    __slots__ = ("buckets", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, labels=(), lock=None, buckets=DEFAULT_BUCKETS):
        super().__init__(name, labels, lock)
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_locked(self, value: float) -> None:
        """``observe`` for callers that already hold this metric's lock."""
        if not _ENABLED:
            return
        self._counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0..1) of the distribution."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = fraction * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    break
            else:  # pragma: no cover - rank <= count always breaks
                index = len(self._counts) - 1
            if index == 0:
                low, high = self._min, self.buckets[0]
            elif index >= len(self.buckets):
                low, high = self.buckets[-1], self._max
            else:
                low, high = self.buckets[index - 1], self.buckets[index]
            low = max(low, self._min)
            high = min(high, self._max)
            if low <= 0 or high <= 0:
                return float(high if high > low else low)
            return float(math.sqrt(low * high))  # geometric bucket midpoint

    def summary(self) -> dict:
        """The JSON-ready shape ``snapshot()`` reports for histograms."""
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Get-or-create home for every metric, addressable by name + labels."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], _Metric] = {}

    # -- creation --------------------------------------------------------------

    def _get_or_create(self, cls, name: str, lock, labels: dict, **kwargs):
        if not name:
            raise ValueError("metric name must be non-empty")
        label_items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        key = (name, label_items)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, label_items, lock=lock, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {metric.full_name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, *, lock=None, **labels) -> Counter:
        return self._get_or_create(Counter, name, lock, labels)

    def gauge(self, name: str, *, lock=None, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, lock, labels)

    def histogram(
        self, name: str, *, lock=None, buckets=DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, lock, labels, buckets=buckets)

    # -- reading ---------------------------------------------------------------

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(
        self,
        prefix: str = "",
        *,
        labels: dict | None = None,
        strip_labels: bool = False,
    ) -> dict:
        """Every matching metric as one plain dict (JSON-ready).

        ``prefix`` filters by dotted-name prefix; ``labels`` keeps only
        metrics whose label set contains every given pair (what
        ``service.metrics()`` uses to isolate one instance);
        ``strip_labels`` drops the ``{k=v}`` suffix from the keys — only
        safe when the filter makes names unique again.
        """
        wanted = (
            tuple(sorted((str(k), str(v)) for k, v in labels.items()))
            if labels
            else None
        )
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            if prefix and not metric.name.startswith(prefix):
                continue
            if wanted is not None and not set(wanted) <= set(metric.labels):
                continue
            key = metric.name if strip_labels else metric.full_name
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                out["histograms"][key] = metric.summary()
        return out

    def reset(self) -> None:
        """Zero every metric *in place* (live views keep their references)."""
        for metric in self.metrics():
            metric._reset()


#: The process-global registry every instrumented hot path feeds.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT


def counter(name: str, *, lock=None, **labels) -> Counter:
    return _DEFAULT.counter(name, lock=lock, **labels)


def gauge(name: str, *, lock=None, **labels) -> Gauge:
    return _DEFAULT.gauge(name, lock=lock, **labels)


def histogram(name: str, *, lock=None, **labels) -> Histogram:
    return _DEFAULT.histogram(name, lock=lock, **labels)


def snapshot(prefix: str = "", **kwargs) -> dict:
    """Snapshot of the process-global registry (see ``MetricsRegistry.snapshot``)."""
    return _DEFAULT.snapshot(prefix, **kwargs)


def reset() -> None:
    """Zero the process-global registry (test isolation helper)."""
    _DEFAULT.reset()


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "default_registry",
    "enabled",
    "gauge",
    "histogram",
    "reset",
    "set_enabled",
    "snapshot",
]
