"""Streaming out-of-core training engine.

This package is the end-to-end data path the paper's storage experiments
imply but the seed code never assembled:

1. **encode** — shard a dataset into TOC-compressed mini-batches with a
   multi-worker ``concurrent.futures`` pipeline (:mod:`repro.engine.encode`);
2. **persist** — write one blob file per batch plus a manifest
   (:mod:`repro.engine.shards`), page-layout accounting included;
3. **serve** — register shards as lazy entries in the byte-budgeted
   :class:`~repro.storage.buffer_pool.BufferPool` and stream them with
   read-ahead prefetch (:mod:`repro.engine.prefetch`);
4. **train** — drive the existing MGD optimizer and models over the stream
   (:mod:`repro.engine.trainer`), or hand the shards to a Bismarck session.
"""

from repro.engine.compact import CompactReport, ShardChange, compact_dataset, readvise_shard
from repro.engine.encode import (
    AUTO_SCHEME,
    EncodedBatch,
    encode_batches,
    resolve_executor,
    resolve_workers,
)
from repro.engine.prefetch import prefetch_iter
from repro.engine.shards import ShardedDataset, ShardInfo
from repro.engine.trainer import OOCTrainReport, OutOfCoreTrainer

__all__ = [
    "AUTO_SCHEME",
    "CompactReport",
    "EncodedBatch",
    "OOCTrainReport",
    "OutOfCoreTrainer",
    "ShardChange",
    "ShardInfo",
    "ShardedDataset",
    "compact_dataset",
    "encode_batches",
    "prefetch_iter",
    "readvise_shard",
    "resolve_executor",
    "resolve_workers",
]
