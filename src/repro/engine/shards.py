"""On-disk shard store for compressed mini-batches.

A sharded dataset is a directory holding one blob file per compressed
mini-batch plus a JSON manifest and the label vectors:

.. code-block:: text

    shards/
      manifest.json     # scheme, shard table, encode provenance
      labels.npz        # one label array per batch
      shard-00000.bin   # serialised compressed batch 0
      shard-00001.bin   # ...

Blob files hold exactly what ``CompressedMatrix.to_bytes`` produced, so any
registered scheme round-trips through its own ``decompress_bytes``.  The
store is deliberately dumb — durability and layout live here, while caching
policy stays in :class:`repro.storage.buffer_pool.BufferPool`, which shards
attach to as lazy :class:`~repro.storage.buffer_pool.DiskBlob` entries.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engine.encode import EncodedBatch, encode_batches, resolve_executor, resolve_workers
from repro.storage.buffer_pool import BufferPool
from repro.storage.pages import stored_bytes
from repro.storage.table import BlobTable

MANIFEST_NAME = "manifest.json"
LABELS_NAME = "labels.npz"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardInfo:
    """Manifest row describing one shard file."""

    batch_id: int
    filename: str
    nbytes: int
    n_rows: int
    n_cols: int


class ShardedDataset:
    """A directory of compressed mini-batch shards plus manifest and labels."""

    def __init__(
        self,
        directory: Path,
        scheme_name: str,
        shards: list[ShardInfo],
        labels: dict[int, np.ndarray],
        encode_seconds: float = 0.0,
    ):
        self.directory = Path(directory)
        self.scheme_name = scheme_name
        self.shards = list(shards)
        self._labels = labels
        self.encode_seconds = encode_seconds

    # -- creation -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Path | str,
        batches: list[tuple[np.ndarray, np.ndarray]],
        scheme_name: str = "TOC",
        *,
        workers: int | None = None,
        executor: str = "auto",
    ) -> "ShardedDataset":
        """Encode ``(features, labels)`` batches in parallel and persist them."""
        if not batches:
            raise ValueError("at least one mini-batch is required")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        start = time.perf_counter()
        encoded = encode_batches(
            [features for features, _ in batches],
            scheme_name,
            workers=workers,
            executor=executor,
        )
        encode_seconds = time.perf_counter() - start

        shards: list[ShardInfo] = []
        labels: dict[int, np.ndarray] = {}
        label_arrays: dict[str, np.ndarray] = {}
        for enc, (_, batch_labels) in zip(encoded, batches):
            info = cls._write_shard(directory, enc)
            shards.append(info)
            labels[enc.batch_id] = np.asarray(batch_labels)
            label_arrays[f"y{enc.batch_id:05d}"] = labels[enc.batch_id]

        np.savez(directory / LABELS_NAME, **label_arrays)
        manifest = {
            "format_version": FORMAT_VERSION,
            "scheme": scheme_name,
            "encode_seconds": encode_seconds,
            # Provenance: the executor actually used, not the requested kind
            # ("auto" resolves differently per machine).
            "encode_executor": resolve_executor(executor, resolve_workers(workers)),
            "shards": [vars(s) for s in shards],
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return cls(directory, scheme_name, shards, labels, encode_seconds)

    @staticmethod
    def _write_shard(directory: Path, enc: EncodedBatch) -> ShardInfo:
        filename = f"shard-{enc.batch_id:05d}.bin"
        (directory / filename).write_bytes(enc.payload)
        return ShardInfo(
            batch_id=enc.batch_id,
            filename=filename,
            nbytes=enc.nbytes,
            n_rows=enc.n_rows,
            n_cols=enc.n_cols,
        )

    @classmethod
    def open(cls, directory: Path | str) -> "ShardedDataset":
        """Load an existing shard directory from its manifest."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no shard manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard format {manifest.get('format_version')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        shards = [ShardInfo(**row) for row in manifest["shards"]]
        with np.load(directory / LABELS_NAME) as archive:
            labels = {s.batch_id: archive[f"y{s.batch_id:05d}"] for s in shards}
        return cls(
            directory,
            manifest["scheme"],
            shards,
            labels,
            encode_seconds=float(manifest.get("encode_seconds", 0.0)),
        )

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.shards)

    def read_payload(self, batch_id: int) -> bytes:
        """Read one shard's bytes straight from disk (no caching)."""
        return (self.directory / self.shards[batch_id].filename).read_bytes()

    def labels_for(self, batch_id: int) -> np.ndarray:
        return self._labels[batch_id]

    def attach(self, pool: BufferPool) -> None:
        """Register every shard in ``pool`` as a lazy on-disk blob."""
        for shard in self.shards:
            path = self.directory / shard.filename
            pool.put_on_disk(shard.batch_id, size=shard.nbytes, loader=path.read_bytes)

    def as_blob_table(self, pool: BufferPool, scheme) -> BlobTable:
        """Expose the shards as a Bismarck-style blob table over ``pool``."""
        table = BlobTable(scheme, pool)
        for shard in self.shards:
            path = self.directory / shard.filename
            table.add_encoded(
                shard.batch_id,
                self._labels[shard.batch_id],
                size=shard.nbytes,
                loader=path.read_bytes,
            )
        return table

    # -- statistics -------------------------------------------------------------

    @property
    def n_examples(self) -> int:
        return sum(s.n_rows for s in self.shards)

    def payload_sizes(self) -> list[int]:
        return [s.nbytes for s in self.shards]

    def total_payload_bytes(self) -> int:
        return sum(self.payload_sizes())

    def physical_bytes(self) -> int:
        """On-disk size after page layout (includes the fudge factor)."""
        return stored_bytes(self.payload_sizes())
