"""On-disk shard store for compressed mini-batches.

A sharded dataset is a directory holding one blob file per compressed
mini-batch plus a JSON manifest and the label vectors:

.. code-block:: text

    shards/
      manifest.json     # per-shard schemes, shard table, encode provenance
      labels.npz        # one label array per batch
      shard-00000.bin   # serialised compressed batch 0
      shard-00001.bin   # ...

Blob files hold exactly what ``CompressedMatrix.to_bytes`` produced, so any
registered scheme round-trips through its own ``decompress_bytes``.  The
store is deliberately dumb — durability and layout live here, while caching
policy stays in :class:`repro.storage.buffer_pool.BufferPool`, which shards
attach to as lazy :class:`~repro.storage.buffer_pool.DiskBlob` entries.

Manifest format v2 records the compression scheme *per shard* (what
``scheme="auto"`` encoding produces on mixed-density data); v1 manifests —
one dataset-wide ``"scheme"`` key — are still read and upgraded on the fly
by applying that scheme to every shard.

Every manifest rewrite also bumps a monotonically increasing ``generation``
counter.  Shard files are immutable *between* manifest swaps, so the
generation is the one value a read-only observer (a serving worker sharing
the directory) needs to poll: unchanged generation means every file it has
open is still the live one; a bumped generation means an append/compact
published new files and the observer should re-open
(:func:`read_generation` reads it without constructing a dataset).
"""

from __future__ import annotations

import json
import os
import re
import time
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.compression.base import CompressedMatrix, CompressionScheme
from repro.compression.registry import get_scheme
from repro.engine.encode import (
    AUTO_SCHEME,
    EncodedBatch,
    encode_batches,
    resolve_executor,
    resolve_workers,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.mmapio import make_loader, read_buffer
from repro.storage.pages import stored_bytes
from repro.storage.table import BlobTable

MANIFEST_NAME = "manifest.json"
LABELS_NAME = "labels.npz"
FORMAT_VERSION = 2

#: Manifest versions :meth:`ShardedDataset.open` understands.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

#: The dataset-level scheme name reported when shards mix schemes.
MIXED_SCHEME = "mixed"

#: Shard filenames: ``shard-00005.bin`` when first written, then
#: ``shard-00005.g1.bin``, ``.g2`` ... as :meth:`ShardedDataset.stage_shard`
#: re-encodes them (each rewrite gets a fresh name so the old file stays
#: valid until the manifest swap publishes the new one).
_SHARD_FILENAME_RE = re.compile(r"^(?P<stem>.+?)(?:\.g(?P<gen>\d+))?\.bin$")


def read_generation(directory: Path | str) -> int:
    """The manifest generation at ``directory``, cheaply.

    Reads only the manifest JSON (no labels, no shard table objects) — what
    a serving worker polls between requests.  Manifests written before the
    counter existed report generation ``0``; a missing manifest raises
    :class:`FileNotFoundError` like :meth:`ShardedDataset.open` would.
    """
    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no shard manifest at {manifest_path}")
    return int(json.loads(manifest_path.read_text()).get("generation", 0))


def shard_filename_stem(name: str) -> str | None:
    """The generation-free stem of a shard filename, or ``None`` for other files.

    ``shard-00005.bin`` and ``shard-00005.g2.bin`` both map to
    ``shard-00005`` — what fsck uses to recognise stale staged generations.
    """
    match = _SHARD_FILENAME_RE.match(name)
    return match.group("stem") if match else None


@dataclass(frozen=True)
class ShardInfo:
    """Manifest row describing one shard file."""

    batch_id: int
    filename: str
    nbytes: int
    n_rows: int
    n_cols: int
    scheme: str = "TOC"


class ShardedDataset:
    """A directory of compressed mini-batch shards plus manifest and labels."""

    def __init__(
        self,
        directory: Path,
        shards: list[ShardInfo],
        labels: dict[int, np.ndarray],
        encode_seconds: float = 0.0,
        requested_scheme: str | list[str] | None = None,
        encode_executor: str | None = None,
        generation: int = 0,
    ):
        self.directory = Path(directory)
        self.shards = list(shards)
        self._labels = labels
        self.encode_seconds = encode_seconds
        #: What the encoder was asked for (e.g. ``"auto"``), for provenance.
        self.requested_scheme = requested_scheme
        #: The executor kind that last encoded shards, for provenance.
        self.encode_executor = encode_executor
        #: Bumped by every :meth:`rewrite_manifest`; what observers poll.
        self.generation = generation
        self._schemes: dict[str, CompressionScheme] = {}

    # -- creation -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Path | str,
        batches: list[tuple[np.ndarray, np.ndarray]],
        scheme_name: str | Sequence[str] = "TOC",
        *,
        workers: int | None = None,
        executor: str = "auto",
        workload: str | None = None,
        calibration=None,
    ) -> "ShardedDataset":
        """Encode ``(features, labels)`` batches in parallel and persist them.

        ``scheme_name`` may be any registered scheme, ``"auto"`` to let the
        advisor pick per batch, or a sequence naming a scheme per batch; the
        manifest records the scheme actually used for every shard.
        ``workload``/``calibration`` switch ``"auto"`` to the measured cost
        model (see :mod:`repro.core.calibration`).
        """
        if not batches:
            raise ValueError("at least one mini-batch is required")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        start = time.perf_counter()
        encoded = encode_batches(
            [features for features, _ in batches],
            scheme_name,
            workers=workers,
            executor=executor,
            workload=workload,
            calibration=calibration,
        )
        encode_seconds = time.perf_counter() - start

        shards: list[ShardInfo] = []
        labels: dict[int, np.ndarray] = {}
        for enc, (_, batch_labels) in zip(encoded, batches):
            info = cls._write_shard(directory, enc)
            shards.append(info)
            labels[enc.batch_id] = np.asarray(batch_labels)

        requested = scheme_name if isinstance(scheme_name, str) else list(scheme_name)
        dataset = cls(
            directory,
            shards,
            labels,
            encode_seconds,
            requested_scheme=requested,
            # Provenance: the executor actually used, not the requested kind
            # ("auto" resolves differently per machine).
            encode_executor=resolve_executor(executor, resolve_workers(workers)),
        )
        dataset._write_labels()
        dataset.rewrite_manifest()
        return dataset

    @staticmethod
    def _write_shard(directory: Path, enc: EncodedBatch) -> ShardInfo:
        filename = f"shard-{enc.batch_id:05d}.bin"
        (directory / filename).write_bytes(enc.payload)
        return ShardInfo(
            batch_id=enc.batch_id,
            filename=filename,
            nbytes=enc.nbytes,
            n_rows=enc.n_rows,
            n_cols=enc.n_cols,
            scheme=enc.scheme,
        )

    @classmethod
    def open(cls, directory: Path | str) -> "ShardedDataset":
        """Load an existing shard directory from its manifest (v1 or v2)."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no shard manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version not in SUPPORTED_FORMAT_VERSIONS:
            raise ValueError(
                f"unsupported shard format {version!r} "
                f"(expected one of {SUPPORTED_FORMAT_VERSIONS})"
            )
        if version == 1:
            # v1: one dataset-wide scheme; upgrade by stamping it per shard.
            default_scheme = manifest["scheme"]
            shards = [
                ShardInfo(**row, scheme=default_scheme) for row in manifest["shards"]
            ]
        else:
            shards = [ShardInfo(**row) for row in manifest["shards"]]
        with np.load(directory / LABELS_NAME) as archive:
            labels = {s.batch_id: archive[f"y{s.batch_id:05d}"] for s in shards}
        return cls(
            directory,
            shards,
            labels,
            encode_seconds=float(manifest.get("encode_seconds", 0.0)),
            requested_scheme=manifest.get("requested_scheme", manifest.get("scheme")),
            encode_executor=manifest.get("encode_executor"),
            generation=int(manifest.get("generation", 0)),
        )

    # -- durability ------------------------------------------------------------

    def _write_labels(self) -> None:
        """Atomically persist the label archive (write-new, then rename)."""
        tmp = self.directory / f".{LABELS_NAME}.tmp.npz"
        np.savez(tmp, **{f"y{bid:05d}": y for bid, y in self._labels.items()})
        os.replace(tmp, self.directory / LABELS_NAME)

    def rewrite_manifest(self) -> Path:
        """Atomically rewrite the manifest (format v2) from the current state.

        The new manifest is written next to the old one and swapped in with
        ``os.replace``, so a crash mid-write never leaves a torn manifest —
        readers see either the old dataset or the new one.

        Each rewrite bumps :attr:`generation` *before* the swap, so the
        published manifest always carries a strictly higher generation than
        the one it replaced — pollers (:func:`read_generation`) treat any
        change as "files may have moved, re-open".
        """
        self.generation += 1
        manifest = {
            "format_version": FORMAT_VERSION,
            "generation": self.generation,
            # Dataset-level summary (the uniform scheme, or "mixed"); the
            # authoritative per-shard schemes live in the shard rows.
            "scheme": self.scheme_name,
            "requested_scheme": self.requested_scheme,
            "encode_seconds": self.encode_seconds,
            "encode_executor": self.encode_executor,
            "shards": [vars(s) for s in self.shards],
        }
        path = self.directory / MANIFEST_NAME
        tmp = self.directory / f".{MANIFEST_NAME}.tmp"
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, path)
        return path

    # -- mutation --------------------------------------------------------------

    def append(
        self,
        batches: list[tuple[np.ndarray, np.ndarray]],
        scheme_name: str | Sequence[str] | None = None,
        *,
        workers: int | None = None,
        executor: str = "auto",
        workload: str | None = None,
        calibration=None,
    ) -> list[ShardInfo]:
        """Encode and persist additional ``(features, labels)`` batches.

        New shards get the next batch ids; the manifest and label archive are
        rewritten atomically once the shard files are on disk.  ``scheme_name``
        defaults to what the dataset was originally encoded with (``"auto"``
        when the original request was per-batch), so appended shards keep
        flowing through the same advisor policy.
        """
        if not batches:
            raise ValueError("at least one mini-batch is required")
        if scheme_name is None:
            requested = self.requested_scheme
            scheme_name = requested if isinstance(requested, str) else AUTO_SCHEME
        n_cols = self.shards[0].n_cols if self.shards else None
        for features, _ in batches:
            width = np.asarray(features).shape[1]
            if n_cols is not None and width != n_cols:
                raise ValueError(
                    f"appended batch has {width} columns but the dataset has {n_cols}"
                )

        start = time.perf_counter()
        encoded = encode_batches(
            [features for features, _ in batches],
            scheme_name,
            workers=workers,
            executor=executor,
            workload=workload,
            calibration=calibration,
        )
        self.encode_seconds += time.perf_counter() - start
        self.encode_executor = resolve_executor(executor, resolve_workers(workers))

        next_id = max((s.batch_id for s in self.shards), default=-1) + 1
        added: list[ShardInfo] = []
        for enc, (_, batch_labels) in zip(encoded, batches):
            enc = replace(enc, batch_id=next_id + enc.batch_id)
            info = self._write_shard(self.directory, enc)
            self.shards.append(info)
            self._labels[enc.batch_id] = np.asarray(batch_labels)
            added.append(info)
        self._write_labels()
        self.rewrite_manifest()
        return added

    def stage_shard(self, batch_id: int, payload: bytes, scheme_name: str) -> ShardInfo:
        """Stage a re-encoded payload for one shard under a *new* filename.

        The replacement file is written next to the old one (generation
        suffix: ``shard-00005.bin`` -> ``shard-00005.g1.bin`` -> ``.g2`` ...)
        and nothing references it until the caller publishes it with one
        :meth:`rewrite_manifest`.  That ordering is what makes multi-shard
        rewrites crash-safe: until the manifest swap, every reader keeps
        decoding the old file with the old scheme; after it, the new file
        with the new one.  Callers delete the superseded files only after
        the swap (see :func:`repro.engine.compact.compact_dataset`).
        """
        index = next(
            (i for i, s in enumerate(self.shards) if s.batch_id == batch_id), None
        )
        if index is None:
            raise KeyError(f"no shard with batch id {batch_id}")
        info = self.shards[index]
        match = _SHARD_FILENAME_RE.match(info.filename)
        if match is None:
            raise ValueError(f"unrecognised shard filename {info.filename!r}")
        generation = int(match.group("gen") or 0) + 1
        filename = f"{match.group('stem')}.g{generation}.bin"
        (self.directory / filename).write_bytes(payload)
        updated = replace(
            info, filename=filename, nbytes=len(payload), scheme=scheme_name
        )
        self.shards[index] = updated
        return updated

    # -- schemes --------------------------------------------------------------

    @property
    def scheme_name(self) -> str:
        """The uniform scheme name, or ``"mixed"`` when shards differ."""
        names = {shard.scheme for shard in self.shards}
        return names.pop() if len(names) == 1 else MIXED_SCHEME

    @property
    def is_mixed(self) -> bool:
        return len({shard.scheme for shard in self.shards}) > 1

    def scheme_counts(self) -> dict[str, int]:
        """How many shards each scheme compressed (manifest summary)."""
        return dict(Counter(shard.scheme for shard in self.shards))

    def scheme_for(self, batch_id: int) -> CompressionScheme:
        """The (cached) scheme instance that decodes shard ``batch_id``."""
        name = self.shards[batch_id].scheme
        if name not in self._schemes:
            self._schemes[name] = get_scheme(name)
        return self._schemes[name]

    def decode(self, batch_id: int, payload=None) -> CompressedMatrix:
        """Rebuild one shard's compressed matrix with *its* scheme.

        ``payload`` (bytes or any buffer) lets callers that read through a
        buffer pool hand over the bytes they already have; otherwise the
        shard file is read (zero-copy mmap by default).
        """
        if payload is None:
            payload = self.read_payload(batch_id)
        return self.scheme_for(batch_id).decompress_bytes(payload)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.shards)

    def read_payload(self, batch_id: int):
        """Read one shard's payload straight from disk (no caching).

        Returns a zero-copy ``memoryview`` over a read-only mmap of the
        shard file (set ``REPRO_MMAP=0`` for copying ``read_bytes`` reads).
        Every scheme's ``decompress_bytes`` accepts either.
        """
        return read_buffer(self.directory / self.shards[batch_id].filename)

    def labels_for(self, batch_id: int) -> np.ndarray:
        return self._labels[batch_id]

    def attach(self, pool: BufferPool) -> None:
        """Register every shard in ``pool`` as a lazy on-disk blob."""
        for shard in self.shards:
            path = self.directory / shard.filename
            pool.put_on_disk(shard.batch_id, size=shard.nbytes, loader=make_loader(path))

    def as_blob_table(self, pool: BufferPool) -> BlobTable:
        """Expose the shards as a Bismarck-style blob table over ``pool``.

        The decoder for every row is resolved from the manifest; the old
        ``scheme`` parameter (deprecated in the previous release) is gone.
        """
        table = BlobTable(None, pool)
        for shard in self.shards:
            path = self.directory / shard.filename
            table.add_encoded(
                shard.batch_id,
                self._labels[shard.batch_id],
                size=shard.nbytes,
                loader=make_loader(path),
                scheme=self.scheme_for(shard.batch_id),
            )
        return table

    # -- statistics -------------------------------------------------------------

    @property
    def n_examples(self) -> int:
        return sum(s.n_rows for s in self.shards)

    def payload_sizes(self) -> list[int]:
        return [s.nbytes for s in self.shards]

    def total_payload_bytes(self) -> int:
        return sum(self.payload_sizes())

    def physical_bytes(self) -> int:
        """On-disk size after page layout (includes the fudge factor)."""
        return stored_bytes(self.payload_sizes())


__all__ = [
    "AUTO_SCHEME",
    "FORMAT_VERSION",
    "LABELS_NAME",
    "MANIFEST_NAME",
    "MIXED_SCHEME",
    "ShardInfo",
    "ShardedDataset",
    "read_generation",
    "shard_filename_stem",
]
