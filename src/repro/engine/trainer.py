"""Epoch-level out-of-core training driver.

The trainer wires the whole data path together: mini-batches are sharded to
disk through the parallel encode pipeline (:mod:`repro.engine.encode` /
:mod:`repro.engine.shards`), served through a byte-budgeted
:class:`~repro.storage.buffer_pool.BufferPool`, decoded with read-ahead
prefetch (:mod:`repro.engine.prefetch`), and stepped through the existing
:class:`~repro.ml.optimizer.MiniBatchGradientDescent` loop — so any model in
:mod:`repro.ml.models` trains unchanged over datasets larger than memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.compression.base import CompressionScheme
from repro.compression.registry import get_scheme
from repro.data.minibatch import split_minibatches
from repro.engine.encode import AUTO_SCHEME, resolve_executor, resolve_workers
from repro.engine.prefetch import prefetch_iter
from repro.engine.shards import ShardedDataset
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent, TrainingHistory
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.storage.arena import ModelArena
from repro.storage.bismarck import BismarckSession
from repro.storage.buffer_pool import BufferPool, BufferPoolStats


@dataclass
class OOCTrainReport:
    """Result of one out-of-core training run."""

    history: TrainingHistory
    encode_seconds: float
    epoch_io_seconds: list[float] = field(default_factory=list)
    pool_stats: BufferPoolStats = field(default_factory=BufferPoolStats)
    budget_bytes: int = 0
    total_payload_bytes: int = 0
    physical_bytes: int = 0
    checkpoint_version: int | None = None
    checkpoint_path: Path | None = None

    @property
    def fits_in_memory(self) -> bool:
        return self.total_payload_bytes <= self.budget_bytes

    @property
    def final_loss(self) -> float:
        return self.history.final_loss

    @property
    def total_io_seconds(self) -> float:
        return float(sum(self.epoch_io_seconds))


class OutOfCoreTrainer:
    """Stream TOC-compressed shards from disk through the MGD loop.

    Parameters
    ----------
    scheme_name:
        Compression scheme for the shards: any registered scheme (TOC is the
        point of the paper) or ``"auto"`` to let the advisor pick per shard.
        Decoding always resolves per shard from the manifest, so a trainer
        can attach and train any dataset whose shards mix schemes.
    config:
        MGD hyper-parameters (batch size, epochs, learning rate, seed).
    budget_bytes / budget_ratio:
        Buffer-pool size.  An explicit byte budget wins; otherwise the pool
        is sized to ``budget_ratio`` of the total shard payload, and the
        default of 0.5 deliberately makes the dataset *not* fit so the run
        actually exercises the out-of-core path.
    workers / executor:
        Encode fan-out (see :func:`repro.engine.encode.encode_batches`).
    prefetch_depth:
        How many mini-batches the read-ahead thread keeps in flight.
    """

    def __init__(
        self,
        scheme_name: str = "TOC",
        config: GradientDescentConfig | None = None,
        *,
        budget_bytes: int | None = None,
        budget_ratio: float = 0.5,
        disk_bandwidth_bytes_per_sec: float = 150e6,
        prefetch_depth: int = 2,
        workers: int | None = None,
        executor: str = "auto",
    ):
        if budget_bytes is None and budget_ratio <= 0:
            raise ValueError("budget_ratio must be positive")
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        resolve_executor(executor, resolve_workers(workers))  # fail fast on bad knobs
        self.scheme_name = scheme_name
        #: The fixed encode scheme, or ``None`` in per-shard ``"auto"`` mode.
        self.scheme: CompressionScheme | None = (
            None if scheme_name == AUTO_SCHEME else get_scheme(scheme_name)
        )
        self.config = config or GradientDescentConfig()
        self.budget_bytes = budget_bytes
        self.budget_ratio = budget_ratio
        self.disk_bandwidth_bytes_per_sec = disk_bandwidth_bytes_per_sec
        self.prefetch_depth = prefetch_depth
        self.workers = workers
        self.executor = executor
        self.dataset: ShardedDataset | None = None
        self.pool: BufferPool | None = None

    # -- preparation -----------------------------------------------------------

    def shard(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        shard_dir: Path | str,
    ) -> ShardedDataset:
        """Shuffle once, split, and persist compressed shards to ``shard_dir``."""
        batches = split_minibatches(
            features,
            labels,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.shuffle_seed,
        )
        dataset = ShardedDataset.create(
            shard_dir,
            batches,
            self.scheme_name,
            workers=self.workers,
            executor=self.executor,
        )
        self.attach(dataset)
        return dataset

    def attach(self, dataset: ShardedDataset) -> BufferPool:
        """Attach an existing shard directory behind a fresh buffer pool.

        Decoding resolves per shard from the manifest, so any dataset —
        uniform or mixed-scheme — trains through an ``"auto"`` trainer.  A
        trainer pinned to one scheme still refuses foreign shard directories:
        that mismatch is a caller error worth failing loudly on.
        """
        if self.scheme is not None and dataset.scheme_name != self.scheme.name:
            raise ValueError(
                f"shards were encoded with {dataset.scheme_name!r} but this trainer "
                f"is pinned to {self.scheme.name!r} (use scheme_name='auto' to "
                f"train over any shard mix)"
            )
        budget = self.budget_bytes
        if budget is None:
            budget = max(1, int(self.budget_ratio * dataset.total_payload_bytes()))
        pool = BufferPool(
            budget_bytes=budget,
            disk_bandwidth_bytes_per_sec=self.disk_bandwidth_bytes_per_sec,
        )
        dataset.attach(pool)
        self.dataset = dataset
        self.pool = pool
        return pool

    # -- training ----------------------------------------------------------------

    def _fetch(self, batch_id: int):
        # Runs in the prefetch reader thread; spans nest per thread, so these
        # shard spans interleave cleanly with the main-thread train span.
        start = time.perf_counter()
        with obs_trace.span("engine.train.shard", shard=batch_id):
            payload = self.pool.read(batch_id)
            # Per-shard decode: the manifest names each shard's scheme, so mixed
            # datasets stream through the same prefetch loop as uniform ones.
            fetched = self.dataset.decode(batch_id, payload), self.dataset.labels_for(batch_id)
        obs_metrics.histogram("engine.train.shard_seconds").observe(
            time.perf_counter() - start
        )
        return fetched

    def train(self, model, eval_fn=None) -> OOCTrainReport:
        """Run the configured epochs, streaming shards with read-ahead."""
        if self.dataset is None or self.pool is None:
            raise RuntimeError("call shard() or attach() before train()")
        dataset, pool = self.dataset, self.pool
        keys = range(len(dataset))
        io_checkpoints: list[float] = []

        def epoch_batches():
            io_checkpoints.append(pool.stats.simulated_io_seconds)
            return prefetch_iter(self._fetch, keys, depth=self.prefetch_depth)

        optimizer = MiniBatchGradientDescent(self.config)
        with obs_trace.span(
            "engine.train", epochs=self.config.epochs, n_shards=len(dataset)
        ):
            history = optimizer.train_streaming(model, epoch_batches, eval_fn=eval_fn)
        epoch_hist = obs_metrics.histogram("engine.train.epoch_seconds")
        for epoch_seconds in history.epoch_times:
            epoch_hist.observe(epoch_seconds)
        obs_metrics.counter("engine.train.epochs").inc(len(history.epoch_times))

        io_checkpoints.append(pool.stats.simulated_io_seconds)
        return OOCTrainReport(
            history=history,
            encode_seconds=dataset.encode_seconds,
            epoch_io_seconds=[b - a for a, b in zip(io_checkpoints, io_checkpoints[1:])],
            # Snapshot, not alias: the pool keeps counting if the trainer is
            # reused, and earlier reports must not change under the caller.
            pool_stats=replace(pool.stats),
            budget_bytes=pool.budget_bytes,
            total_payload_bytes=dataset.total_payload_bytes(),
            physical_bytes=dataset.physical_bytes(),
        )

    def fit(
        self,
        model,
        features: np.ndarray,
        labels: np.ndarray,
        shard_dir: Path | str,
        eval_fn=None,
        *,
        checkpoint_to: Path | str | None = None,
    ) -> OOCTrainReport:
        """Convenience wrapper: shard to disk, then train.

        With ``checkpoint_to`` the trained model is published as the next
        version in a :class:`repro.serve.checkpoint.ModelRegistry` rooted
        there, recording the shard directory so ``python -m repro serve`` can
        find the features again; the report carries the version and path.
        """
        self.shard(features, labels, shard_dir)
        report = self.train(model, eval_fn=eval_fn)
        if checkpoint_to is not None:
            report.checkpoint_version, report.checkpoint_path = self.checkpoint(
                model, checkpoint_to
            )
        return report

    def checkpoint(self, model, registry_root: Path | str) -> tuple[int, Path]:
        """Publish ``model`` to the registry with this run's provenance."""
        if self.dataset is None:
            raise RuntimeError("call shard() or attach() before checkpoint()")
        # Local import: repro.serve sits on top of the engine, so importing it
        # at module scope would be circular.
        from repro.serve.checkpoint import ModelRegistry

        registry = ModelRegistry(registry_root)
        version = registry.save(
            model,
            scheme_name=self.dataset.scheme_name,
            dataset_meta={
                "shard_dir": str(self.dataset.directory.resolve()),
                "n_examples": self.dataset.n_examples,
                "n_shards": len(self.dataset),
                "scheme": self.dataset.scheme_name,
                "requested_scheme": self.scheme_name,
                "scheme_counts": self.dataset.scheme_counts(),
            },
        )
        return version, registry.path_for(version)

    # -- Bismarck integration ----------------------------------------------------

    def bismarck_session(self, arena: ModelArena | None = None) -> BismarckSession:
        """Wrap the attached shards in a Bismarck-style in-database session.

        The session's UDF-style epoch runner then reads the same shard files
        through the same buffer pool, which is how the in-RDBMS experiments
        reuse shards produced by the parallel encode pipeline.
        """
        if self.dataset is None or self.pool is None:
            raise RuntimeError("call shard() or attach() before bismarck_session()")
        # The table resolves each row's decoder from the manifest, so the
        # session works for uniform and mixed-scheme shard directories alike.
        table = self.dataset.as_blob_table(self.pool)
        return BismarckSession(self.scheme, self.pool, arena=arena, table=table)
