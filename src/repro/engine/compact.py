"""Compaction with re-advising for long-lived shard directories.

Shards are advised once, at encode time (``scheme="auto"`` samples each
batch through the Section 5.1 advisor).  A dataset that lives long enough to
be appended to — or whose advisor has since changed — drifts: the scheme a
shard was encoded with may no longer be the scheme the advisor would pick
today.  Compaction closes that gap:

1. every shard is re-advised on a row sample — sliced straight off the
   compressed form with :func:`repro.exec.row_slice`, so an unchanged shard
   costs a sample decode, not a full one (byte-block schemes, whose only
   row path is a full inflate, are the exception);
2. only the shards whose winning scheme *changed* are re-encoded — the
   advisor rule is shared with encode time
   (:func:`repro.engine.encode.advise_scheme`), so an already-optimal
   directory compacts to a no-op;
3. re-encoded payloads are staged under *new* generation filenames
   (:meth:`~repro.engine.shards.ShardedDataset.stage_shard`), the (format
   v2) manifest is rewritten atomically once at the end, and only then are
   the superseded files deleted.  A crash at any point leaves a readable
   dataset: before the manifest swap every reader still sees the old files
   with the old schemes; after it, the new ones.

With ``readvise=False`` the pass skips the advisor entirely and only
rewrites the manifest — a cheap way to normalise a v1 (single-scheme)
manifest to format v2 in place.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.compression.registry import get_scheme
from repro.engine.encode import (
    AUTO_SAMPLE_ROWS,
    advise_scheme,
    resolve_executor,
    resolve_workers,
)
from repro.engine.shards import (
    FORMAT_VERSION,
    LABELS_NAME,
    MANIFEST_NAME,
    ShardedDataset,
    shard_filename_stem,
)
from repro.exec import row_slice, supports_direct_ops
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class ShardChange:
    """One shard re-encoded by a compaction pass."""

    batch_id: int
    scheme_before: str
    scheme_after: str
    nbytes_before: int
    nbytes_after: int

    @property
    def bytes_saved(self) -> int:
        return self.nbytes_before - self.nbytes_after


@dataclass
class CompactReport:
    """What one compaction pass examined and changed."""

    examined: int = 0
    changes: list[ShardChange] = field(default_factory=list)
    payload_bytes_before: int = 0
    payload_bytes_after: int = 0
    seconds: float = 0.0
    sample_rows: int = AUTO_SAMPLE_ROWS
    readvised: bool = True
    #: Shards whose winner changed but that the ``max_shards`` budget pushed
    #: to a later pass.
    deferred: int = 0
    #: The executor kind that ran the re-encodes (``"serial"`` when nothing
    #: needed re-encoding).
    executor: str = "serial"

    @property
    def n_reencoded(self) -> int:
        return len(self.changes)

    @property
    def changed(self) -> bool:
        return bool(self.changes)

    @property
    def bytes_saved(self) -> int:
        return self.payload_bytes_before - self.payload_bytes_after


def _sample_rows(matrix, n_rows: int, sample_rows: int):
    """A dense row-prefix sample of one decoded shard, cheaply.

    Direct-op schemes row-slice the compressed form (only the sampled rows
    are densified); byte-block schemes can only inflate whole, so they pay
    the full decode either way.
    """
    prefix = list(range(min(n_rows, sample_rows)))
    if supports_direct_ops(matrix):
        return row_slice(matrix, prefix)
    return matrix.to_dense()[: len(prefix)]


def readvise_shard(
    dataset: ShardedDataset,
    batch_id: int,
    sample_rows: int = AUTO_SAMPLE_ROWS,
    *,
    workload: str | None = None,
    calibration=None,
) -> str:
    """The scheme the advisor would pick for one shard *today*.

    Decoding is lossless, so the sampled rows are exactly the rows the
    encoder saw — a shard whose data has not changed always re-advises to
    the scheme ``"auto"`` encoding picked for it (under the same workload
    and calibration).
    """
    matrix = dataset.decode(batch_id)
    n_rows = dataset.shards[batch_id].n_rows
    return advise_scheme(
        _sample_rows(matrix, n_rows, sample_rows),
        workload=workload,
        calibration=calibration,
    )


def _reencode_one(task: tuple) -> tuple:
    """Worker body: re-encode one shard file with its new winning scheme.

    Top-level so it pickles into ``ProcessPoolExecutor`` workers.  The shard
    is re-read from its path inside the worker — a zero-copy mmap read, so
    parallel workers share the page-cache copy of immutable shard files
    instead of each shipping the payload across the pool boundary.
    """
    from repro.storage.mmapio import read_buffer

    batch_id, path, scheme_before, winner = task
    matrix = get_scheme(scheme_before).decompress_bytes(read_buffer(path))
    payload = get_scheme(winner).compress(matrix.to_dense()).to_bytes()
    return batch_id, payload


def _manifest_is_stale(dataset: ShardedDataset) -> bool:
    """True when the on-disk manifest needs a rewrite even with no re-encodes.

    Covers the v1 → v2 format upgrade (compact promises to leave every
    directory it touches on the current format) and a missing/corrupt
    manifest file.
    """
    try:
        manifest = json.loads((dataset.directory / MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return True
    return manifest.get("format_version") != FORMAT_VERSION


def compact_dataset(
    dataset: ShardedDataset,
    *,
    readvise: bool = True,
    sample_rows: int = AUTO_SAMPLE_ROWS,
    workload: str | None = None,
    calibration=None,
    max_shards: int | None = None,
    workers: int | None = None,
    executor: str = "auto",
) -> CompactReport:
    """Re-advise every shard and re-encode the ones whose winner changed.

    Returns a :class:`CompactReport`; ``report.changed`` is ``False`` when
    the directory was already optimal (which makes compaction idempotent —
    a second pass right after a first is always a no-op).

    ``workload``/``calibration`` switch the advisor to the measured cost
    model — the same shard directory compacts differently for a training
    replica (``"train"``) than for a serving one (``"serve"``), and because
    compaction re-advises, a calibrated advisor retroactively improves
    datasets encoded before calibration existed.

    Re-encoding fans out over the encode executor (``workers``/``executor``
    as in :func:`repro.engine.encode.encode_batches`).  ``max_shards`` caps
    how many shards one pass may rewrite: shards beyond the budget are left
    untouched and counted in ``report.deferred``, so an operator can spread
    a large rewrite over several bounded passes (each one still ends with a
    single atomic manifest swap).
    """
    if sample_rows < 1:
        raise ValueError("sample_rows must be at least 1")
    if max_shards is not None and max_shards < 0:
        raise ValueError("max_shards must be non-negative")
    if readvise and workload is not None and calibration is None:
        from repro.core.calibration import ensure_calibration

        # Resolved (and persisted) next to the dataset so later compacts and
        # other processes reload the same measurements instead of re-timing.
        calibration = ensure_calibration(dataset.directory)
    start = time.perf_counter()
    report = CompactReport(
        examined=len(dataset.shards),
        payload_bytes_before=dataset.total_payload_bytes(),
        sample_rows=sample_rows,
        readvised=readvise,
    )
    superseded: list[str] = []
    with obs_trace.span(
        "engine.compact", n_shards=len(dataset.shards), readvise=readvise
    ):
        if readvise:
            # Advising is cheap (a sampled row-slice per shard), so it runs
            # serially; only the winners that changed pay a re-encode.
            pending: list[tuple] = []  # (shard, winner)
            for shard in list(dataset.shards):
                matrix = dataset.decode(shard.batch_id)
                winner = advise_scheme(
                    _sample_rows(matrix, shard.n_rows, sample_rows),
                    workload=workload,
                    calibration=calibration,
                )
                if winner != shard.scheme:
                    pending.append((shard, winner))
            if max_shards is not None and len(pending) > max_shards:
                report.deferred = len(pending) - max_shards
                pending = pending[:max_shards]
            if pending:
                n_workers = resolve_workers(workers)
                kind = resolve_executor(executor, n_workers)
                report.executor = kind
                tasks = [
                    (s.batch_id, str(dataset.directory / s.filename), s.scheme, winner)
                    for s, winner in pending
                ]
                if kind == "serial" or n_workers == 1:
                    results = [_reencode_one(task) for task in tasks]
                else:
                    pool_cls = (
                        ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
                    )
                    with pool_cls(max_workers=n_workers) as pool:
                        results = list(pool.map(_reencode_one, tasks))
                payloads = dict(results)
                for shard, winner in pending:
                    updated = dataset.stage_shard(
                        shard.batch_id, payloads[shard.batch_id], winner
                    )
                    superseded.append(shard.filename)
                    report.changes.append(
                        ShardChange(
                            batch_id=shard.batch_id,
                            scheme_before=shard.scheme,
                            scheme_after=winner,
                            nbytes_before=shard.nbytes,
                            nbytes_after=updated.nbytes,
                        )
                    )
        # One atomic manifest write publishes every staged shard (and, for a v1
        # directory, upgrades the on-disk manifest to format v2).  Only after
        # that swap are the superseded generation files garbage.  A true no-op
        # pass (nothing re-encoded, manifest already current) skips the rewrite
        # so the generation doesn't bump — live services watch it and would
        # otherwise re-open their stores for nothing.
        if superseded or _manifest_is_stale(dataset):
            dataset.rewrite_manifest()
        for filename in superseded:
            (dataset.directory / filename).unlink(missing_ok=True)
    report.payload_bytes_after = dataset.total_payload_bytes()
    report.seconds = time.perf_counter() - start
    obs_metrics.counter("engine.compact.passes").inc()
    obs_metrics.counter("engine.compact.shards_examined").inc(report.examined)
    obs_metrics.counter("engine.compact.shards_reencoded").inc(report.n_reencoded)
    obs_metrics.counter("engine.compact.shards_deferred").inc(report.deferred)
    return report


# -- fsck: sweeping interrupted passes -----------------------------------------


@dataclass(frozen=True)
class FsckReport:
    """What one :func:`fsck_dataset` sweep found (and possibly removed)."""

    #: Directory entries examined.
    examined: int
    #: Unreferenced shard-generation / temporary files found.
    orphans: tuple[str, ...]
    #: The subset of ``orphans`` actually deleted (empty on a dry run).
    removed: tuple[str, ...]
    #: Manifest-referenced shard files that are *missing* on disk.  These are
    #: real corruption — fsck reports them but never tries to repair.
    missing: tuple[str, ...]
    bytes_reclaimable: int = 0

    @property
    def clean(self) -> bool:
        return not self.orphans and not self.missing


def fsck_dataset(dataset: ShardedDataset, *, remove: bool = True) -> FsckReport:
    """Sweep a shard directory for leftovers of interrupted rewrites.

    A crash between :meth:`~repro.engine.shards.ShardedDataset.stage_shard`
    and the manifest swap (or during an atomic manifest / label rewrite)
    leaves files nothing references: staged ``shard-*.gN.bin`` generations
    and dot-prefixed temporaries.  Those are safe to delete — the manifest
    is the single source of truth — and this pass deletes exactly them,
    never a file the manifest still points at and never a file it does not
    recognise.  Missing referenced shard files are reported, not repaired.
    """
    referenced = {shard.filename for shard in dataset.shards}
    temporary_prefixes = (f".{MANIFEST_NAME}.tmp", f".{LABELS_NAME}.tmp")
    orphans: list[str] = []
    reclaimable = 0
    examined = 0
    for entry in sorted(dataset.directory.iterdir()):
        name = entry.name
        if not entry.is_file() or name in referenced or name in (MANIFEST_NAME, LABELS_NAME):
            continue
        examined += 1
        is_temporary = name.startswith(temporary_prefixes)
        is_stale_generation = shard_filename_stem(name) is not None
        if is_temporary or is_stale_generation:
            orphans.append(name)
            reclaimable += entry.stat().st_size
    removed: list[str] = []
    if remove:
        for name in orphans:
            (dataset.directory / name).unlink(missing_ok=True)
            removed.append(name)
    missing = sorted(
        filename
        for filename in referenced
        if not (dataset.directory / filename).exists()
    )
    return FsckReport(
        examined=examined,
        orphans=tuple(orphans),
        removed=tuple(removed),
        missing=tuple(missing),
        bytes_reclaimable=reclaimable,
    )
