"""Multi-worker shard encode pipeline with per-batch scheme selection.

Encoding is the expensive, embarrassingly-parallel half of the out-of-core
story: every mini-batch is compressed exactly once (shuffle-once discipline)
and the per-batch ``TOCMatrix.encode`` calls share nothing, so they fan out
cleanly over a ``concurrent.futures`` executor.  Workers return serialised
payload bytes (via ``to_bytes``), which is both what gets written to the
shard files and the only thing that has to cross the process boundary.

Scheme selection is per batch.  Besides a fixed scheme name, callers may
pass :data:`AUTO_SCHEME` (``"auto"``) — the paper's Section 5.1 advice made
operational: each worker runs the scheme advisor on a row sample of *its*
batch and compresses with the winner, so a mixed-density dataset ends up
with TOC on its sparse shards and DEN (or whatever wins) on its dense ones.
The chosen name travels back in :attr:`EncodedBatch.scheme` and is recorded
per shard in the manifest.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Valid values for the ``executor`` argument of :func:`encode_batches`.
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")

#: Scheme name that triggers per-batch advisor-driven selection.
AUTO_SCHEME = "auto"

#: How many rows of a batch the advisor samples in ``auto`` mode.  The first
#: rows are used — batches come out of a shuffled split, so a deterministic
#: prefix is already a random sample, and determinism keeps serial / thread /
#: process encodes byte-identical.
AUTO_SAMPLE_ROWS = 100


@dataclass(frozen=True)
class EncodedBatch:
    """One mini-batch after compression: id, payload bytes, scheme, shape.

    ``seconds`` is the worker-side wall time of the compress — it rides in
    the (picklable) result so per-batch timings survive the process-pool
    boundary and feed the ``engine.encode.batch_seconds`` histogram in the
    parent.
    """

    batch_id: int
    payload: bytes
    n_rows: int
    n_cols: int
    scheme: str = "TOC"
    seconds: float = 0.0

    @property
    def nbytes(self) -> int:
        return len(self.payload)


def advise_scheme(sample_rows: np.ndarray, workload: str | None = None,
                  calibration=None) -> str:
    """The Section 5.1 rule: the advisor's winner for a dense row sample.

    This one function is the whole encode-time / compact-time selection
    policy — ``scheme="auto"`` encoding and
    :func:`repro.engine.compact.readvise_shard` both call it, so the two can
    never diverge (which is what keeps a freshly-advised dataset compacting
    to a no-op).  With a ``calibration``
    (:class:`~repro.core.calibration.Calibration`) the winner minimises the
    measured cost of ``workload``; without one the ratio fallback applies.
    """
    from repro.core.advisor import recommend_scheme

    return recommend_scheme(
        sample_rows, workload=workload, calibration=calibration
    ).best.name


def resolve_scheme_name(scheme_name: str, features: np.ndarray,
                        workload: str | None = None, calibration=None) -> str:
    """Map :data:`AUTO_SCHEME` to a concrete scheme for one batch.

    Fixed names pass through untouched; ``"auto"`` runs the advisor on a
    deterministic row prefix of ``features`` (batches come out of a shuffled
    split, so the prefix is already a random sample) and returns the winner.
    """
    if scheme_name != AUTO_SCHEME:
        return scheme_name
    return advise_scheme(
        features[: min(features.shape[0], AUTO_SAMPLE_ROWS)],
        workload=workload,
        calibration=calibration,
    )


def _encode_one(task: tuple) -> EncodedBatch:
    """Worker body: compress one batch with the named (or advised) scheme.

    Top-level function so it pickles cleanly into ``ProcessPoolExecutor``
    workers; the scheme is looked up by name inside the worker for the same
    reason (scheme objects need not be picklable — the calibration, a plain
    frozen dataclass of dicts, pickles fine and rides along in the task).
    """
    from repro.compression.registry import get_scheme

    batch_id, features, scheme_name, workload, calibration = task
    start = time.perf_counter()
    resolved = resolve_scheme_name(
        scheme_name, features, workload=workload, calibration=calibration
    )
    with obs_trace.span("engine.encode.batch", shard=batch_id, scheme=resolved):
        compressed = get_scheme(resolved).compress(features)
        payload = compressed.to_bytes()
    return EncodedBatch(
        batch_id=batch_id,
        payload=payload,
        n_rows=int(features.shape[0]),
        n_cols=int(features.shape[1]),
        scheme=resolved,
        seconds=time.perf_counter() - start,
    )


def resolve_workers(workers: int | None = None) -> int:
    """Default worker count: one per core (at least 1)."""
    if workers is not None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        return workers
    return max(1, os.cpu_count() or 1)


def resolve_executor(executor: str, workers: int) -> str:
    """Map ``"auto"`` to a concrete executor kind for this machine."""
    if executor not in EXECUTOR_KINDS:
        raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
    if executor != "auto":
        return executor
    # Processes only pay off with real parallelism available and requested;
    # encoding is pure-Python CPU work, so threads never beat serial.
    if workers > 1 and (os.cpu_count() or 1) > 1:
        return "process"
    return "serial"


def encode_batches(
    feature_batches: list[np.ndarray],
    scheme_name: str | Sequence[str] = "TOC",
    *,
    workers: int | None = None,
    executor: str = "auto",
    workload: str | None = None,
    calibration=None,
) -> list[EncodedBatch]:
    """Compress every batch, fanning out over workers.

    ``scheme_name`` is a single name applied to every batch (including
    :data:`AUTO_SCHEME` for per-batch advisor selection) or a sequence naming
    the scheme for each batch individually.  Results come back in batch order
    regardless of executor scheduling, each carrying the scheme actually
    used.  ``executor`` is one of ``"auto"`` (processes when multiple cores
    are available), ``"serial"``, ``"thread"``, or ``"process"``.

    ``workload`` switches ``"auto"`` selection to the measured cost model:
    the calibration is resolved once here (``ensure_calibration``) — never
    inside pool workers, which would each re-run the timing pass — and
    travels to them pickled inside the tasks.
    """
    n_workers = resolve_workers(workers)
    kind = resolve_executor(executor, n_workers)
    if isinstance(scheme_name, str):
        per_batch = [scheme_name] * len(feature_batches)
    else:
        per_batch = list(scheme_name)
        if len(per_batch) != len(feature_batches):
            raise ValueError(
                f"got {len(per_batch)} scheme names for {len(feature_batches)} batches"
            )
    if workload is not None and calibration is None and AUTO_SCHEME in per_batch:
        from repro.core.calibration import ensure_calibration

        calibration = ensure_calibration()
    tasks = [
        (batch_id, np.asarray(features, dtype=np.float64), name, workload, calibration)
        for batch_id, (features, name) in enumerate(zip(feature_batches, per_batch))
    ]
    if not tasks:
        raise ValueError("at least one mini-batch is required")

    with obs_trace.span("engine.encode", n_batches=len(tasks), executor=kind):
        if kind == "serial" or n_workers == 1:
            encoded = [_encode_one(task) for task in tasks]
        else:
            pool_cls = ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
            chunksize = max(1, len(tasks) // (4 * n_workers)) if kind == "process" else 1
            with pool_cls(max_workers=n_workers) as pool:
                if kind == "process":
                    encoded = list(pool.map(_encode_one, tasks, chunksize=chunksize))
                else:
                    encoded = list(pool.map(_encode_one, tasks))
    # Worker-side timings feed the histogram here in the parent, so the
    # numbers survive the process-pool boundary (workers have their own,
    # unobserved, registry).
    batch_hist = obs_metrics.histogram("engine.encode.batch_seconds")
    obs_metrics.counter("engine.encode.batches").inc(len(encoded))
    for enc in encoded:
        batch_hist.observe(enc.seconds)
    return encoded
