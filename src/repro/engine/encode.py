"""Multi-worker shard encode pipeline.

Encoding is the expensive, embarrassingly-parallel half of the out-of-core
story: every mini-batch is compressed exactly once (shuffle-once discipline)
and the per-batch ``TOCMatrix.encode`` calls share nothing, so they fan out
cleanly over a ``concurrent.futures`` executor.  Workers return serialised
payload bytes (via ``to_bytes``), which is both what gets written to the
shard files and the only thing that has to cross the process boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

#: Valid values for the ``executor`` argument of :func:`encode_batches`.
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class EncodedBatch:
    """One mini-batch after compression: id, payload bytes, and shape."""

    batch_id: int
    payload: bytes
    n_rows: int
    n_cols: int

    @property
    def nbytes(self) -> int:
        return len(self.payload)


def _encode_one(task: tuple[int, np.ndarray, str]) -> EncodedBatch:
    """Worker body: compress one batch with the named scheme.

    Top-level function so it pickles cleanly into ``ProcessPoolExecutor``
    workers; the scheme is looked up by name inside the worker for the same
    reason (scheme objects need not be picklable).
    """
    from repro.compression.registry import get_scheme

    batch_id, features, scheme_name = task
    compressed = get_scheme(scheme_name).compress(features)
    return EncodedBatch(
        batch_id=batch_id,
        payload=compressed.to_bytes(),
        n_rows=int(features.shape[0]),
        n_cols=int(features.shape[1]),
    )


def resolve_workers(workers: int | None = None) -> int:
    """Default worker count: one per core (at least 1)."""
    if workers is not None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        return workers
    return max(1, os.cpu_count() or 1)


def resolve_executor(executor: str, workers: int) -> str:
    """Map ``"auto"`` to a concrete executor kind for this machine."""
    if executor not in EXECUTOR_KINDS:
        raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
    if executor != "auto":
        return executor
    # Processes only pay off with real parallelism available and requested;
    # encoding is pure-Python CPU work, so threads never beat serial.
    if workers > 1 and (os.cpu_count() or 1) > 1:
        return "process"
    return "serial"


def encode_batches(
    feature_batches: list[np.ndarray],
    scheme_name: str = "TOC",
    *,
    workers: int | None = None,
    executor: str = "auto",
) -> list[EncodedBatch]:
    """Compress every batch with ``scheme_name``, fanning out over workers.

    Results come back in batch order regardless of executor scheduling.
    ``executor`` is one of ``"auto"`` (processes when multiple cores are
    available), ``"serial"``, ``"thread"``, or ``"process"``.
    """
    n_workers = resolve_workers(workers)
    kind = resolve_executor(executor, n_workers)
    tasks = [
        (batch_id, np.asarray(features, dtype=np.float64), scheme_name)
        for batch_id, features in enumerate(feature_batches)
    ]
    if not tasks:
        raise ValueError("at least one mini-batch is required")

    if kind == "serial" or n_workers == 1:
        return [_encode_one(task) for task in tasks]

    pool_cls = ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
    chunksize = max(1, len(tasks) // (4 * n_workers)) if kind == "process" else 1
    with pool_cls(max_workers=n_workers) as pool:
        if kind == "process":
            encoded = list(pool.map(_encode_one, tasks, chunksize=chunksize))
        else:
            encoded = list(pool.map(_encode_one, tasks))
    return encoded
