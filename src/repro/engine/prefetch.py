"""Read-ahead prefetching for the streaming epoch loop.

While the SGD step runs on mini-batch *k*, a single worker thread is already
reading and decoding mini-batch *k+1* (and up to ``depth`` batches ahead), so
disk latency and decode time hide behind compute.  Every fetch runs on that
one worker thread — the consumer only awaits futures — which keeps the
underlying :class:`~repro.storage.buffer_pool.BufferPool` effectively
single-threaded without needing locks.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor


def prefetch_iter(
    fetch: Callable[[int], object],
    keys: Sequence[int],
    depth: int = 2,
) -> Iterator[object]:
    """Yield ``fetch(key)`` for every key, reading up to ``depth`` ahead.

    ``depth <= 0`` disables read-ahead and degenerates to a plain map, which
    is useful as a control in benchmarks.
    """
    if depth <= 0:
        for key in keys:
            yield fetch(key)
        return

    executor = ThreadPoolExecutor(max_workers=1)
    try:
        pending: deque = deque()
        key_iter = iter(keys)
        for key in key_iter:
            pending.append(executor.submit(fetch, key))
            if len(pending) >= depth:
                break
        for key in key_iter:
            # One result out, one fetch in: the window stays `depth` deep.
            result = pending.popleft().result()
            pending.append(executor.submit(fetch, key))
            yield result
        while pending:
            yield pending.popleft().result()
    finally:
        # wait=True: at most one fetch is in flight, and letting it finish
        # keeps the (lock-free) buffer pool from being mutated by an orphaned
        # thread after the consumer has moved on; queued fetches are cancelled.
        executor.shutdown(wait=True, cancel_futures=True)
