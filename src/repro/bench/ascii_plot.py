"""Minimal ASCII line charts for rendering the paper's figures in a terminal.

The benchmark harness prints every figure as a table of series
(:mod:`repro.bench.reporting`); this module adds an optional chart rendering
so the shapes (crossovers, who-wins orderings) can be eyeballed without
matplotlib, which is not available in the offline environment.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

#: Characters used to mark the successive series of one chart.
_MARKERS = "oxv*#@+%"


def render_chart(
    title: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render line series as an ASCII chart.

    Parameters
    ----------
    title:
        Chart heading.
    x_values:
        Shared x coordinates (monotonically increasing).
    series:
        Mapping from series name to y values (same length as ``x_values``).
    width, height:
        Plot area size in characters.
    log_y:
        Plot ``log10`` of the values (useful for runtime figures whose series
        span orders of magnitude).

    Returns
    -------
    A multi-line string: the chart, a y-axis range annotation, and a legend.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 10 or height < 4:
        raise ValueError("the plot area must be at least 10x4 characters")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} has {len(ys)} points, expected {len(x_values)}")
    if len(x_values) < 2:
        raise ValueError("at least two x values are required")

    import math

    def transform(value: float) -> float:
        if not log_y:
            return float(value)
        return math.log10(max(float(value), 1e-12))

    all_values = [transform(y) for ys in series.values() for y in ys]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_values[0]), float(x_values[-1])
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(_MARKERS, series.items()):
        for x, y in zip(x_values, ys):
            col = round((float(x) - x_min) / (x_max - x_min) * (width - 1))
            row = round((transform(y) - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [title]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    axis_note = f"x: {x_values[0]} .. {x_values[-1]}"
    if log_y:
        axis_note += f"   y (log10): {y_min:.2f} .. {y_max:.2f}"
    else:
        axis_note += f"   y: {y_min:.3g} .. {y_max:.3g}"
    lines.append(axis_note)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
