"""Benchmark harness shared by the scripts under ``benchmarks/``.

One driver function per table/figure of the paper's evaluation lives in
:mod:`repro.bench.experiments`; the pytest-benchmark scripts are thin
wrappers that call these drivers and print the same rows/series the paper
reports, so every experiment can also be run directly::

    python -m repro.bench.experiments fig5
"""

from repro.bench.reporting import format_series, format_table
from repro.bench.runner import measure_compression, time_callable
from repro.bench.workloads import minibatch_for, workload_datasets

__all__ = [
    "format_series",
    "format_table",
    "measure_compression",
    "minibatch_for",
    "time_callable",
    "workload_datasets",
]
