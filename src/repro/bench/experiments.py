"""One driver per table/figure of the paper's evaluation section.

Each ``run_*`` function returns plain Python data (dicts keyed the way the
paper's artefact is keyed) and has a matching entry in ``EXPERIMENTS`` so
the module can be invoked from the command line::

    python -m repro.bench.experiments fig5
    python -m repro.bench.experiments tab6 --quick

The pytest-benchmark scripts under ``benchmarks/`` call the same drivers.
Row counts default to laptop-scale values; the ``scale`` argument lets the
CLI or the benches shrink/grow them without touching the experiment logic.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench.reporting import format_series, format_table
from repro.bench.runner import measure_compression, time_matrix_ops
from repro.bench.workloads import (
    ALL_DATASETS,
    MINIBATCH_SIZES,
    MODERATE_DATASETS,
    labeled_dataset,
    minibatch_for,
    n_classes,
)
from repro.compression.registry import get_scheme
from repro.data.minibatch import split_minibatches
from repro.ml.metrics import error_rate
from repro.ml.models import FeedForwardNetwork, LinearSVMModel, LogisticRegressionModel
from repro.ml.reference import gradient_descent_spectrum
from repro.storage.bismarck import BismarckSession
from repro.storage.buffer_pool import BufferPool

#: Schemes shown in the compression-ratio figures, paper order.
RATIO_SCHEMES = ("CSR", "CVI", "DVI", "Snappy", "Gzip", "TOC", "CLA")

#: Schemes shown in the matrix-op figure (adds the DEN baseline).
OP_SCHEMES = ("CLA", "DEN", "CSR", "CVI", "DVI", "Snappy", "Gzip", "TOC")

#: Schemes compared in the end-to-end tables.
END_TO_END_SCHEMES = ("TOC", "DEN", "CSR", "CVI", "DVI", "Snappy", "Gzip")

#: Simulated sequential-read bandwidth used by the end-to-end experiments.
#: The paper's compute kernels are C++; ours are NumPy/Python and therefore
#: slower in absolute terms, so the simulated disk is scaled down by roughly
#: the same factor to keep the compute-to-IO balance (and hence the crossover
#: points of Figures 9-11 and Tables 6-7) in the regime the paper studies.
#: See EXPERIMENTS.md for the calibration note.
SIMULATED_DISK_BANDWIDTH = 20e6


# ---------------------------------------------------------------------------
# Figure 2 — optimisation efficiency of BGD / SGD / MGD
# ---------------------------------------------------------------------------


def run_fig2(n_rows: int = 2000, epochs: int = 30, seed: int = 0) -> dict:
    """Accuracy-vs-epoch curves for SGD, MGD (250 rows), partial-batch MGD, BGD.

    The paper trains a one-hidden-layer network on Mnist; the convergence /
    stability trade-off between the gradient-descent variants is model
    agnostic, so the reproduction uses a logistic model on a binarised
    Mnist-like task (digit class >= 5), which keeps the experiment fast.
    """
    features, labels = labeled_dataset("mnist", n_rows, seed=seed)
    labels = (labels >= 5).astype(np.float64)
    variants = {
        "SGD": 1,
        "MGD (250 rows)": 250,
        "MGD-20%": max(1, int(0.2 * n_rows)),
        "MGD-50%": max(1, int(0.5 * n_rows)),
        "MGD-80%": max(1, int(0.8 * n_rows)),
        "BGD": n_rows,
    }
    curves = {
        name: gradient_descent_spectrum(
            features, labels, batch_size=batch, epochs=epochs, seed=seed
        )
        for name, batch in variants.items()
    }
    return {"epochs": list(range(1, epochs + 1)), "curves": curves}


# ---------------------------------------------------------------------------
# Figures 5 / 6 / 7 — compression ratios
# ---------------------------------------------------------------------------


def run_fig5(batch_sizes=MINIBATCH_SIZES, datasets=ALL_DATASETS, seed: int = 0) -> dict:
    """Compression ratios of every scheme on mini-batches of varying size."""
    results: dict[str, dict[str, dict[int, float]]] = {}
    for dataset in datasets:
        per_scheme: dict[str, dict[int, float]] = {scheme: {} for scheme in RATIO_SCHEMES}
        for size in batch_sizes:
            batch = minibatch_for(dataset, size, seed=seed)
            for scheme in RATIO_SCHEMES:
                per_scheme[scheme][size] = measure_compression(scheme, batch).ratio
        results[dataset] = per_scheme
    return results


def run_fig6(batch_sizes=MINIBATCH_SIZES, datasets=ALL_DATASETS, seed: int = 0) -> dict:
    """Ablation: compression ratios of TOC_SPARSE / +LOGICAL / FULL."""
    variants = ("TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC")
    results: dict[str, dict[str, dict[int, float]]] = {}
    for dataset in datasets:
        per_variant: dict[str, dict[int, float]] = {variant: {} for variant in variants}
        for size in batch_sizes:
            batch = minibatch_for(dataset, size, seed=seed)
            for variant in variants:
                per_variant[variant][size] = measure_compression(variant, batch).ratio
        results[dataset] = per_variant
    return results


def run_fig7(
    fractions=(0.05, 0.1, 0.25, 0.5, 1.0),
    datasets=MODERATE_DATASETS,
    total_rows: int = 2000,
    seed: int = 0,
) -> dict:
    """Compression ratios on large mini-batches (up to the whole dataset = BGD)."""
    results: dict[str, dict[str, dict[float, float]]] = {}
    for dataset in datasets:
        full = minibatch_for(dataset, total_rows, seed=seed)
        per_scheme: dict[str, dict[float, float]] = {scheme: {} for scheme in RATIO_SCHEMES}
        for fraction in fractions:
            rows = max(1, int(fraction * total_rows))
            batch = full[:rows]
            for scheme in RATIO_SCHEMES:
                per_scheme[scheme][fraction] = measure_compression(scheme, batch).ratio
        results[dataset] = per_scheme
    return results


# ---------------------------------------------------------------------------
# Figure 8 — matrix-operation runtimes
# ---------------------------------------------------------------------------


def run_fig8(datasets=ALL_DATASETS, batch_size: int = 250, repeats: int = 3, seed: int = 0) -> dict:
    """Runtimes of A*c, A*v, A*M, v*A, M*A per scheme per dataset (seconds)."""
    results: dict[str, dict[str, dict[str, float]]] = {}
    for dataset in datasets:
        batch = minibatch_for(dataset, batch_size, seed=seed)
        per_scheme: dict[str, dict[str, float]] = {}
        for scheme_name in OP_SCHEMES:
            compressed = get_scheme(scheme_name).compress(batch)
            per_scheme[scheme_name] = time_matrix_ops(
                compressed, batch.shape[1], batch.shape[0], repeats=repeats, seed=seed
            )
        results[dataset] = per_scheme
    return results


# ---------------------------------------------------------------------------
# Figure 12 — compression / decompression runtimes
# ---------------------------------------------------------------------------


def run_fig12(datasets=ALL_DATASETS, batch_size: int = 250, seed: int = 0) -> dict:
    """Compression and decompression time of Snappy, Gzip, TOC (seconds)."""
    schemes = ("Snappy", "Gzip", "TOC")
    results: dict[str, dict[str, dict[str, float]]] = {}
    for dataset in datasets:
        batch = minibatch_for(dataset, batch_size, seed=seed)
        per_scheme: dict[str, dict[str, float]] = {}
        for scheme in schemes:
            measurement = measure_compression(scheme, batch)
            per_scheme[scheme] = {
                "compress": measurement.compress_seconds,
                "decompress": measurement.decompress_seconds,
            }
        results[dataset] = per_scheme
    return results


# ---------------------------------------------------------------------------
# Tables 6 / 7 and Figures 9 / 10 — end-to-end MGD runtimes
# ---------------------------------------------------------------------------


def _make_model(model_name: str, n_features: int, classes: int, seed: int = 0):
    if model_name == "NN":
        return FeedForwardNetwork(
            n_features, hidden_sizes=(32, 16), n_classes=max(classes, 2), seed=seed
        )
    if model_name == "LR":
        return LogisticRegressionModel(n_features, seed=seed)
    if model_name == "SVM":
        return LinearSVMModel(n_features, seed=seed)
    raise ValueError(f"unknown model {model_name!r}")


def run_end_to_end(
    dataset: str,
    scheme_name: str,
    model_name: str,
    n_rows: int,
    memory_budget_bytes: int,
    epochs: int = 3,
    batch_size: int = 250,
    learning_rate: float = 0.1,
    seed: int = 0,
) -> dict:
    """One cell of Tables 6/7: train one model, one scheme, one dataset size.

    Training goes through the Bismarck-style session so memory pressure (via
    the buffer pool) and the page fudge factor are included; multi-class
    datasets wrap LR/SVM in one-vs-rest like the paper.
    """
    features, labels = labeled_dataset(dataset, n_rows, seed=seed)
    batches = split_minibatches(features, labels, batch_size=batch_size, seed=seed)

    pool = BufferPool(
        budget_bytes=memory_budget_bytes,
        disk_bandwidth_bytes_per_sec=SIMULATED_DISK_BANDWIDTH,
    )
    session = BismarckSession(get_scheme(scheme_name), pool)
    session.load(batches)

    classes = n_classes(dataset)
    start = time.perf_counter()
    if model_name in ("LR", "SVM") and classes > 2:
        # One-vs-rest: each per-class model does its own pass over the table.
        compute_io = [0.0, 0.0]
        for klass in range(classes):
            model = _make_model(model_name, features.shape[1], 2, seed=seed + klass)
            session.register_model(model)
            for _ in range(epochs):
                binar_report = session.run_epoch(model, learning_rate)
                compute_io[0] += binar_report.compute_seconds
                compute_io[1] += binar_report.io_seconds
        compute_seconds, io_seconds = compute_io
    else:
        model = _make_model(model_name, features.shape[1], classes, seed=seed)
        report = session.train(model, epochs=epochs, learning_rate=learning_rate)
        compute_seconds, io_seconds = report.total_compute_seconds, report.total_io_seconds
    wall = time.perf_counter() - start

    return {
        "dataset": dataset,
        "scheme": scheme_name,
        "model": model_name,
        "rows": n_rows,
        "compute_seconds": compute_seconds,
        "io_seconds": io_seconds,
        "total_seconds": compute_seconds + io_seconds,
        "wall_seconds": wall,
        "fits_in_memory": pool.fits_entirely(),
        "stored_bytes": pool.total_stored_bytes(),
        "fudge_factor": session.table.fudge_factor(),
    }


def _budget_for(datasets, n_rows: int, batch_size: int, seed: int) -> int:
    """Memory budget that lets TOC fit but spills the other formats.

    The budget is set to 2x the TOC-compressed size of the workload, which on
    the moderately sparse profiles sits well below the DEN/CSR/CVI footprint —
    the same relationship the paper's 15 GB machine has to its 150-200 GB
    datasets, where only the well-compressed formats stay in memory.
    """
    toc = get_scheme("TOC")
    total = 0
    for dataset in datasets:
        features, _ = labeled_dataset(dataset, n_rows, seed=seed)
        for batch_x, _y in split_minibatches(features, None, batch_size=batch_size, seed=seed):
            total += toc.compress(batch_x).nbytes
    return max(1, 2 * total // max(len(list(datasets)), 1))


def run_table6(
    datasets=("imagenet", "mnist"),
    models=("NN", "LR", "SVM"),
    schemes=END_TO_END_SCHEMES,
    small_rows: int = 1000,
    large_rows: int = 4000,
    epochs: int = 2,
    batch_size: int = 250,
    seed: int = 0,
) -> dict:
    """End-to-end MGD runtimes at a small (in-memory) and large (spilling) scale."""
    results: dict[str, dict[str, dict[str, float]]] = {}
    for dataset in datasets:
        budget = _budget_for([dataset], large_rows, batch_size, seed)
        for scale_name, rows in (("small", small_rows), ("large", large_rows)):
            key = f"{dataset}-{scale_name}"
            results[key] = {}
            for scheme in schemes:
                results[key][scheme] = {}
                for model in models:
                    cell = run_end_to_end(
                        dataset,
                        scheme,
                        model,
                        n_rows=rows,
                        memory_budget_bytes=budget,
                        epochs=epochs,
                        batch_size=batch_size,
                        seed=seed,
                    )
                    results[key][scheme][model] = cell["total_seconds"]
    return results


def run_table7(**kwargs) -> dict:
    """Table 7 is Table 6 on the Census- and Kdd99-like profiles."""
    kwargs.setdefault("datasets", ("census", "kdd99"))
    return run_table6(**kwargs)


def run_fig9(
    dataset: str = "imagenet",
    schemes=END_TO_END_SCHEMES,
    row_counts=(500, 1000, 2000, 4000),
    models=("NN", "LR"),
    epochs: int = 2,
    batch_size: int = 250,
    seed: int = 0,
) -> dict:
    """End-to-end MGD runtime as a function of the dataset size."""
    budget = _budget_for([dataset], max(row_counts), batch_size, seed)
    results: dict[str, dict[str, dict[int, float]]] = {model: {} for model in models}
    for model in models:
        for scheme in schemes:
            results[model][scheme] = {}
            for rows in row_counts:
                cell = run_end_to_end(
                    dataset,
                    scheme,
                    model,
                    n_rows=rows,
                    memory_budget_bytes=budget,
                    epochs=epochs,
                    batch_size=batch_size,
                    seed=seed,
                )
                results[model][scheme][rows] = cell["total_seconds"]
    return results


def run_fig10(
    dataset: str = "imagenet",
    row_counts=(500, 1000, 2000, 4000),
    models=("NN", "LR"),
    epochs: int = 2,
    batch_size: int = 250,
    seed: int = 0,
) -> dict:
    """Ablation of TOC variants (plus DEN) on end-to-end MGD runtimes."""
    variants = ("DEN", "TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC")
    return run_fig9(
        dataset=dataset,
        schemes=variants,
        row_counts=row_counts,
        models=models,
        epochs=epochs,
        batch_size=batch_size,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Figure 11 — test error as a function of time
# ---------------------------------------------------------------------------


def run_fig11(
    dataset: str = "mnist",
    n_rows: int = 2000,
    test_rows: int = 500,
    epochs: int = 5,
    batch_size: int = 250,
    memory_pressure: bool = True,
    learning_rate: float = 0.05,
    seed: int = 0,
) -> dict:
    """Error-rate-vs-time curves for BismarckTOC and the DEN/CSR reference loops.

    The classifier is a one-vs-rest logistic regression (the paper's LR panel
    of Figure 11); all schemes train exactly the same models, so the error
    curves coincide and the wall-clock axis — driven by whether the format
    fits in the buffer-pool budget — is what separates them.
    """
    features, labels = labeled_dataset(dataset, n_rows + test_rows, seed=seed)
    train_x, train_y = features[:n_rows], labels[:n_rows]
    test_x, test_y = features[n_rows:], labels[n_rows:]
    classes = max(n_classes(dataset), 2)

    batches = split_minibatches(train_x, train_y, batch_size=batch_size, seed=seed)
    toc_bytes = sum(get_scheme("TOC").compress(bx).nbytes for bx, _ in batches)
    den_bytes = sum(bx.shape[0] * bx.shape[1] * 8 for bx, _ in batches)
    budget = 2 * toc_bytes if memory_pressure else 4 * den_bytes

    curves: dict[str, dict[str, list[float]]] = {}
    for scheme_name in ("TOC", "DEN", "CSR"):
        pool = BufferPool(
            budget_bytes=budget, disk_bandwidth_bytes_per_sec=SIMULATED_DISK_BANDWIDTH
        )
        session = BismarckSession(get_scheme(scheme_name), pool)
        session.load(batches)
        models = [
            LogisticRegressionModel(train_x.shape[1], seed=seed + klass)
            for klass in range(classes)
        ]
        times: list[float] = []
        errors: list[float] = []
        elapsed = 0.0
        for _ in range(epochs):
            for klass, model in enumerate(models):
                session.register_model(model)
                io_before = pool.stats.simulated_io_seconds
                start = time.perf_counter()
                for compressed, batch_labels in session.table.iter_batches():
                    binary = (batch_labels == klass).astype(np.float64)
                    model.gradient_step(compressed, binary, learning_rate)
                elapsed += time.perf_counter() - start
                elapsed += pool.stats.simulated_io_seconds - io_before
            scores = np.column_stack([model.scores(test_x) for model in models])
            predictions = np.argmax(scores, axis=1).astype(np.float64)
            times.append(elapsed)
            errors.append(error_rate(predictions, test_y))
        label = "BismarckTOC" if scheme_name == "TOC" else f"Reference{scheme_name}"
        curves[label] = {"time": times, "error": errors}
    return {"budget_bytes": budget, "curves": curves}


# ---------------------------------------------------------------------------
# Table 1 sanity experiment — which ops each model exercises
# ---------------------------------------------------------------------------


def run_table1(seed: int = 0) -> dict:
    """Record which core compressed ops each model actually calls."""

    class _Recorder:
        """Wraps a compressed matrix and records which operations are invoked."""

        def __init__(self, inner):
            self.inner = inner
            self.called: set[str] = set()

        def __getattr__(self, name):
            attr = getattr(self.inner, name)
            if name in ("matvec", "rmatvec", "matmat", "rmatmat"):
                def wrapper(*args, _attr=attr, _name=name, **kwargs):
                    self.called.add(_name)
                    return _attr(*args, **kwargs)

                return wrapper
            return attr

    batch = minibatch_for("census", 64, seed=seed)
    labels = (np.arange(64) % 2).astype(np.float64)
    usage: dict[str, list[str]] = {}
    for name, model in (
        ("Linear regression", LogisticRegressionModel(batch.shape[1], seed=seed)),
        ("Logistic regression", LogisticRegressionModel(batch.shape[1], seed=seed)),
        ("Support vector machine", LinearSVMModel(batch.shape[1], seed=seed)),
        ("Neural network", FeedForwardNetwork(batch.shape[1], hidden_sizes=(8,), seed=seed)),
    ):
        recorder = _Recorder(get_scheme("TOC").compress(batch))
        model.gradient_step(recorder, labels, 0.1)
        usage[name] = sorted(recorder.called)
    return usage


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _print_fig5_like(results: dict, what: str) -> None:
    for dataset, per_scheme in results.items():
        x_values = list(next(iter(per_scheme.values())).keys())
        series = {scheme: [vals[x] for x in x_values] for scheme, vals in per_scheme.items()}
        print(format_series(f"{what} — {dataset}", "# rows in mini-batch", x_values, series))
        print()


def _print_fig8(results: dict) -> None:
    for dataset, per_scheme in results.items():
        ops = list(next(iter(per_scheme.values())).keys())
        rows = {scheme: {op: per_scheme[scheme][op] * 1e6 for op in ops} for scheme in per_scheme}
        print(format_table(f"Figure 8 — {dataset} (microseconds)", rows, ops, "{:.1f}"))
        print()


def _print_table6_like(results: dict, title: str) -> None:
    for key, per_scheme in results.items():
        models = list(next(iter(per_scheme.values())).keys())
        print(format_table(f"{title} — {key} (seconds)", per_scheme, models, "{:.3f}"))
        print()


def _print_fig9_like(results: dict, title: str) -> None:
    for model, per_scheme in results.items():
        x_values = list(next(iter(per_scheme.values())).keys())
        series = {scheme: [vals[x] for x in x_values] for scheme, vals in per_scheme.items()}
        print(format_series(f"{title} — {model} (seconds)", "# rows", x_values, series))
        print()


def main(argv: list[str] | None = None) -> int:
    """Entry point: ``python -m repro.bench.experiments <experiment> [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    parser.add_argument("--quick", action="store_true", help="smaller row counts / fewer epochs")
    args = parser.parse_args(argv)
    runner, printer = EXPERIMENTS[args.experiment]
    kwargs = QUICK_OVERRIDES.get(args.experiment, {}) if args.quick else {}
    results = runner(**kwargs)
    printer(results)
    return 0


def _print_fig2(results: dict) -> None:
    print(
        format_series(
            "Figure 2 — optimisation efficiency (accuracy per epoch)",
            "epoch",
            results["epochs"],
            results["curves"],
        )
    )


def _print_fig11(results: dict) -> None:
    for label, curve in results["curves"].items():
        epochs = [str(i + 1) for i in range(len(curve["time"]))]
        rows = {
            "time [s]": dict(zip(epochs, curve["time"])),
            "error [%]": dict(zip(epochs, curve["error"])),
        }
        print(format_table(f"Figure 11 — {label}", rows, epochs, "{:.3f}"))
        print()


def _print_fig12(results: dict) -> None:
    for dataset, per_scheme in results.items():
        print(
            format_table(
                f"Figure 12 — {dataset} (seconds)", per_scheme, ["compress", "decompress"], "{:.5f}"
            )
        )
        print()


def _print_table1(results: dict) -> None:
    for model, ops in results.items():
        print(f"{model:<26} uses compressed ops: {', '.join(ops)}")


EXPERIMENTS = {
    "fig2": (run_fig2, _print_fig2),
    "fig5": (run_fig5, lambda r: _print_fig5_like(r, "Figure 5 — compression ratios")),
    "fig6": (run_fig6, lambda r: _print_fig5_like(r, "Figure 6 — TOC ablation ratios")),
    "fig7": (run_fig7, lambda r: _print_fig5_like(r, "Figure 7 — large mini-batch ratios")),
    "fig8": (run_fig8, _print_fig8),
    "fig9": (run_fig9, lambda r: _print_fig9_like(r, "Figure 9 — MGD runtime vs dataset size")),
    "fig10": (run_fig10, lambda r: _print_fig9_like(r, "Figure 10 — TOC ablation runtimes")),
    "fig11": (run_fig11, _print_fig11),
    "fig12": (run_fig12, _print_fig12),
    "tab1": (run_table1, _print_table1),
    "tab6": (run_table6, lambda r: _print_table6_like(r, "Table 6 — end-to-end MGD runtimes")),
    "tab7": (run_table7, lambda r: _print_table6_like(r, "Table 7 — end-to-end MGD runtimes")),
}

QUICK_OVERRIDES = {
    "fig2": {"n_rows": 600, "epochs": 10},
    "fig5": {"batch_sizes": (50, 250), "datasets": ("census", "kdd99")},
    "fig6": {"batch_sizes": (50, 250), "datasets": ("census", "kdd99")},
    "fig7": {"datasets": ("census",), "total_rows": 500},
    "fig8": {"datasets": ("census", "kdd99"), "repeats": 1},
    "fig9": {"row_counts": (250, 500), "models": ("LR",), "epochs": 1},
    "fig10": {"row_counts": (250, 500), "models": ("LR",), "epochs": 1},
    "fig11": {"n_rows": 500, "test_rows": 200, "epochs": 2},
    "fig12": {"datasets": ("census", "kdd99")},
    "tab6": {"datasets": ("imagenet",), "small_rows": 250, "large_rows": 500, "epochs": 1},
    "tab7": {"datasets": ("census",), "small_rows": 250, "large_rows": 500, "epochs": 1},
}


if __name__ == "__main__":
    sys.exit(main())
