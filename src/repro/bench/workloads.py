"""Workload construction shared by all experiments.

The paper's evaluation always starts from the same ingredients: a dataset
profile (Table 5), mini-batches of 50–250 rows, and scaled-up row counts for
the end-to-end runs.  This module centralises those ingredients so every
bench uses the same data for the same experiment id.
"""

from __future__ import annotations

import numpy as np

from repro.data.registry import DATASET_PROFILES

#: Datasets used by the compression-ratio / matrix-op experiments, in the
#: order the paper's figures plot them.
ALL_DATASETS = ("census", "imagenet", "mnist", "kdd99", "rcv1", "deep1b")

#: Datasets of moderate sparsity (the end-to-end experiments use these).
MODERATE_DATASETS = ("census", "imagenet", "mnist", "kdd99")

#: Mini-batch sizes swept in Figures 5 and 6.
MINIBATCH_SIZES = (50, 100, 150, 200, 250)


def workload_datasets(include_extreme: bool = True) -> tuple[str, ...]:
    """Dataset names for the ratio/op experiments."""
    return ALL_DATASETS if include_extreme else MODERATE_DATASETS


def minibatch_for(dataset: str, n_rows: int = 250, seed: int = 0) -> np.ndarray:
    """One mini-batch of ``n_rows`` rows drawn from the named profile."""
    return DATASET_PROFILES[dataset].matrix(n_rows, seed=seed)


def labeled_dataset(dataset: str, n_rows: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A labelled dataset of ``n_rows`` rows from the named profile."""
    return DATASET_PROFILES[dataset].classification(n_rows, seed=seed)


def n_classes(dataset: str) -> int:
    """Number of classes of the named profile (Mnist-like is 10, rest binary)."""
    return DATASET_PROFILES[dataset].n_classes
