"""Formatting helpers producing the same rows/series the paper reports."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    value_format: str = "{:.3g}",
) -> str:
    """Render a nested mapping ``{row: {column: value}}`` as an aligned table."""
    col_width = max([len(c) for c in columns] + [10])
    row_label_width = max([len(r) for r in rows] + [12])
    lines = [title]
    header = " " * row_label_width + " | " + " | ".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row_name, row_values in rows.items():
        cells = []
        for column in columns:
            value = row_values.get(column)
            cells.append(
                f"{value_format.format(value):>{col_width}}" if value is not None else " " * col_width
            )
        lines.append(f"{row_name:<{row_label_width}} | " + " | ".join(cells))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.3g}",
) -> str:
    """Render one figure's line series as a table with the x values as columns."""
    rows = {
        name: {str(x): y for x, y in zip(x_values, ys)} for name, ys in series.items()
    }
    return format_table(
        f"{title}  (columns: {x_label})",
        rows,
        [str(x) for x in x_values],
        value_format=value_format,
    )
