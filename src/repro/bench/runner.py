"""Measurement helpers: compression ratios, operation timings, codec timings.

Besides the timing helpers, this module owns the machine-readable benchmark
output: :func:`write_bench_json` writes one ``BENCH_<name>.json`` snapshot
per run (schema version, git commit, platform fingerprint, records; an
existing file of the same name is replaced) so CI can archive each run as an
artifact and the perf trajectory accumulates across commits.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.compression.registry import get_scheme

#: Environment variable selecting where ``BENCH_*.json`` files are written.
BENCH_JSON_DIR_ENV = "BENCH_JSON_DIR"

#: Schema version stamped into every benchmark JSON file.
#: v2 added ``git_commit`` so each file is an attributable point on the
#: perf trajectory, not just a platform-stamped blob.  v3 stamps the
#: platform fingerprint from ``core/calibration.py`` (plus ``cpu_count``)
#: and a ``platform_key`` so the bench run registry can group runs by
#: machine class; v2 files remain ingestible (the registry derives the key
#: from the old platform dict).
BENCH_JSON_VERSION = 3


@functools.lru_cache(maxsize=1)
def current_git_commit() -> str | None:
    """HEAD commit hash of the repository containing this module, or None.

    Resolved relative to the package source (not the process CWD), so bench
    sessions launched from anywhere still attribute to the right commit.
    Returns ``None`` when the package is not itself inside a git checkout —
    an installed wheel whose site-packages happens to live under some
    unrelated repository must not stamp that repository's HEAD — or when
    git is unavailable.  Cached: HEAD cannot change within a process.
    """
    package_dir = Path(__file__).resolve().parent
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--show-toplevel", "HEAD"],
            cwd=package_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    lines = result.stdout.strip().splitlines()
    if len(lines) != 2:
        return None
    toplevel, commit = Path(lines[0]).resolve(), lines[1]
    return commit if commit and package_dir.is_relative_to(toplevel) else None


@dataclass(frozen=True)
class CompressionMeasurement:
    """Result of compressing one mini-batch with one scheme."""

    scheme: str
    dense_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def ratio(self) -> float:
        return self.dense_bytes / max(self.compressed_bytes, 1)


def measure_compression(scheme_name: str, minibatch: np.ndarray) -> CompressionMeasurement:
    """Compress and decompress one batch, measuring sizes and times."""
    scheme = get_scheme(scheme_name)
    dense_bytes = minibatch.shape[0] * minibatch.shape[1] * 8

    start = time.perf_counter()
    compressed = scheme.compress(minibatch)
    compress_seconds = time.perf_counter() - start

    start = time.perf_counter()
    decoded = compressed.to_dense()
    decompress_seconds = time.perf_counter() - start
    if decoded.shape != minibatch.shape:
        raise AssertionError(f"{scheme_name} round-trip changed the shape")

    return CompressionMeasurement(
        scheme=scheme_name,
        dense_bytes=dense_bytes,
        compressed_bytes=compressed.nbytes,
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
    )


def bench_json_path(name: str, directory: str | Path | None = None) -> Path:
    """Where ``write_bench_json`` will put the file for ``name``."""
    base = Path(directory) if directory is not None else Path(os.environ.get(BENCH_JSON_DIR_ENV, "."))
    return base / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    records: list[dict],
    directory: str | Path | None = None,
) -> Path:
    """Write benchmark ``records`` as ``BENCH_<name>.json`` and return the path.

    Records are plain dicts (dataclasses are converted); the envelope adds a
    schema version, the git commit of the source tree, and a platform
    fingerprint so accumulated files stay attributable and comparable across
    machines and commits.
    """
    # Function-level imports: core.calibration imports this module at top
    # level, and obs.registry is only needed when actually writing a file.
    from repro.core.calibration import platform_fingerprint
    from repro.obs.registry import platform_key

    path = bench_json_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    fingerprint = {**platform_fingerprint(), "cpu_count": os.cpu_count()}
    payload = {
        "version": BENCH_JSON_VERSION,
        "name": name,
        "created_unix": time.time(),
        "git_commit": current_git_commit(),
        "platform": fingerprint,
        "platform_key": platform_key(fingerprint),
        "records": [asdict(r) if hasattr(r, "__dataclass_fields__") else dict(r) for r in records],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def time_callable(func, repeats: int = 3, *, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``repeats`` calls, after ``warmup`` untimed ones.

    The first call of a cold kernel pays one-off costs (lazy imports, cache
    population, allocator warm-up) that do not recur; including it in a
    3-sample median skews small measurements badly, so it is burned off
    before sampling starts.  ``warmup=0`` restores the cold-start behaviour.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def time_matrix_ops(compressed, n_cols: int, n_rows: int, m_width: int = 20, repeats: int = 3,
                    seed: int = 0) -> dict[str, float]:
    """Time the five matrix operations of Figure 8 on one compressed batch."""
    rng = np.random.default_rng(seed)
    v_right = rng.normal(size=n_cols)
    v_left = rng.normal(size=n_rows)
    m_right = rng.normal(size=(n_cols, m_width))
    m_left = rng.normal(size=(m_width, n_rows))
    return {
        "A*c": time_callable(lambda: compressed.scale(2.0), repeats),
        "A*v": time_callable(lambda: compressed.matvec(v_right), repeats),
        "A*M": time_callable(lambda: compressed.matmat(m_right), repeats),
        "v*A": time_callable(lambda: compressed.rmatvec(v_left), repeats),
        "M*A": time_callable(lambda: compressed.rmatmat(m_left), repeats),
    }
