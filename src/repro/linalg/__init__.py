"""Scheme-agnostic linear-algebra dispatch helpers."""

from repro.linalg.ops import matmat, matvec, rmatmat, rmatvec, scale, to_dense

__all__ = ["matmat", "matvec", "rmatmat", "rmatvec", "scale", "to_dense"]
