"""Free-function dispatch over compressed matrices or plain NumPy arrays.

These helpers let numerical code be written once and run on anything:
a :class:`repro.compression.base.CompressedMatrix`, a SciPy sparse matrix,
or a plain ndarray.  They correspond to the four operation classes of
Section 4 of the paper and are what the benchmark harness times.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.compression.base import CompressedMatrix


def matvec(matrix, vector: np.ndarray) -> np.ndarray:
    """``A @ v`` for any supported matrix representation."""
    if isinstance(matrix, CompressedMatrix):
        return matrix.matvec(vector)
    if sp.issparse(matrix):
        return matrix @ np.asarray(vector, dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64) @ np.asarray(vector, dtype=np.float64)


def rmatvec(matrix, vector: np.ndarray) -> np.ndarray:
    """``v @ A`` for any supported matrix representation."""
    if isinstance(matrix, CompressedMatrix):
        return matrix.rmatvec(vector)
    if sp.issparse(matrix):
        return np.asarray(vector, dtype=np.float64) @ matrix
    return np.asarray(vector, dtype=np.float64) @ np.asarray(matrix, dtype=np.float64)


def matmat(matrix, other: np.ndarray) -> np.ndarray:
    """``A @ M`` for any supported matrix representation."""
    if isinstance(matrix, CompressedMatrix):
        return matrix.matmat(other)
    if sp.issparse(matrix):
        return matrix @ np.asarray(other, dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64) @ np.asarray(other, dtype=np.float64)


def rmatmat(matrix, other: np.ndarray) -> np.ndarray:
    """``M @ A`` for any supported matrix representation."""
    if isinstance(matrix, CompressedMatrix):
        return matrix.rmatmat(other)
    if sp.issparse(matrix):
        return np.asarray(other, dtype=np.float64) @ matrix
    return np.asarray(other, dtype=np.float64) @ np.asarray(matrix, dtype=np.float64)


def scale(matrix, scalar: float):
    """``A * c`` for any supported matrix representation (sparse-safe)."""
    if isinstance(matrix, CompressedMatrix):
        return matrix.scale(scalar)
    return matrix * float(scalar)


def to_dense(matrix) -> np.ndarray:
    """Fully materialise any supported matrix representation."""
    if isinstance(matrix, CompressedMatrix):
        return matrix.to_dense()
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64)
