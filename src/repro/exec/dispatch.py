"""Kernel dispatch over every supported matrix representation.

The seven kernels mirror how the paper's Section 4 classifies operations
(right/left multiplication, sparse-safe scaling, full decode) plus the
serving-side ``row_slice`` (decode a handful of rows without materialising
the block).  A :class:`KernelSet` binds one implementation of each kernel to
a *representation*; the module-level functions resolve the right set for the
argument and run it.

Resolution order:

1. :class:`~repro.compression.base.CompressedMatrix` — every registered
   compression scheme; kernels are the scheme's own compressed operations
   (TOC's Algorithms 4/5/7/8, CSR's SciPy kernels, ...), so this one entry
   covers all schemes including any mix of them inside one dataset;
2. SciPy sparse matrices;
3. plain NumPy arrays (anything ``np.asarray`` accepts);
4. duck-typed objects exposing the kernel methods (test doubles, wrappers).

New representations register with :func:`register_kernels`; callers
elsewhere in the codebase must go through these functions instead of
probing batches with ``isinstance``/``hasattr`` themselves.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.compression.base import CompressedMatrix

#: Kernel names a duck-typed representation may expose.
KERNEL_NAMES = ("matvec", "rmatvec", "matmat", "rmatmat", "scale", "to_dense", "row_slice")


@dataclass(frozen=True)
class KernelSet:
    """One implementation of each kernel for a single representation."""

    name: str
    matvec: Callable[[object, np.ndarray], np.ndarray]
    rmatvec: Callable[[object, np.ndarray], np.ndarray]
    matmat: Callable[[object, np.ndarray], np.ndarray]
    rmatmat: Callable[[object, np.ndarray], np.ndarray]
    scale: Callable[[object, float], object]
    to_dense: Callable[[object], np.ndarray]
    row_slice: Callable[[object, Sequence[int]], np.ndarray]
    #: Whether operations run on the compressed form (False: every op pays a
    #: full decode first — what the advisor's score discounts).
    direct_ops: Callable[[object], bool] = lambda matrix: True


# -- per-representation kernels ------------------------------------------------


def _as_dense(matrix) -> np.ndarray:
    return np.asarray(matrix, dtype=np.float64)


_COMPRESSED_KERNELS = KernelSet(
    name="compressed",
    matvec=lambda m, v: m.matvec(v),
    rmatvec=lambda m, v: m.rmatvec(v),
    matmat=lambda m, o: m.matmat(o),
    rmatmat=lambda m, o: m.rmatmat(o),
    scale=lambda m, c: m.scale(c),
    to_dense=lambda m: m.to_dense(),
    row_slice=lambda m, rows: m.row_slice(rows),
    direct_ops=lambda m: bool(m.supports_direct_ops),
)

_SPARSE_KERNELS = KernelSet(
    name="scipy-sparse",
    matvec=lambda m, v: m @ _as_dense(v),
    rmatvec=lambda m, v: _as_dense(v) @ m,
    matmat=lambda m, o: m @ _as_dense(o),
    rmatmat=lambda m, o: _as_dense(o) @ m,
    scale=lambda m, c: m * float(c),
    to_dense=lambda m: np.asarray(m.todense(), dtype=np.float64),
    row_slice=lambda m, rows: np.asarray(
        m.tocsr()[np.asarray(rows, dtype=np.intp)].todense(), dtype=np.float64
    ),
)

_NDARRAY_KERNELS = KernelSet(
    name="ndarray",
    matvec=lambda m, v: _as_dense(m) @ _as_dense(v),
    rmatvec=lambda m, v: _as_dense(v) @ _as_dense(m),
    matmat=lambda m, o: _as_dense(m) @ _as_dense(o),
    rmatmat=lambda m, o: _as_dense(o) @ _as_dense(m),
    scale=lambda m, c: _as_dense(m) * float(c),
    to_dense=_as_dense,
    row_slice=lambda m, rows: _as_dense(m)[np.asarray(rows, dtype=np.intp)].copy(),
)


def _duck_call(matrix, kernel: str, *args):
    method = getattr(matrix, kernel, None)
    if method is None:
        raise TypeError(
            f"{type(matrix).__name__} exposes no {kernel!r} kernel; "
            f"duck-typed batches must implement the kernels they are used with"
        )
    return method(*args)


_DUCK_KERNELS = KernelSet(
    name="duck",
    matvec=lambda m, v: _duck_call(m, "matvec", v),
    rmatvec=lambda m, v: _duck_call(m, "rmatvec", v),
    matmat=lambda m, o: _duck_call(m, "matmat", o),
    rmatmat=lambda m, o: _duck_call(m, "rmatmat", o),
    scale=lambda m, c: _duck_call(m, "scale", c),
    to_dense=lambda m: _duck_call(m, "to_dense"),
    row_slice=lambda m, rows: _duck_call(m, "row_slice", rows),
    direct_ops=lambda m: bool(getattr(m, "supports_direct_ops", True)),
)


def _is_duck(matrix) -> bool:
    return any(callable(getattr(matrix, kernel, None)) for kernel in KERNEL_NAMES)


def _is_ndarray_like(matrix) -> bool:
    if isinstance(matrix, np.ndarray):
        return True
    # Sequences of numbers (lists of lists) and anything implementing the
    # NumPy array protocols dispatch as arrays — but kernel-bearing objects
    # keep their own kernels even if they happen to be array-convertible.
    if isinstance(matrix, (list, tuple)) or np.isscalar(matrix):
        return True
    has_array_protocol = hasattr(matrix, "__array__") or hasattr(matrix, "__array_interface__")
    return has_array_protocol and not _is_duck(matrix)


# -- the dispatch table --------------------------------------------------------

#: Ordered (predicate, kernels) pairs; first match wins.  ``register_kernels``
#: inserts ahead of the duck-typed fallback.
_DISPATCH: list[tuple[Callable[[object], bool], KernelSet]] = [
    (lambda m: isinstance(m, CompressedMatrix), _COMPRESSED_KERNELS),
    (sp.issparse, _SPARSE_KERNELS),
    (_is_ndarray_like, _NDARRAY_KERNELS),
    (_is_duck, _DUCK_KERNELS),
]


def register_kernels(predicate: Callable[[object], bool], kernels: KernelSet) -> None:
    """Register kernels for a new representation (checked before the fallback)."""
    _DISPATCH.insert(len(_DISPATCH) - 1, (predicate, kernels))


def kernels_for(matrix) -> KernelSet:
    """Resolve the kernel set for ``matrix``; raises ``TypeError`` if none fits."""
    for predicate, kernels in _DISPATCH:
        if predicate(matrix):
            return kernels
    raise TypeError(
        f"no kernels registered for {type(matrix).__name__}; supported: "
        f"CompressedMatrix schemes, scipy sparse, ndarray, or objects "
        f"implementing {KERNEL_NAMES}"
    )


# -- public kernel entry points ------------------------------------------------


def matvec(matrix, vector: np.ndarray) -> np.ndarray:
    """``A @ v`` for any supported representation."""
    return kernels_for(matrix).matvec(matrix, vector)


def rmatvec(matrix, vector: np.ndarray) -> np.ndarray:
    """``v @ A`` for any supported representation."""
    return kernels_for(matrix).rmatvec(matrix, vector)


def matmat(matrix, other: np.ndarray) -> np.ndarray:
    """``A @ M`` for any supported representation."""
    return kernels_for(matrix).matmat(matrix, other)


def rmatmat(matrix, other: np.ndarray) -> np.ndarray:
    """``M @ A`` for any supported representation."""
    return kernels_for(matrix).rmatmat(matrix, other)


def scale(matrix, scalar: float):
    """``A * c`` (sparse-safe) in the same representation."""
    return kernels_for(matrix).scale(matrix, scalar)


def to_dense(matrix) -> np.ndarray:
    """Fully materialise any supported representation."""
    return kernels_for(matrix).to_dense(matrix)


def row_slice(matrix, rows: Sequence[int]) -> np.ndarray:
    """Dense copy of the selected rows, in request order (duplicates allowed).

    Schemes provide their own fast path (array slice for DEN, SciPy row
    indexing for CSR, a direct decode of the selected rows' code runs for
    TOC/CVI/DVI via the :mod:`repro.kernels` backends), so a point lookup
    never has to materialise the whole block.
    """
    return kernels_for(matrix).row_slice(matrix, rows)


def supports_direct_ops(matrix) -> bool:
    """Whether kernels run on the compressed form without a full decode."""
    return kernels_for(matrix).direct_ops(matrix)
