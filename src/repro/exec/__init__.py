"""repro.exec — the unified kernel-dispatch execution layer.

Every numerical consumer in the stack (the MGD models, the convolution
layer, the out-of-core trainer, the feature store) expresses its work as one
of seven kernels — ``matvec``, ``rmatvec``, ``matmat``, ``rmatmat``,
``scale``, ``to_dense``, ``row_slice`` — and this package owns resolving
each kernel for whatever representation the batch happens to be in: a
:class:`~repro.compression.base.CompressedMatrix` of any registered scheme,
a SciPy sparse matrix, a plain ndarray, or a duck-typed stand-in.

Dispatch lives *only* here.  Callers never probe representations with
``isinstance`` or ``hasattr`` themselves; they call the kernel functions and
the dispatcher picks the implementation.  That single choke point is what
lets per-shard heterogeneous compression (``scheme="auto"``) flow through
training and serving untouched: a TOC shard and a DEN shard of the same
dataset execute through the same seven entry points.

On top of the kernels sits the query layer: :mod:`repro.exec.predicates`
(predicate / aggregate expression objects and their textual parsers) and
:mod:`repro.exec.scan` (predicate push-down scans answered on the
compressed form where the scheme allows it, with a dense fallback
everywhere else).  :meth:`repro.api.Dataset.scan` and the CLI ``scan``
subcommand are thin shells over :func:`scan_shards`.
"""

from repro.exec.dispatch import (
    KernelSet,
    kernels_for,
    matmat,
    matvec,
    register_kernels,
    rmatmat,
    rmatvec,
    row_slice,
    scale,
    supports_direct_ops,
    to_dense,
)
from repro.exec.predicates import (
    Aggregate,
    And,
    Compare,
    Not,
    Or,
    Predicate,
    parse_aggregates,
    parse_predicate,
)
from repro.exec.scan import (
    ScanReader,
    ScanResult,
    register_scan_reader,
    scan_matrix,
    scan_reader_for,
    scan_shards,
)

__all__ = [
    "Aggregate",
    "And",
    "Compare",
    "KernelSet",
    "Not",
    "Or",
    "Predicate",
    "ScanReader",
    "ScanResult",
    "kernels_for",
    "matmat",
    "matvec",
    "parse_aggregates",
    "parse_predicate",
    "register_kernels",
    "register_scan_reader",
    "rmatmat",
    "rmatvec",
    "row_slice",
    "scale",
    "scan_matrix",
    "scan_reader_for",
    "scan_shards",
    "supports_direct_ops",
    "to_dense",
]
