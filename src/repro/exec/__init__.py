"""repro.exec — the unified kernel-dispatch execution layer.

Every numerical consumer in the stack (the MGD models, the convolution
layer, the out-of-core trainer, the feature store) expresses its work as one
of seven kernels — ``matvec``, ``rmatvec``, ``matmat``, ``rmatmat``,
``scale``, ``to_dense``, ``row_slice`` — and this package owns resolving
each kernel for whatever representation the batch happens to be in: a
:class:`~repro.compression.base.CompressedMatrix` of any registered scheme,
a SciPy sparse matrix, a plain ndarray, or a duck-typed stand-in.

Dispatch lives *only* here.  Callers never probe representations with
``isinstance`` or ``hasattr`` themselves; they call the kernel functions and
the dispatcher picks the implementation.  That single choke point is what
lets per-shard heterogeneous compression (``scheme="auto"``) flow through
training and serving untouched: a TOC shard and a DEN shard of the same
dataset execute through the same seven entry points.
"""

from repro.exec.dispatch import (
    KernelSet,
    kernels_for,
    matmat,
    matvec,
    register_kernels,
    rmatmat,
    rmatvec,
    row_slice,
    scale,
    supports_direct_ops,
    to_dense,
)

__all__ = [
    "KernelSet",
    "kernels_for",
    "matmat",
    "matvec",
    "register_kernels",
    "rmatmat",
    "rmatvec",
    "row_slice",
    "scale",
    "supports_direct_ops",
    "to_dense",
]
