"""Predicate push-down scans over compressed shards.

The paper's value-index and code-table encodings can answer selections and
aggregations *on the compressed data*: a comparison against a CVI/DVI shard
only has to test the (tiny) value dictionary and gather booleans through the
bit-packed codes, and column aggregates fall out of the code frequencies —
no dense block is ever materialised.  TOC shards extract the few columns a
predicate touches with the compressed right multiplication (Algorithm 4,
``A @ e_col``).  Everything else — DEN, CSR, CLA, the byte-block schemes —
runs the always-correct dense fallback: one ``to_dense`` per shard, then a
NumPy mask.

The executor mirrors :mod:`repro.exec.dispatch`: an ordered registry of
``(predicate, reader)`` pairs resolves the scan reader for each shard's
representation, and :func:`register_scan_reader` adds fast paths for new
schemes without touching the executor.  :func:`scan_shards` streams a whole
:class:`~repro.engine.shards.ShardedDataset` through a
:class:`~repro.storage.buffer_pool.BufferPool` into the per-shard scan,
combining selections (with an early-exit ``limit``) or aggregate partials
across shards.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.compression.cvi import CVIMatrix
from repro.compression.dvi import DVIMatrix
from repro.compression.toc_scheme import TOCCompressedMatrix
from repro.exec import dispatch
from repro.exec.predicates import (
    COMPARE_OPS,
    Aggregate,
    Predicate,
    parse_aggregates,
    parse_predicate,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


#: Above this matched fraction of a shard, materialising a selection through
#: one dense decode beats the compressed row gather (see ``_ShardContext.select``).
SELECT_DENSE_THRESHOLD = 0.25


# -- per-scheme readers --------------------------------------------------------


class ScanReader:
    """Column access on one compressed representation, without full decode.

    The three methods define everything a scan needs; the defaults derive
    ``compare`` and ``column_stats`` from ``column``, so a new scheme's
    reader only has to extract one column cheaply to join the fast path.
    """

    name = "reader"
    #: Whether this reader answers predicates on the compressed form (the
    #: dense fallback reader sets this False; scan stats count the split).
    pushdown = True
    #: Whether push-down pays off for *selections* too.  Readers whose only
    #: column access is a compressed matvec (TOC) set this False: a selection
    #: materialises the matching rows anyway, so probing columns first just
    #: adds work on top of the dense decode.  Aggregates still push down.
    selection_pushdown = True

    def column(self, matrix, col: int) -> np.ndarray:
        """One dense float64 column (implicit zeros included)."""
        raise NotImplementedError

    def compare(self, matrix, col: int, op: str, value: float) -> np.ndarray:
        """Boolean mask of rows where ``column OP value`` holds."""
        return COMPARE_OPS[op](self.column(matrix, col), value)

    def column_stats(
        self, matrix, col: int, mask: np.ndarray | None
    ) -> tuple[int, float, float, float] | None:
        """``(count, sum, min, max)`` of the column over the kept rows.

        Returns ``None`` when no rows are kept (min/max are undefined).
        """
        values = self.column(matrix, col)
        if mask is not None:
            values = values[mask]
        if values.size == 0:
            return None
        return values.size, float(values.sum()), float(values.min()), float(values.max())

    def select_rows(self, matrix, rows: np.ndarray) -> np.ndarray | None:
        """Materialise ``rows`` from the compressed form, or ``None``.

        ``None`` means this representation has no row gather cheaper than
        one dense decode (e.g. TOC, whose row slice is a selection matmul);
        the executor then materialises through the shard's dense block.
        """
        return None


class DVIReader(ScanReader):
    """Value-index push-down for DVI: probe the dictionary, gather codes.

    A comparison tests the ``k`` distinct dictionary values once, then maps
    the answer through the column's bit-packed codes — O(rows) boolean
    gathers instead of an O(rows x cols) float decode.  Aggregates come from
    the code frequencies (one ``bincount`` over the column codes).
    """

    name = "DVI-value-index"

    def _column_codes(self, matrix: DVIMatrix, col: int) -> np.ndarray:
        return matrix.value_index.codes.reshape(matrix.shape)[:, col]

    def column(self, matrix: DVIMatrix, col: int) -> np.ndarray:
        return matrix.value_index.dictionary[self._column_codes(matrix, col)]

    def compare(self, matrix: DVIMatrix, col: int, op: str, value: float) -> np.ndarray:
        dictionary_mask = COMPARE_OPS[op](matrix.value_index.dictionary, value)
        return dictionary_mask[self._column_codes(matrix, col)]

    def column_stats(self, matrix: DVIMatrix, col: int, mask: np.ndarray | None):
        codes = self._column_codes(matrix, col)
        if mask is not None:
            codes = codes[mask]
        if codes.size == 0:
            return None
        dictionary = matrix.value_index.dictionary
        frequencies = np.bincount(codes, minlength=dictionary.size)
        present = dictionary[frequencies > 0]
        total = float((frequencies * dictionary).sum())
        return int(codes.size), total, float(present.min()), float(present.max())

    def select_rows(self, matrix: DVIMatrix, rows: np.ndarray) -> np.ndarray:
        return dispatch.row_slice(matrix, rows)


class CVIReader(ScanReader):
    """Value-index push-down for CVI: stored cells via the dictionary, the
    rest are implicit zeros.

    Only the stored entries of the probed column are touched (an O(nnz)
    index scan); the predicate's answer for every unstored cell is the
    answer for 0.0, computed once.
    """

    name = "CVI-value-index"

    def _column_entries(self, matrix: CVIMatrix, col: int) -> tuple[np.ndarray, np.ndarray]:
        """``(row_ids, code_ids)`` of the stored cells in ``col``."""
        positions = np.flatnonzero(matrix.col_indices == col)
        rows = np.searchsorted(matrix.indptr, positions, side="right") - 1
        return rows, matrix.value_index.codes[positions]

    def column(self, matrix: CVIMatrix, col: int) -> np.ndarray:
        rows, codes = self._column_entries(matrix, col)
        values = np.zeros(matrix.n_rows, dtype=np.float64)
        values[rows] = matrix.value_index.dictionary[codes]
        return values

    def compare(self, matrix: CVIMatrix, col: int, op: str, value: float) -> np.ndarray:
        rows, codes = self._column_entries(matrix, col)
        dictionary_mask = COMPARE_OPS[op](matrix.value_index.dictionary, value)
        zero_holds = bool(COMPARE_OPS[op](0.0, value))
        mask = np.full(matrix.n_rows, zero_holds, dtype=bool)
        mask[rows] = dictionary_mask[codes]
        return mask

    def column_stats(self, matrix: CVIMatrix, col: int, mask: np.ndarray | None):
        rows, codes = self._column_entries(matrix, col)
        kept = matrix.n_rows if mask is None else int(np.count_nonzero(mask))
        if kept == 0:
            return None
        if mask is not None:
            within = mask[rows]
            rows, codes = rows[within], codes[within]
        dictionary = matrix.value_index.dictionary
        stored = dictionary[codes]
        total = float(stored.sum())
        lowest = float(stored.min()) if stored.size else 0.0
        highest = float(stored.max()) if stored.size else 0.0
        if rows.size < kept:  # implicit zeros are part of the column
            lowest, highest = min(lowest, 0.0), max(highest, 0.0)
        return kept, total, lowest, highest

    def select_rows(self, matrix: CVIMatrix, rows: np.ndarray) -> np.ndarray:
        return dispatch.row_slice(matrix, rows)


class CompressedOpsReader(ScanReader):
    """Generic push-down for direct-op schemes (TOC and its ablations).

    Columns are extracted with the compressed right multiplication
    ``A @ e_col`` (the paper's Algorithm 4 for TOC), so a predicate touching
    two columns costs two compressed matvecs, never a full decode.
    """

    name = "compressed-ops"
    selection_pushdown = False

    def column(self, matrix, col: int) -> np.ndarray:
        one_hot = np.zeros(matrix.n_cols, dtype=np.float64)
        one_hot[col] = 1.0
        return dispatch.matvec(matrix, one_hot)


class DenseFallbackReader(ScanReader):
    """The always-correct path: decode once per shard, mask with NumPy."""

    name = "dense-fallback"
    pushdown = False

    def column(self, matrix, col: int) -> np.ndarray:
        raise NotImplementedError  # the context serves columns off its dense block


#: Ordered ``(predicate, reader)`` pairs; first match wins, dense fallback last.
_SCAN_READERS: list[tuple[Callable[[object], bool], ScanReader]] = [
    (lambda m: isinstance(m, DVIMatrix), DVIReader()),
    (lambda m: isinstance(m, CVIMatrix), CVIReader()),
    (lambda m: isinstance(m, TOCCompressedMatrix), CompressedOpsReader()),
]

_DENSE_FALLBACK = DenseFallbackReader()


def register_scan_reader(predicate: Callable[[object], bool], reader: ScanReader) -> None:
    """Register a push-down reader for a new representation."""
    _SCAN_READERS.append((predicate, reader))


def scan_reader_for(matrix, pushdown: bool = True) -> ScanReader:
    """Resolve the scan reader for ``matrix`` (dense fallback when none fits)."""
    if pushdown:
        for predicate, reader in _SCAN_READERS:
            if predicate(matrix):
                return reader
    return _DENSE_FALLBACK


# -- the per-shard execution context -------------------------------------------


class _ShardContext:
    """Binds one shard's matrix to its reader, caching what it extracts.

    This is what predicate leaves evaluate against: ``compare`` routes to
    the reader's fast path, columns are extracted at most once, and the
    dense fallback materialises the block exactly once no matter how many
    leaves touch it.
    """

    def __init__(self, matrix, pushdown: bool = True, selection: bool = False):
        self.matrix = matrix
        reader = scan_reader_for(matrix, pushdown)
        if selection and not reader.selection_pushdown:
            reader = _DENSE_FALLBACK
        self.reader = reader
        self.pushdown = reader.pushdown
        self._dense: np.ndarray | None = None
        self._columns: dict[int, np.ndarray] = {}

    @property
    def n_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_cols(self) -> int:
        return self.matrix.shape[1]

    def _check_column(self, col: int) -> int:
        if not 0 <= col < self.n_cols:
            raise IndexError(f"column {col} out of range [0, {self.n_cols})")
        return col

    def dense(self) -> np.ndarray:
        if self._dense is None:
            self._dense = dispatch.to_dense(self.matrix)
        return self._dense

    def column(self, col: int) -> np.ndarray:
        col = self._check_column(col)
        cached = self._columns.get(col)
        if cached is None:
            if self.pushdown:
                cached = self.reader.column(self.matrix, col)
            else:
                cached = self.dense()[:, col]
            self._columns[col] = cached
        return cached

    def compare(self, col: int, op: str, value: float) -> np.ndarray:
        col = self._check_column(col)
        if self.pushdown and col not in self._columns:
            return self.reader.compare(self.matrix, col, op, value)
        return COMPARE_OPS[op](self.column(col), value)

    def column_stats(self, col: int, mask: np.ndarray | None):
        col = self._check_column(col)
        if self.pushdown:
            return self.reader.column_stats(self.matrix, col, mask)
        values = self.column(col)
        if mask is not None:
            values = values[mask]
        if values.size == 0:
            return None
        return values.size, float(values.sum()), float(values.min()), float(values.max())

    def select(self, local_rows: np.ndarray, columns: Sequence[int] | None) -> np.ndarray:
        """Materialise the selected rows (projected when ``columns`` given).

        Push-down ends at the predicate; materialisation picks whichever is
        cheaper.  A compressed row gather (when the reader has one) wins on
        selective results, but past :data:`SELECT_DENSE_THRESHOLD` of the
        shard one dense decode beats gathering row by row — and a dense
        block that some fallback already built is always reused.
        """
        if columns is not None:
            projected = [self.column(col) for col in columns]
            return np.column_stack([values[local_rows] for values in projected])
        selective = local_rows.size <= SELECT_DENSE_THRESHOLD * self.n_rows
        if self.pushdown and self._dense is None and selective:
            sliced = self.reader.select_rows(self.matrix, local_rows)
            if sliced is not None:
                return sliced
        return self.dense()[local_rows].copy()


# -- aggregate accumulation ----------------------------------------------------


@dataclass
class _AggregateState:
    """Cross-shard partials for one aggregate."""

    spec: Aggregate
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def update(self, context: _ShardContext, mask: np.ndarray | None) -> None:
        if self.spec.column is None:  # plain row count
            self.count += context.n_rows if mask is None else int(np.count_nonzero(mask))
            return
        stats = context.column_stats(self.spec.column, mask)
        if stats is None:
            return
        count, total, lowest, highest = stats
        self.count += count
        self.total += total
        self.minimum = lowest if self.minimum is None else min(self.minimum, lowest)
        self.maximum = highest if self.maximum is None else max(self.maximum, highest)

    def result(self) -> float | int | None:
        op = self.spec.op
        if op == "count":
            return self.count
        if op == "sum":
            return self.total
        if op == "min":
            return self.minimum
        if op == "max":
            return self.maximum
        # mean of zero rows is undefined, like SQL's AVG over no rows
        return self.total / self.count if self.count else None


# -- results -------------------------------------------------------------------


@dataclass
class ScanResult:
    """What one scan produced, plus how it executed.

    Selections fill ``rows`` / ``row_ids``; aggregate scans fill
    ``aggregates``.  ``pushdown_shards`` vs ``fallback_shards`` records how
    many shards were answered on the compressed form — what the benchmark
    gate and the CLI report.
    """

    rows: np.ndarray | None = None
    #: Global row ids of the selected rows (selection scans only).
    row_ids: np.ndarray | None = None
    columns: list[int] | None = None
    aggregates: dict[str, float | int | None] | None = None
    n_rows_scanned: int = 0
    n_rows_matched: int = 0
    shards_scanned: int = 0
    pushdown_shards: int = 0
    fallback_shards: int = 0
    schemes: dict[str, int] = field(default_factory=dict)

    @property
    def is_aggregate(self) -> bool:
        return self.aggregates is not None

    @property
    def selectivity(self) -> float:
        return self.n_rows_matched / self.n_rows_scanned if self.n_rows_scanned else 0.0


def scan_matrix(
    matrix,
    *,
    columns: Sequence[int] | None = None,
    where: Predicate | str | None = None,
    pushdown: bool = True,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Scan one compressed matrix: ``(selected_rows, local_row_ids, pushed)``.

    The single-shard building block, exposed for tests and ad-hoc use;
    multi-shard scans go through :func:`scan_shards`.
    """
    predicate = parse_predicate(where) if where is not None else None
    context = _ShardContext(matrix, pushdown, selection=True)
    if predicate is None:
        local_rows = np.arange(context.n_rows, dtype=np.intp)
    else:
        local_rows = np.flatnonzero(predicate.evaluate(context)).astype(np.intp)
    return context.select(local_rows, columns), local_rows, context.pushdown


def scan_shards(
    shard_stream,
    *,
    columns: Sequence[int] | None = None,
    where: Predicate | str | None = None,
    agg=None,
    limit: int | None = None,
    pushdown: bool = True,
) -> ScanResult:
    """Run one scan over a stream of ``(compressed_matrix, row_offset)`` pairs.

    ``shard_stream`` yields each shard's matrix with the global row id of its
    first row (what :meth:`repro.api.Dataset.scan` builds from the manifest
    through the buffer pool).  Selections honour ``limit`` with an early
    exit — once enough rows matched, remaining shards are never decoded.
    """
    with obs_trace.span("exec.scan", pushdown=pushdown):
        result = _scan_shards(
            shard_stream,
            columns=columns,
            where=where,
            agg=agg,
            limit=limit,
            pushdown=pushdown,
        )
    obs_metrics.counter("exec.scan.scans").inc()
    obs_metrics.counter("exec.scan.shards_pushdown").inc(result.pushdown_shards)
    obs_metrics.counter("exec.scan.shards_fallback").inc(result.fallback_shards)
    obs_metrics.counter("exec.scan.rows_scanned").inc(result.n_rows_scanned)
    obs_metrics.counter("exec.scan.rows_matched").inc(result.n_rows_matched)
    return result


def _scan_shards(
    shard_stream,
    *,
    columns: Sequence[int] | None = None,
    where: Predicate | str | None = None,
    agg=None,
    limit: int | None = None,
    pushdown: bool = True,
) -> ScanResult:
    predicate = parse_predicate(where) if where is not None else None
    aggregates = parse_aggregates(agg) if agg is not None else None
    if aggregates is not None:
        if columns is not None:
            raise ValueError("pass either columns (selection) or agg (aggregation), not both")
        if limit is not None:
            raise ValueError("limit applies to selections, not aggregates")
    if limit is not None and limit < 1:
        # limit=0 is always a caller bug: it would silently return an empty
        # result where "no limit" (None) was almost certainly meant.
        raise ValueError("limit must be at least 1")
    selected_columns = [int(c) for c in columns] if columns is not None else None

    result = ScanResult(columns=selected_columns)
    states = [_AggregateState(spec) for spec in aggregates] if aggregates else None
    collected_rows: list[np.ndarray] = []
    collected_ids: list[np.ndarray] = []
    remaining = limit
    n_cols_seen = 0

    for matrix, row_offset in shard_stream:
        context = _ShardContext(matrix, pushdown, selection=states is None)
        n_cols_seen = context.n_cols
        result.shards_scanned += 1
        result.n_rows_scanned += context.n_rows
        if context.pushdown:
            result.pushdown_shards += 1
        else:
            result.fallback_shards += 1
        scheme = getattr(matrix, "scheme_name", type(matrix).__name__)
        result.schemes[scheme] = result.schemes.get(scheme, 0) + 1

        mask = predicate.evaluate(context) if predicate is not None else None
        if states is not None:
            matched = context.n_rows if mask is None else int(np.count_nonzero(mask))
            result.n_rows_matched += matched
            for state in states:
                state.update(context, mask)
            continue

        if mask is None:
            local_rows = np.arange(context.n_rows, dtype=np.intp)
        else:
            local_rows = np.flatnonzero(mask).astype(np.intp)
        result.n_rows_matched += int(local_rows.size)
        if remaining is not None:
            local_rows = local_rows[:remaining]
        if local_rows.size:
            collected_rows.append(context.select(local_rows, selected_columns))
            collected_ids.append(local_rows + int(row_offset))
        if remaining is not None:
            remaining -= int(local_rows.size)
            if remaining <= 0:
                break

    if states is not None:
        result.aggregates = {state.spec.key: state.result() for state in states}
        return result

    if collected_rows:
        result.rows = np.concatenate(collected_rows, axis=0)
        result.row_ids = np.concatenate(collected_ids)
    else:
        width = len(selected_columns) if selected_columns is not None else n_cols_seen
        result.rows = np.empty((0, width), dtype=np.float64)
        result.row_ids = np.empty(0, dtype=np.intp)
    if limit is not None:
        result.n_rows_matched = min(result.n_rows_matched, limit)
    return result


__all__ = [
    "CVIReader",
    "CompressedOpsReader",
    "DVIReader",
    "DenseFallbackReader",
    "ScanReader",
    "ScanResult",
    "register_scan_reader",
    "scan_matrix",
    "scan_reader_for",
    "scan_shards",
]
