"""Predicate and aggregate expressions for scans over compressed shards.

A scan's ``where`` clause is a small expression tree over per-column
comparisons; its ``agg`` clause is a list of column aggregates.  Both are
plain data — the scan executor (:mod:`repro.exec.scan`) decides *how* each
leaf is evaluated per shard (a dictionary probe on value-indexed schemes, a
compressed column extraction on TOC, a NumPy mask on the dense fallback).

Expressions are built directly (``Compare(0, ">=", 0.5) & Compare(2, "==",
1.0)``) or parsed from the textual form the CLI uses::

    c0 >= 0.5 and (c2 == 1 or not c3 < 2)

Columns are spelled ``c<index>`` (a bare integer also parses in aggregate
specs); values are float literals.  ``and`` / ``or`` / ``not`` (or ``&`` /
``|`` / ``!``) combine comparisons, with ``or`` binding loosest and ``not``
tightest, exactly like SQL.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

#: Comparison operators a :class:`Compare` leaf may use, in textual form.
COMPARE_OPS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

#: Aggregate operations a scan can compute.  ``count`` needs no column.
AGGREGATE_OPS = ("count", "sum", "min", "max", "mean")


class Predicate:
    """Base class for the ``where`` expression tree."""

    def columns(self) -> set[int]:
        """Every column index the predicate touches."""
        raise NotImplementedError

    def evaluate(self, context) -> np.ndarray:
        """Boolean row mask for one shard.

        ``context`` is the executor's per-shard accessor; it must expose
        ``compare(column, op, value) -> bool ndarray``, which is where the
        per-scheme fast paths plug in.
        """
        raise NotImplementedError

    # sugar so predicates compose without touching the combinator classes
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """One leaf comparison: ``column OP value``."""

    column: int
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise ValueError(f"unknown comparison {self.op!r}; valid: {sorted(COMPARE_OPS)}")
        if isinstance(self.column, str):
            object.__setattr__(self, "column", _parse_column(self.column))
        if self.column < 0:
            raise ValueError("column index must be non-negative")

    def columns(self) -> set[int]:
        return {self.column}

    def evaluate(self, context) -> np.ndarray:
        return context.compare(self.column, self.op, float(self.value))

    def __str__(self) -> str:
        return f"c{self.column} {self.op} {self.value:g}"


@dataclass(frozen=True)
class And(Predicate):
    """All children must hold."""

    children: tuple[Predicate, ...]

    def __init__(self, children: Iterable[Predicate]):
        object.__setattr__(self, "children", tuple(children))
        if len(self.children) < 2:
            raise ValueError("And needs at least two children")

    def columns(self) -> set[int]:
        return set().union(*(child.columns() for child in self.children))

    def evaluate(self, context) -> np.ndarray:
        mask = self.children[0].evaluate(context)
        for child in self.children[1:]:
            mask = mask & child.evaluate(context)
        return mask

    def __str__(self) -> str:
        return "(" + " and ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Any child may hold."""

    children: tuple[Predicate, ...]

    def __init__(self, children: Iterable[Predicate]):
        object.__setattr__(self, "children", tuple(children))
        if len(self.children) < 2:
            raise ValueError("Or needs at least two children")

    def columns(self) -> set[int]:
        return set().union(*(child.columns() for child in self.children))

    def evaluate(self, context) -> np.ndarray:
        mask = self.children[0].evaluate(context)
        for child in self.children[1:]:
            mask = mask | child.evaluate(context)
        return mask

    def __str__(self) -> str:
        return "(" + " or ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """The child must not hold."""

    child: Predicate

    def columns(self) -> set[int]:
        return self.child.columns()

    def evaluate(self, context) -> np.ndarray:
        return ~self.child.evaluate(context)

    def __str__(self) -> str:
        return f"not {self.child}"


# -- aggregates ----------------------------------------------------------------


@dataclass(frozen=True)
class Aggregate:
    """One aggregate to compute over the rows the predicate keeps."""

    op: str
    column: int | None = None

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise ValueError(f"unknown aggregate {self.op!r}; valid: {AGGREGATE_OPS}")
        if self.op != "count" and self.column is None:
            raise ValueError(f"aggregate {self.op!r} needs a column (e.g. '{self.op}:c0')")
        if self.column is not None and self.column < 0:
            raise ValueError("column index must be non-negative")

    @property
    def key(self) -> str:
        """The name the aggregate's result is reported under."""
        if self.column is None:
            return self.op
        return f"{self.op}(c{self.column})"

    def __str__(self) -> str:
        return self.key


# -- parsing -------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<column>c\d+)"
    r"|(?P<number>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)"
    r"|(?P<op><=|>=|==|!=|<|>)"
    r"|(?P<and>and\b|&&?)"
    r"|(?P<or>or\b|\|\|?)"
    r"|(?P<not>not\b|!(?!=))"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r")",
    re.IGNORECASE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ValueError(f"cannot parse predicate at {remainder[:20]!r}")
        kind = match.lastgroup
        tokens.append((kind, match.group(kind)))
        position = match.end()
    return tokens


class _PredicateParser:
    """Recursive descent over ``or`` -> ``and`` -> ``not`` -> comparison."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        return self.tokens[self.position][0] if self.position < len(self.tokens) else None

    def take(self, kind: str) -> str:
        if self.peek() != kind:
            found = self.tokens[self.position][1] if self.peek() else "end of input"
            raise ValueError(f"expected {kind} but found {found!r}")
        value = self.tokens[self.position][1]
        self.position += 1
        return value

    def parse(self) -> Predicate:
        expression = self.parse_or()
        if self.peek() is not None:
            raise ValueError(f"trailing input from {self.tokens[self.position][1]!r}")
        return expression

    def parse_or(self) -> Predicate:
        children = [self.parse_and()]
        while self.peek() == "or":
            self.take("or")
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else Or(children)

    def parse_and(self) -> Predicate:
        children = [self.parse_not()]
        while self.peek() == "and":
            self.take("and")
            children.append(self.parse_not())
        return children[0] if len(children) == 1 else And(children)

    def parse_not(self) -> Predicate:
        if self.peek() == "not":
            self.take("not")
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Predicate:
        if self.peek() == "lparen":
            self.take("lparen")
            inner = self.parse_or()
            self.take("rparen")
            return inner
        column = int(self.take("column")[1:])
        op = self.take("op")
        value = float(self.take("number"))
        return Compare(column, op, value)


def parse_predicate(text: str | Predicate) -> Predicate:
    """Parse the textual ``where`` form (pass-through for built predicates)."""
    if isinstance(text, Predicate):
        return text
    tokens = _tokenize(str(text))
    if not tokens:
        raise ValueError("empty predicate")
    return _PredicateParser(tokens).parse()


def _parse_column(text: str) -> int:
    text = text.strip().lower()
    if text.startswith("c"):
        text = text[1:]
    if not text.isdigit():
        raise ValueError(f"bad aggregate column {text!r}; use 'c<index>' or an integer")
    return int(text)


def parse_aggregate(spec: str | Aggregate) -> Aggregate:
    """Parse one aggregate spec: ``"count"`` or ``"<op>:<column>"``."""
    if isinstance(spec, Aggregate):
        return spec
    text = str(spec).strip().lower()
    if ":" not in text:
        if text != "count":
            raise ValueError(
                f"aggregate {spec!r} needs a column, e.g. '{text}:c0' (only 'count' stands alone)"
            )
        return Aggregate("count")
    op, _, column = text.partition(":")
    return Aggregate(op.strip(), _parse_column(column))


def parse_aggregates(spec) -> list[Aggregate]:
    """Parse an aggregate clause: one spec, a comma-joined string, or a list."""
    if isinstance(spec, (str, Aggregate)):
        if isinstance(spec, str) and "," in spec:
            parts: Sequence = [part for part in spec.split(",") if part.strip()]
        else:
            parts = [spec]
    else:
        parts = list(spec)
    if not parts:
        raise ValueError("empty aggregate clause")
    return [parse_aggregate(part) for part in parts]


__all__ = [
    "AGGREGATE_OPS",
    "Aggregate",
    "And",
    "COMPARE_OPS",
    "Compare",
    "Not",
    "Or",
    "Predicate",
    "parse_aggregate",
    "parse_aggregates",
    "parse_predicate",
]
