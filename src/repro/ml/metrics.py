"""Evaluation metrics for the MGD experiments."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of predictions equal to the targets."""
    p = np.asarray(predictions).ravel()
    t = np.asarray(targets).ravel()
    if p.size != t.size:
        raise ValueError("predictions and targets must have the same length")
    if p.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float(np.mean(p == t))


def error_rate(predictions: np.ndarray, targets: np.ndarray) -> float:
    """1 - accuracy, reported as a percentage like the paper's Figure 11."""
    return 100.0 * (1.0 - accuracy(predictions, targets))


def log_loss(probabilities: np.ndarray, targets: np.ndarray) -> float:
    """Binary cross-entropy of class-1 probabilities against {0,1} targets."""
    p = np.clip(np.asarray(probabilities, dtype=np.float64).ravel(), 1e-12, 1 - 1e-12)
    t = np.asarray(targets, dtype=np.float64).ravel()
    if p.size != t.size:
        raise ValueError("probabilities and targets must have the same length")
    return float(-np.mean(t * np.log(p) + (1 - t) * np.log(1 - p)))


def mean_squared_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error for the regression workloads."""
    p = np.asarray(predictions, dtype=np.float64).ravel()
    t = np.asarray(targets, dtype=np.float64).ravel()
    if p.size != t.size:
        raise ValueError("predictions and targets must have the same length")
    return float(np.mean((p - t) ** 2))
