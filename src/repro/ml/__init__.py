"""MGD training substrate.

Implements the ML workloads of the paper's evaluation — Logistic regression,
Linear regression, linear SVM, and a feed-forward neural network — trained
with mini-batch stochastic gradient descent over *compressed* mini-batches.
All gradient computations are expressed through the four compressed matrix
operations of Section 4 (``A @ v``, ``v @ A``, ``A @ M``, ``M @ A``), so the
same model code runs unchanged on every compression scheme.
"""

from repro.ml.convolution import CompressedConv2d, conv2d_direct, im2col
from repro.ml.losses import CrossEntropyLoss, HingeLoss, LogisticLoss, SquaredLoss
from repro.ml.metrics import accuracy, error_rate, log_loss
from repro.ml.models import (
    FeedForwardNetwork,
    LinearRegressionModel,
    LinearSVMModel,
    LogisticRegressionModel,
)
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent

__all__ = [
    "CompressedConv2d",
    "CrossEntropyLoss",
    "FeedForwardNetwork",
    "GradientDescentConfig",
    "HingeLoss",
    "LinearRegressionModel",
    "LinearSVMModel",
    "LogisticLoss",
    "LogisticRegressionModel",
    "MiniBatchGradientDescent",
    "OneVsRestClassifier",
    "SquaredLoss",
    "accuracy",
    "conv2d_direct",
    "error_rate",
    "im2col",
    "log_loss",
]
