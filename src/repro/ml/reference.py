"""Reference (uncompressed) training loops standing in for other ML systems.

The paper's Table 6 / Figure 11 compare Bismarck+TOC against ScikitLearn and
TensorFlow running on DEN or CSR encodings.  Within this repo those systems'
role is "an MGD loop over DEN/CSR data with no TOC": this module provides
exactly that, implemented directly on NumPy / SciPy so it does not share the
compressed-operation code path, plus a NumPy batch-gradient-descent loop for
the Figure 2 optimiser-efficiency experiment.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ml.losses import LogisticLoss


def train_logistic_dense(
    features: np.ndarray,
    labels: np.ndarray,
    epochs: int = 10,
    batch_size: int = 250,
    learning_rate: float = 0.1,
    seed: int | None = 0,
) -> np.ndarray:
    """Reference dense mini-batch logistic regression (ScikitLearnDEN stand-in)."""
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64).ravel()
    rng = np.random.default_rng(seed)
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    weights = np.zeros(x.shape[1])
    bias = 0.0
    loss = LogisticLoss()
    for _ in range(epochs):
        for start in range(0, x.shape[0], batch_size):
            bx = x[start : start + batch_size]
            by = y[start : start + batch_size]
            grad_scores = loss.gradient(bx @ weights + bias, by)
            weights -= learning_rate * (grad_scores @ bx)
            bias -= learning_rate * float(grad_scores.sum())
    return np.concatenate([weights, [bias]])


def train_logistic_csr(
    features: np.ndarray,
    labels: np.ndarray,
    epochs: int = 10,
    batch_size: int = 250,
    learning_rate: float = 0.1,
    seed: int | None = 0,
) -> np.ndarray:
    """Reference CSR mini-batch logistic regression (ScikitLearnCSR stand-in)."""
    x = sp.csr_matrix(np.asarray(features, dtype=np.float64))
    y = np.asarray(labels, dtype=np.float64).ravel()
    rng = np.random.default_rng(seed)
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    weights = np.zeros(x.shape[1])
    bias = 0.0
    loss = LogisticLoss()
    for _ in range(epochs):
        for start in range(0, x.shape[0], batch_size):
            bx = x[start : start + batch_size]
            by = y[start : start + batch_size]
            grad_scores = loss.gradient(bx @ weights + bias, by)
            weights -= learning_rate * np.asarray(grad_scores @ bx).ravel()
            bias -= learning_rate * float(grad_scores.sum())
    return np.concatenate([weights, [bias]])


def gradient_descent_spectrum(
    features: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    epochs: int,
    learning_rate: float = 0.5,
    seed: int | None = 0,
) -> list[float]:
    """Per-epoch accuracy of logistic MGD with an arbitrary batch size.

    Setting ``batch_size=1`` yields SGD and ``batch_size=n_rows`` yields BGD,
    reproducing the spectrum of Figure 2 with a logistic model (the paper
    uses a small neural network; the convergence-stability trade-off between
    the variants is the property being shown and is model-agnostic).
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64).ravel()
    rng = np.random.default_rng(seed)
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    weights = np.zeros(x.shape[1])
    bias = 0.0
    loss = LogisticLoss()
    accuracies: list[float] = []
    for _ in range(epochs):
        for start in range(0, x.shape[0], batch_size):
            bx = x[start : start + batch_size]
            by = y[start : start + batch_size]
            grad_scores = loss.gradient(bx @ weights + bias, by)
            weights -= learning_rate * (grad_scores @ bx)
            bias -= learning_rate * float(grad_scores.sum())
        predictions = (loss.predict_proba(x @ weights + bias) >= 0.5).astype(np.float64)
        accuracies.append(float(np.mean(predictions == y)))
    return accuracies
