"""Convolution via im2col over TOC-compressed replicated matrices (Section 6).

The paper's discussion section observes that convolutional layers can use
TOC too: the standard image-to-column (im2col) transformation replicates
each sliding window into a matrix row, after which the convolution is a
plain matrix multiplication — and the replication introduces exactly the
kind of repeated column-value sequences TOC compresses well.

This module provides:

* :func:`im2col` — the replication transform for a batch of single- or
  multi-channel images;
* :func:`conv2d_direct` — reference direct convolution (used by tests);
* :class:`CompressedConv2d` — a convolution layer whose im2col matrix is
  compressed once with any registered scheme and whose forward pass is the
  compressed ``A @ M`` operation, dispatched through :mod:`repro.exec`.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedMatrix
from repro.compression.registry import get_scheme
from repro.exec import matmat


def im2col(
    images: np.ndarray, kernel_size: int, stride: int = 1
) -> tuple[np.ndarray, tuple[int, int, int]]:
    """Unfold sliding windows of ``images`` into matrix rows.

    Parameters
    ----------
    images:
        Array of shape ``(batch, height, width)`` or ``(batch, channels,
        height, width)``.
    kernel_size:
        Side length of the square convolution kernel.
    stride:
        Window stride.

    Returns
    -------
    A pair ``(matrix, (batch, out_height, out_width))`` where ``matrix`` has
    one row per output pixel per image and ``channels * kernel_size**2``
    columns, so a convolution with ``k`` filters is ``matrix @ W`` with ``W``
    of shape ``(channels * kernel_size**2, k)``.
    """
    array = np.asarray(images, dtype=np.float64)
    if array.ndim == 3:
        array = array[:, None, :, :]
    if array.ndim != 4:
        raise ValueError("im2col expects (batch, height, width) or (batch, channels, height, width)")
    if kernel_size <= 0 or stride <= 0:
        raise ValueError("kernel_size and stride must be positive")
    batch, channels, height, width = array.shape
    if kernel_size > height or kernel_size > width:
        raise ValueError("kernel does not fit inside the image")

    out_height = (height - kernel_size) // stride + 1
    out_width = (width - kernel_size) // stride + 1
    rows = []
    for image in array:
        for i in range(out_height):
            for j in range(out_width):
                window = image[
                    :,
                    i * stride : i * stride + kernel_size,
                    j * stride : j * stride + kernel_size,
                ]
                rows.append(window.ravel())
    matrix = np.asarray(rows, dtype=np.float64)
    return matrix, (batch, out_height, out_width)


def conv2d_direct(images: np.ndarray, kernels: np.ndarray, stride: int = 1) -> np.ndarray:
    """Reference direct 2-D convolution (valid padding).

    ``kernels`` has shape ``(n_filters, channels, kernel, kernel)``; the
    result has shape ``(batch, n_filters, out_height, out_width)``.
    """
    array = np.asarray(images, dtype=np.float64)
    if array.ndim == 3:
        array = array[:, None, :, :]
    kernels = np.asarray(kernels, dtype=np.float64)
    n_filters, channels, kernel_size, _ = kernels.shape
    matrix, (batch, out_height, out_width) = im2col(array, kernel_size, stride)
    weights = kernels.reshape(n_filters, channels * kernel_size * kernel_size).T
    output = matrix @ weights
    return output.reshape(batch, out_height, out_width, n_filters).transpose(0, 3, 1, 2)


class CompressedConv2d:
    """A convolution layer executing over a compressed im2col matrix.

    The im2col matrix of a batch is compressed once (the analogue of
    compressing a mini-batch) and each forward pass — possibly with updated
    kernels, as in training — is the compressed ``A @ M`` operation.
    """

    def __init__(self, kernel_size: int, stride: int = 1, scheme: str = "TOC"):
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.scheme_name = scheme
        self._compressed: CompressedMatrix | None = None
        self._output_shape: tuple[int, int, int] | None = None
        self._n_columns: int | None = None

    def bind(self, images: np.ndarray) -> "CompressedConv2d":
        """Unfold and compress the batch; returns ``self`` for chaining."""
        matrix, output_shape = im2col(images, self.kernel_size, self.stride)
        self._compressed = get_scheme(self.scheme_name).compress(matrix)
        self._output_shape = output_shape
        self._n_columns = matrix.shape[1]
        return self

    @property
    def compressed(self) -> CompressedMatrix:
        if self._compressed is None:
            raise RuntimeError("bind() must be called before using the layer")
        return self._compressed

    @property
    def compression_ratio(self) -> float:
        """Ratio of the dense im2col matrix over its compressed size."""
        return self.compressed.compression_ratio()

    def forward(self, kernels: np.ndarray) -> np.ndarray:
        """Convolve the bound batch with ``kernels`` (shape ``(f, c, k, k)``)."""
        compressed = self.compressed  # raises if bind() was never called
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 4 or kernels.shape[2] != self.kernel_size:
            raise ValueError("kernels must have shape (filters, channels, kernel, kernel)")
        n_filters = kernels.shape[0]
        weights = kernels.reshape(n_filters, -1).T
        if weights.shape[0] != self._n_columns:
            raise ValueError(
                f"kernels cover {weights.shape[0]} inputs, the bound batch has {self._n_columns}"
            )
        output = matmat(compressed, weights)
        batch, out_height, out_width = self._output_shape
        return output.reshape(batch, out_height, out_width, n_filters).transpose(0, 3, 1, 2)
