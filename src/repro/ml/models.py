"""ML models trained with MGD over compressed mini-batches.

Each model exposes

* ``scores(batch)`` — raw model outputs for a (compressed) mini-batch,
* ``gradient_step(batch, targets, learning_rate)`` — one MGD parameter
  update computed *through the compressed matrix operations*,
* ``loss(batch, targets)`` and ``predict(batch)`` for evaluation.

``batch`` may be anything the :mod:`repro.exec` dispatch layer understands —
a :class:`repro.compression.base.CompressedMatrix` of any scheme, a SciPy
sparse matrix, or a plain NumPy array — so the same model runs on every
scheme, including datasets whose shards mix schemes.

The mapping between models and the compressed core ops follows Table 1 of
the paper: the generalised linear models need ``A @ v`` (forward scores) and
``v @ A`` (gradient aggregation); the feed-forward network needs ``A @ M``
and ``M @ A``.  All four are invoked through :mod:`repro.exec`, which owns
resolving the kernel for the batch's representation.
"""

from __future__ import annotations

import numpy as np

from repro import exec as kernels
from repro.ml.losses import CrossEntropyLoss, HingeLoss, LogisticLoss, SquaredLoss


class _LinearModel:
    """Shared machinery for the generalised linear models (LR / SVM / LinReg)."""

    #: Core matrix ops used, as listed in Table 1 of the paper.
    core_ops = ("matvec", "rmatvec")

    def __init__(self, n_features: int, loss, l2: float = 0.0, seed: int | None = 0):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(scale=0.01, size=n_features)
        self.bias = 0.0
        self.loss_fn = loss
        self.l2 = float(l2)

    @property
    def n_features(self) -> int:
        return int(self.weights.size)

    def scores(self, batch) -> np.ndarray:
        """Raw scores ``A @ w + b`` via the compressed right multiplication."""
        return kernels.matvec(batch, self.weights) + self.bias

    def loss(self, batch, targets: np.ndarray) -> float:
        value = self.loss_fn.value(self.scores(batch), targets)
        if self.l2:
            value += 0.5 * self.l2 * float(self.weights @ self.weights)
        return value

    def gradient(self, batch, targets: np.ndarray) -> tuple[np.ndarray, float]:
        """Gradient w.r.t. (weights, bias) using ``A @ v`` then ``v @ A``."""
        score_grad = self.loss_fn.gradient(self.scores(batch), targets)
        weight_grad = kernels.rmatvec(batch, score_grad)
        if self.l2:
            weight_grad = weight_grad + self.l2 * self.weights
        bias_grad = float(np.sum(score_grad))
        return weight_grad, bias_grad

    def gradient_step(self, batch, targets: np.ndarray, learning_rate: float) -> None:
        weight_grad, bias_grad = self.gradient(batch, targets)
        self.weights -= learning_rate * weight_grad
        self.bias -= learning_rate * bias_grad

    def get_parameters(self) -> np.ndarray:
        """Flattened parameter vector (weights then bias)."""
        return np.concatenate([self.weights, [self.bias]])

    def set_parameters(self, parameters: np.ndarray) -> None:
        parameters = np.asarray(parameters, dtype=np.float64).ravel()
        if parameters.size != self.weights.size + 1:
            raise ValueError("parameter vector has the wrong length")
        self.weights = parameters[:-1].copy()
        self.bias = float(parameters[-1])


class LinearRegressionModel(_LinearModel):
    """Linear regression with mean squared loss."""

    name = "linear_regression"

    def __init__(self, n_features: int, l2: float = 0.0, seed: int | None = 0):
        super().__init__(n_features, SquaredLoss(), l2=l2, seed=seed)

    def predict(self, batch) -> np.ndarray:
        return self.scores(batch)


class LogisticRegressionModel(_LinearModel):
    """Binary logistic regression with logistic loss (labels in {0, 1})."""

    name = "logistic_regression"

    def __init__(self, n_features: int, l2: float = 0.0, seed: int | None = 0):
        super().__init__(n_features, LogisticLoss(), l2=l2, seed=seed)

    def predict_proba(self, batch) -> np.ndarray:
        return self.loss_fn.predict_proba(self.scores(batch))

    def predict(self, batch) -> np.ndarray:
        return (self.predict_proba(batch) >= 0.5).astype(np.float64)


class LinearSVMModel(_LinearModel):
    """Linear support vector machine with hinge loss (labels in {0, 1})."""

    name = "svm"

    def __init__(self, n_features: int, l2: float = 1e-4, seed: int | None = 0):
        super().__init__(n_features, HingeLoss(), l2=l2, seed=seed)

    def predict(self, batch) -> np.ndarray:
        return (self.scores(batch) >= 0.0).astype(np.float64)


class FeedForwardNetwork:
    """A feed-forward neural network with sigmoid hidden layers.

    Mirrors the paper's network: one or two hidden layers (the end-to-end
    experiments use 200 and 50 neurons), sigmoid activations, and a sigmoid
    (binary) or softmax (multi-class) output trained with cross-entropy.
    The forward pass over a compressed batch uses ``A @ M``; the backward
    pass pushes the first-layer gradient through ``M @ A`` — the two extra
    core ops of Table 1.
    """

    name = "neural_network"
    core_ops = ("matmat", "rmatmat")

    def __init__(
        self,
        n_features: int,
        hidden_sizes: tuple[int, ...] = (200, 50),
        n_classes: int = 2,
        l2: float = 0.0,
        seed: int | None = 0,
    ):
        if n_features <= 0 or n_classes < 2:
            raise ValueError("n_features must be positive and n_classes at least 2")
        if not hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        rng = np.random.default_rng(seed)
        self.n_classes = int(n_classes)
        self.l2 = float(l2)
        n_outputs = self.n_classes
        sizes = [n_features, *hidden_sizes, n_outputs]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(rng.normal(scale=scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._loss = CrossEntropyLoss()

    @property
    def n_features(self) -> int:
        return int(self.weights[0].shape[0])

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return out

    def _forward(self, batch) -> tuple[list[np.ndarray], np.ndarray]:
        """Return hidden activations and output scores for a batch."""
        # First layer: compressed right multiplication A @ W1.
        pre = kernels.matmat(batch, self.weights[0]) + self.biases[0]
        activations = [self._sigmoid(pre)]
        for weight, bias in zip(self.weights[1:-1], self.biases[1:-1]):
            pre = activations[-1] @ weight + bias
            activations.append(self._sigmoid(pre))
        scores = activations[-1] @ self.weights[-1] + self.biases[-1]
        return activations, scores

    def scores(self, batch) -> np.ndarray:
        return self._forward(batch)[1]

    def loss(self, batch, targets: np.ndarray) -> float:
        value = self._loss.value(self.scores(batch), targets)
        if self.l2:
            value += 0.5 * self.l2 * sum(float(np.sum(w * w)) for w in self.weights)
        return value

    def predict(self, batch) -> np.ndarray:
        return np.argmax(self.scores(batch), axis=1).astype(np.float64)

    def gradient_step(self, batch, targets: np.ndarray, learning_rate: float) -> None:
        """One backprop + SGD update over a (compressed) mini-batch."""
        activations, scores = self._forward(batch)
        delta = self._loss.gradient(scores, targets)  # (n, n_classes)

        weight_grads: list[np.ndarray] = [None] * len(self.weights)
        bias_grads: list[np.ndarray] = [None] * len(self.biases)

        # Output layer and hidden-to-hidden layers use dense ops.
        for layer in range(len(self.weights) - 1, 0, -1):
            weight_grads[layer] = activations[layer - 1].T @ delta
            bias_grads[layer] = delta.sum(axis=0)
            upstream = delta @ self.weights[layer].T
            sigma = activations[layer - 1]
            delta = upstream * sigma * (1.0 - sigma)

        # First layer gradient: (delta^T @ A)^T computed with the compressed
        # left multiplication M @ A.
        weight_grads[0] = kernels.rmatmat(batch, delta.T).T
        bias_grads[0] = delta.sum(axis=0)

        for layer, (w_grad, b_grad) in enumerate(zip(weight_grads, bias_grads)):
            if self.l2:
                w_grad = w_grad + self.l2 * self.weights[layer]
            self.weights[layer] -= learning_rate * w_grad
            self.biases[layer] -= learning_rate * b_grad

    def get_parameters(self) -> np.ndarray:
        """Flattened parameter vector (used by the storage arena)."""
        parts = [w.ravel() for w in self.weights] + [b.ravel() for b in self.biases]
        return np.concatenate(parts)

    def set_parameters(self, parameters: np.ndarray) -> None:
        parameters = np.asarray(parameters, dtype=np.float64).ravel()
        cursor = 0
        for i, w in enumerate(self.weights):
            size = w.size
            self.weights[i] = parameters[cursor : cursor + size].reshape(w.shape).copy()
            cursor += size
        for i, b in enumerate(self.biases):
            size = b.size
            self.biases[i] = parameters[cursor : cursor + size].copy()
            cursor += size
        if cursor != parameters.size:
            raise ValueError("parameter vector has the wrong length")
