"""Loss functions used by the paper's workloads and their gradients.

Each loss exposes ``value(scores, targets)`` and ``gradient(scores, targets)``
where ``scores`` are the raw model outputs for a mini-batch and the gradient
is taken with respect to the scores.  The chain rule back to the model
parameters happens in the model classes, which is where the compressed
``v @ A`` / ``M @ A`` operations enter.
"""

from __future__ import annotations

import numpy as np


def _as_1d(array: np.ndarray) -> np.ndarray:
    return np.asarray(array, dtype=np.float64).ravel()


class SquaredLoss:
    """Mean squared loss, ``0.5 * (y - s)^2`` — Linear regression."""

    name = "squared"

    def value(self, scores: np.ndarray, targets: np.ndarray) -> float:
        s, y = _as_1d(scores), _as_1d(targets)
        return float(0.5 * np.mean((y - s) ** 2))

    def gradient(self, scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
        s, y = _as_1d(scores), _as_1d(targets)
        return (s - y) / s.size


class LogisticLoss:
    """Logistic loss on labels in {0, 1} — Logistic regression."""

    name = "logistic"

    @staticmethod
    def _sigmoid(scores: np.ndarray) -> np.ndarray:
        out = np.empty_like(scores)
        positive = scores >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-scores[positive]))
        exp_s = np.exp(scores[~positive])
        out[~positive] = exp_s / (1.0 + exp_s)
        return out

    def value(self, scores: np.ndarray, targets: np.ndarray) -> float:
        s, y = _as_1d(scores), _as_1d(targets)
        # Numerically stable log(1 + exp(-z)) with z = +/- s depending on y.
        z = np.where(y > 0.5, s, -s)
        return float(np.mean(np.logaddexp(0.0, -z)))

    def gradient(self, scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
        s, y = _as_1d(scores), _as_1d(targets)
        return (self._sigmoid(s) - y) / s.size

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """Class-1 probability for raw scores."""
        return self._sigmoid(_as_1d(scores))


class HingeLoss:
    """Hinge loss on labels in {0, 1} (internally mapped to ±1) — linear SVM."""

    name = "hinge"

    def value(self, scores: np.ndarray, targets: np.ndarray) -> float:
        s, y = _as_1d(scores), _as_1d(targets)
        signed = np.where(y > 0.5, 1.0, -1.0)
        return float(np.mean(np.maximum(0.0, 1.0 - signed * s)))

    def gradient(self, scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
        s, y = _as_1d(scores), _as_1d(targets)
        signed = np.where(y > 0.5, 1.0, -1.0)
        active = (signed * s) < 1.0
        return np.where(active, -signed, 0.0) / s.size


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels — neural networks."""

    name = "cross_entropy"

    @staticmethod
    def _softmax(scores: np.ndarray) -> np.ndarray:
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def value(self, scores: np.ndarray, targets: np.ndarray) -> float:
        probs = self._softmax(np.asarray(scores, dtype=np.float64))
        labels = np.asarray(targets, dtype=np.int64).ravel()
        picked = probs[np.arange(labels.size), labels]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def gradient(self, scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probs = self._softmax(np.asarray(scores, dtype=np.float64))
        labels = np.asarray(targets, dtype=np.int64).ravel()
        grad = probs.copy()
        grad[np.arange(labels.size), labels] -= 1.0
        return grad / labels.size
