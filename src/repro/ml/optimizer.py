"""Mini-batch stochastic gradient descent (the paper's Equation 2).

The optimizer covers the whole gradient-descent spectrum by varying the
mini-batch size: one row per batch is SGD, the whole dataset is BGD, and
anything in between is MGD (Section 2.1.2).  Batches are compressed once
with the chosen scheme (shuffle-once, Section 2.1.3) and revisited every
epoch; the per-batch update is delegated to the model's ``gradient_step``,
which routes all linear algebra through the compressed matrix operations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import CompressionScheme
from repro.data.minibatch import split_minibatches


@dataclass
class GradientDescentConfig:
    """Hyper-parameters of the MGD loop."""

    batch_size: int = 250
    epochs: int = 10
    learning_rate: float = 0.1
    learning_rate_decay: float = 1.0
    shuffle_seed: int | None = 0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 < self.learning_rate_decay <= 1.0:
            raise ValueError("learning_rate_decay must be in (0, 1]")


@dataclass
class TrainingHistory:
    """Per-epoch record of the training run."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_times: list[float] = field(default_factory=list)
    epoch_metrics: list[float] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return float(sum(self.epoch_times))

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]


class MiniBatchGradientDescent:
    """The MGD training loop over compressed mini-batches."""

    def __init__(self, config: GradientDescentConfig | None = None):
        self.config = config or GradientDescentConfig()

    def prepare_batches(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        scheme: CompressionScheme | None = None,
    ) -> list[tuple[object, np.ndarray]]:
        """Shuffle once, split, and compress every mini-batch with ``scheme``.

        With ``scheme=None`` the raw NumPy batches are returned (useful for
        testing and for the uncompressed reference loops).
        """
        raw_batches = split_minibatches(
            features,
            labels,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.shuffle_seed,
        )
        prepared = []
        for batch_x, batch_y in raw_batches:
            compressed = scheme.compress(batch_x) if scheme is not None else batch_x
            prepared.append((compressed, batch_y))
        return prepared

    def train(
        self,
        model,
        batches: list[tuple[object, np.ndarray]],
        eval_fn=None,
    ) -> TrainingHistory:
        """Run the configured number of epochs over pre-compressed batches.

        ``eval_fn(model) -> float`` is called after every epoch when given
        (for instance a held-out error rate) and its values are recorded in
        ``history.epoch_metrics``.
        """
        if not batches:
            raise ValueError("at least one mini-batch is required")
        history = TrainingHistory()
        learning_rate = self.config.learning_rate
        for _epoch in range(self.config.epochs):
            start = time.perf_counter()
            for batch, targets in batches:
                model.gradient_step(batch, targets, learning_rate)
            elapsed = time.perf_counter() - start
            epoch_loss = float(
                np.mean([model.loss(batch, targets) for batch, targets in batches])
            )
            history.epoch_losses.append(epoch_loss)
            history.epoch_times.append(elapsed)
            if eval_fn is not None:
                history.epoch_metrics.append(float(eval_fn(model)))
            learning_rate *= self.config.learning_rate_decay
        return history

    def train_streaming(
        self,
        model,
        epoch_batches,
        eval_fn=None,
    ) -> TrainingHistory:
        """Run the configured epochs over a re-creatable stream of batches.

        ``epoch_batches()`` is called once per epoch and must return an
        iterable of ``(batch, targets)`` pairs.  Unlike :meth:`train`, the
        per-batch loss is recorded during the pass itself (right after the
        gradient step) instead of in a second sweep — a second sweep would
        double the IO for out-of-core streams, which is exactly what this
        entry point exists to serve.
        """
        history = TrainingHistory()
        learning_rate = self.config.learning_rate
        for _epoch in range(self.config.epochs):
            start = time.perf_counter()
            losses: list[float] = []
            n_batches = 0
            for batch, targets in epoch_batches():
                model.gradient_step(batch, targets, learning_rate)
                losses.append(model.loss(batch, targets))
                n_batches += 1
            elapsed = time.perf_counter() - start
            if n_batches == 0:
                raise ValueError("epoch_batches() produced no mini-batches")
            history.epoch_losses.append(float(np.mean(losses)))
            history.epoch_times.append(elapsed)
            if eval_fn is not None:
                history.epoch_metrics.append(float(eval_fn(model)))
            learning_rate *= self.config.learning_rate_decay
        return history

    def fit(
        self,
        model,
        features: np.ndarray,
        labels: np.ndarray,
        scheme: CompressionScheme | None = None,
        eval_fn=None,
    ) -> TrainingHistory:
        """Convenience wrapper: prepare batches then train."""
        batches = self.prepare_batches(features, labels, scheme=scheme)
        return self.train(model, batches, eval_fn=eval_fn)
