"""One-vs-rest multi-class classification.

The paper trains LR and SVM on multi-class datasets (Mnist has ten classes)
with the standard one-versus-the-other technique: one binary model per
class, each trained on the same compressed mini-batches with binarised
labels.  Because every per-class model reuses the same compressed batches,
multi-class training multiplies the number of matrix operations — which is
why the paper's LR/SVM speedups are smaller on Mnist than on ImageNet.
"""

from __future__ import annotations

import numpy as np

from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent, TrainingHistory


class OneVsRestClassifier:
    """Train one binary model per class and predict by maximum score."""

    def __init__(self, model_factory, n_classes: int):
        if n_classes < 2:
            raise ValueError("n_classes must be at least 2")
        self.model_factory = model_factory
        self.n_classes = int(n_classes)
        self.models = [model_factory() for _ in range(self.n_classes)]

    def fit_batches(
        self,
        batches: list[tuple[object, np.ndarray]],
        config: GradientDescentConfig | None = None,
    ) -> list[TrainingHistory]:
        """Train every per-class model on the same compressed batches."""
        optimizer = MiniBatchGradientDescent(config)
        histories = []
        for klass, model in enumerate(self.models):
            binarised = [
                (batch, (targets == klass).astype(np.float64)) for batch, targets in batches
            ]
            histories.append(optimizer.train(model, binarised))
        return histories

    def decision_scores(self, batch) -> np.ndarray:
        """Per-class raw scores, shape ``(n_rows, n_classes)``."""
        return np.column_stack([model.scores(batch) for model in self.models])

    def predict(self, batch) -> np.ndarray:
        """Predicted class labels (argmax over the per-class scores)."""
        return np.argmax(self.decision_scores(batch), axis=1).astype(np.float64)
