"""One-vs-rest multi-class classification.

The paper trains LR and SVM on multi-class datasets (Mnist has ten classes)
with the standard one-versus-the-other technique: one binary model per
class, each trained on the same compressed mini-batches with binarised
labels.  Because every per-class model reuses the same compressed batches,
multi-class training multiplies the number of matrix operations — which is
why the paper's LR/SVM speedups are smaller on Mnist than on ImageNet.
"""

from __future__ import annotations

import numpy as np

from repro.ml.models import LinearSVMModel, LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent, TrainingHistory

#: Binary classifiers :class:`OneVsRestModel` can use per class, by spec name.
OVR_BASE_MODELS = {
    "logreg": LogisticRegressionModel,
    "logistic_regression": LogisticRegressionModel,
    "svm": LinearSVMModel,
}


class OneVsRestClassifier:
    """Train one binary model per class and predict by maximum score."""

    def __init__(self, model_factory, n_classes: int):
        if n_classes < 2:
            raise ValueError("n_classes must be at least 2")
        self.model_factory = model_factory
        self.n_classes = int(n_classes)
        self.models = [model_factory() for _ in range(self.n_classes)]

    def fit_batches(
        self,
        batches: list[tuple[object, np.ndarray]],
        config: GradientDescentConfig | None = None,
    ) -> list[TrainingHistory]:
        """Train every per-class model on the same compressed batches."""
        optimizer = MiniBatchGradientDescent(config)
        histories = []
        for klass, model in enumerate(self.models):
            binarised = [
                (batch, (targets == klass).astype(np.float64)) for batch, targets in batches
            ]
            histories.append(optimizer.train(model, binarised))
        return histories

    def decision_scores(self, batch) -> np.ndarray:
        """Per-class raw scores, shape ``(n_rows, n_classes)``."""
        return np.column_stack([model.scores(batch) for model in self.models])

    def predict(self, batch) -> np.ndarray:
        """Predicted class labels (argmax over the per-class scores)."""
        return np.argmax(self.decision_scores(batch), axis=1).astype(np.float64)


class OneVsRestModel(OneVsRestClassifier):
    """One-vs-rest as a *single* model implementing the optimizer protocol.

    Where :class:`OneVsRestClassifier` drives its own training loop,
    this variant exposes ``gradient_step`` / ``loss`` /
    ``get_parameters`` / ``set_parameters`` over the whole per-class
    ensemble, so any consumer of the model protocol — the in-memory MGD
    loop, the out-of-core trainer, the checkpoint registry, the
    :class:`~repro.api.Estimator` facade (as the ``"ovr:<base>"`` spec) —
    trains and persists a multi-class classifier unchanged.  Each step
    binarises the integer targets once per class and updates every binary
    model on the *same* compressed batch, which is exactly the paper's
    multi-class setup (one scan of the compressed data, k-fold the matrix
    operations).
    """

    name = "one_vs_rest"
    core_ops = ("matvec", "rmatvec")

    def __init__(
        self,
        n_features: int,
        base: str = "logistic_regression",
        n_classes: int = 2,
        l2: float | None = None,
        seed: int | None = 0,
    ):
        spec = str(base).strip().lower()
        if spec not in OVR_BASE_MODELS:
            raise ValueError(
                f"unknown one-vs-rest base {base!r}; known: {sorted(OVR_BASE_MODELS)}"
            )
        base_cls = OVR_BASE_MODELS[spec]
        self.base = base_cls.name  # canonical, so checkpoints round-trip
        counter = iter(range(n_classes if n_classes >= 2 else 0))

        def factory():
            kwargs: dict = {}
            if l2 is not None:
                kwargs["l2"] = l2
            offset = next(counter)
            model_seed = None if seed is None else int(seed) + offset
            return base_cls(n_features, seed=model_seed, **kwargs)

        super().__init__(factory, n_classes)

    @property
    def n_features(self) -> int:
        return self.models[0].n_features

    @property
    def l2(self) -> float:
        return self.models[0].l2

    def _binarise(self, targets: np.ndarray, klass: int) -> np.ndarray:
        return (np.asarray(targets) == klass).astype(np.float64)

    def gradient_step(self, batch, targets: np.ndarray, learning_rate: float) -> None:
        for klass, model in enumerate(self.models):
            model.gradient_step(batch, self._binarise(targets, klass), learning_rate)

    def loss(self, batch, targets: np.ndarray) -> float:
        return float(
            np.mean(
                [
                    model.loss(batch, self._binarise(targets, klass))
                    for klass, model in enumerate(self.models)
                ]
            )
        )

    def predict_proba(self, batch) -> np.ndarray:
        """Per-class probabilities (normalised per-model sigmoids)."""
        if not hasattr(self.models[0], "predict_proba"):
            raise AttributeError(f"base model {self.base!r} has no predict_proba")
        raw = np.column_stack([model.predict_proba(batch) for model in self.models])
        totals = raw.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return raw / totals

    def get_parameters(self) -> np.ndarray:
        """All per-class parameter vectors, concatenated in class order."""
        return np.concatenate([model.get_parameters() for model in self.models])

    def set_parameters(self, parameters: np.ndarray) -> None:
        parameters = np.asarray(parameters, dtype=np.float64).ravel()
        span = self.n_features + 1  # each binary linear model: weights + bias
        if parameters.size != span * self.n_classes:
            raise ValueError("parameter vector has the wrong length")
        for klass, model in enumerate(self.models):
            model.set_parameters(parameters[klass * span : (klass + 1) * span])
