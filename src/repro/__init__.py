"""repro — tuple-oriented compression (TOC) for mini-batch SGD.

A reproduction of *Tuple-oriented Compression for Large-scale Mini-batch
Stochastic Gradient Descent* (Li et al., SIGMOD 2019).

The public API re-exports the pieces most users need:

* :class:`TOCMatrix` — compress a mini-batch and run matrix operations
  directly on the compressed representation;
* :func:`get_scheme` / :func:`available_schemes` — the seven comparison
  schemes plus TOC behind one interface;
* the MGD training stack (models, optimizer, metrics);
* the dataset profiles mirroring the paper's Table 5;
* the Bismarck-style storage layer (buffer pool + blob table + session).
"""

from repro.compression import available_schemes, get_scheme
from repro.core import TOCMatrix, TOCVariant
from repro.core.advisor import recommend_scheme
from repro.data import DATASET_PROFILES, generate_dataset, split_minibatches
from repro.engine import OutOfCoreTrainer, ShardedDataset, encode_batches
from repro.ml import (
    FeedForwardNetwork,
    GradientDescentConfig,
    LinearRegressionModel,
    LinearSVMModel,
    LogisticRegressionModel,
    MiniBatchGradientDescent,
    OneVsRestClassifier,
)
from repro.serve import FeatureStore, MicroBatcher, ModelRegistry, PredictionService
from repro.storage import BismarckSession, BufferPool

__version__ = "0.1.0"

__all__ = [
    "BismarckSession",
    "BufferPool",
    "DATASET_PROFILES",
    "FeatureStore",
    "FeedForwardNetwork",
    "GradientDescentConfig",
    "LinearRegressionModel",
    "LinearSVMModel",
    "LogisticRegressionModel",
    "MicroBatcher",
    "MiniBatchGradientDescent",
    "ModelRegistry",
    "OneVsRestClassifier",
    "OutOfCoreTrainer",
    "PredictionService",
    "ShardedDataset",
    "TOCMatrix",
    "TOCVariant",
    "available_schemes",
    "encode_batches",
    "generate_dataset",
    "get_scheme",
    "recommend_scheme",
    "split_minibatches",
    "__version__",
]
