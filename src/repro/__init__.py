"""repro — tuple-oriented compression (TOC) for mini-batch SGD.

A reproduction of *Tuple-oriented Compression for Large-scale Mini-batch
Stochastic Gradient Descent* (Li et al., SIGMOD 2019).

The recommended entry point is :mod:`repro.api` — the unified facade
(:class:`Dataset`, :class:`Estimator`, :func:`open_service`) that owns the
dataset lifecycle end to end.  This top-level package re-exports the facade
plus the lower-level pieces advanced users reach for:

* :class:`TOCMatrix` — compress a mini-batch and run matrix operations
  directly on the compressed representation;
* :func:`get_scheme` / :func:`available_schemes` — the seven comparison
  schemes plus TOC behind one interface;
* the MGD training stack (models, optimizer, metrics);
* the dataset profiles mirroring the paper's Table 5;
* the Bismarck-style storage layer (buffer pool + blob table + session).
"""

from repro.compression import available_schemes, get_scheme
from repro.core import TOCMatrix, TOCVariant
from repro.core.advisor import recommend_scheme
from repro.data import DATASET_PROFILES, generate_dataset, split_minibatches
from repro.engine import OutOfCoreTrainer, ShardedDataset, encode_batches
from repro.ml import (
    FeedForwardNetwork,
    GradientDescentConfig,
    LinearRegressionModel,
    LinearSVMModel,
    LogisticRegressionModel,
    MiniBatchGradientDescent,
    OneVsRestClassifier,
)
from repro.serve import FeatureStore, MicroBatcher, ModelRegistry, PredictionService
from repro.storage import BismarckSession, BufferPool

__version__ = "0.2.0"

# The facade imports last: repro.api reads ``repro.__version__`` back, so it
# must come after everything above (and after __version__) is bound.
from repro.api import Dataset, Estimator, open_service  # noqa: E402

__all__ = [
    "BismarckSession",
    "Dataset",
    "Estimator",
    "open_service",
    "BufferPool",
    "DATASET_PROFILES",
    "FeatureStore",
    "FeedForwardNetwork",
    "GradientDescentConfig",
    "LinearRegressionModel",
    "LinearSVMModel",
    "LogisticRegressionModel",
    "MicroBatcher",
    "MiniBatchGradientDescent",
    "ModelRegistry",
    "OneVsRestClassifier",
    "OutOfCoreTrainer",
    "PredictionService",
    "ShardedDataset",
    "TOCMatrix",
    "TOCVariant",
    "available_schemes",
    "encode_batches",
    "generate_dataset",
    "get_scheme",
    "recommend_scheme",
    "split_minibatches",
    "__version__",
]
