"""Serving through the facade: one call from registry to live service.

:func:`open_service` is the only serving entry point the CLI and examples
need: it resolves a checkpoint version, opens the shard directory the
checkpoint recorded (or an override), and wires the feature store,
micro-batcher, and prediction cache together.  ``workers=1`` (the default)
returns an in-process :class:`~repro.serve.service.PredictionService`;
``workers>1`` returns the multi-process
:class:`~repro.cluster.server.ClusterService` instead — same
``predict``/``predict_many``/``metrics``/``close`` surface, N decoding
processes behind it.  Both are context managers — use ``with`` so worker
threads/processes are shut down cleanly.
"""

from __future__ import annotations

from pathlib import Path

from repro.serve.checkpoint import Checkpoint, ModelRegistry
from repro.serve.service import PredictionService


def open_service(
    checkpoint_dir: Path | str,
    version: int | str = "latest",
    *,
    shard_dir: Path | str | None = None,
    max_batch_size: int = 32,
    max_wait_seconds: float = 0.0,
    cache_size: int = 256,
    store_kwargs: dict | None = None,
    workers: int = 1,
    backlog: int = 64,
    admission: str = "block",
    deadline: float | None = None,
    poll_seconds: float | None = None,
):
    """Build a prediction service from a checkpoint registry.

    ``shard_dir`` overrides the directory recorded in the checkpoint; when
    neither is available the service still answers feature-vector requests
    (but not row-id lookups).  Returns ``(service, checkpoint)`` so callers
    can print provenance (version, model, scheme) next to their stats.

    With ``workers > 1`` the service is a
    :class:`~repro.cluster.server.ClusterService`: ``workers`` processes
    each with a private service stack over the shared shard directory,
    per-worker in-flight bounded at ``backlog``, ``admission`` policy
    (``"block"``/``"reject"``) when all queues are full, an optional
    ``deadline`` (seconds) applied to every request, and manifest-generation
    watching every ``poll_seconds``.  A shard directory is then required.
    ``max_wait_seconds`` applies only in-process (workers batch greedily).
    """
    if workers > 1:
        from repro.cluster.server import ClusterService

        cluster = ClusterService(
            checkpoint_dir,
            version,
            shard_dir=shard_dir,
            workers=workers,
            backlog=backlog,
            admission=admission,
            default_deadline=deadline,
            max_batch_size=max_batch_size,
            cache_size=cache_size,
            store_kwargs=store_kwargs,
            poll_seconds=poll_seconds,
        )
        return cluster, cluster.checkpoint
    return PredictionService.from_registry(
        checkpoint_dir,
        version,
        shard_dir=shard_dir,
        store_kwargs=store_kwargs,
        max_batch_size=max_batch_size,
        max_wait_seconds=max_wait_seconds,
        cache_size=cache_size,
    )


__all__ = ["ModelRegistry", "PredictionService", "open_service"]
