"""Serving through the facade: one call from registry to live service.

:func:`open_service` is the only serving entry point the CLI and examples
need: it resolves a checkpoint version, opens the shard directory the
checkpoint recorded (or an override), and wires the feature store,
micro-batcher, and prediction cache together.  The returned
:class:`~repro.serve.service.PredictionService` is a context manager — use
``with`` so the batcher thread is shut down cleanly.
"""

from __future__ import annotations

from pathlib import Path

from repro.serve.checkpoint import Checkpoint, ModelRegistry
from repro.serve.service import PredictionService


def open_service(
    checkpoint_dir: Path | str,
    version: int | str = "latest",
    *,
    shard_dir: Path | str | None = None,
    max_batch_size: int = 32,
    max_wait_seconds: float = 0.0,
    cache_size: int = 256,
    store_kwargs: dict | None = None,
) -> tuple[PredictionService, Checkpoint]:
    """Build a prediction service from a checkpoint registry.

    ``shard_dir`` overrides the directory recorded in the checkpoint; when
    neither is available the service still answers feature-vector requests
    (but not row-id lookups).  Returns ``(service, checkpoint)`` so callers
    can print provenance (version, model, scheme) next to their stats.
    """
    return PredictionService.from_registry(
        checkpoint_dir,
        version,
        shard_dir=shard_dir,
        store_kwargs=store_kwargs,
        max_batch_size=max_batch_size,
        max_wait_seconds=max_wait_seconds,
        cache_size=cache_size,
    )


__all__ = ["ModelRegistry", "PredictionService", "open_service"]
